//! Per-request outcomes and phase-level summaries.

/// Timing of one completed write request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Client that issued the request.
    pub client: u64,
    /// Arrival time (copied from the request).
    pub arrival: f64,
    /// When the MDS finished the create/open.
    pub mds_done: f64,
    /// When the last data chunk landed.
    pub finish: f64,
    /// Bytes written.
    pub bytes: u64,
    /// Seconds spent waiting on extent locks (shared files only).
    pub lock_wait: f64,
}

impl WriteOutcome {
    /// Total request latency (arrival → last byte).
    pub fn duration(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Everything the model returns for one batch of requests.
#[derive(Debug, Clone, Default)]
pub struct PhaseOutcome {
    /// Outcomes in the order requests were submitted.
    pub outcomes: Vec<WriteOutcome>,
}

impl PhaseOutcome {
    /// Earliest arrival across the batch.
    pub fn start(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.arrival)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest finish across the batch.
    pub fn finish(&self) -> f64 {
        self.outcomes.iter().map(|o| o.finish).fold(0.0, f64::max)
    }

    /// Wall-clock span of the phase.
    pub fn span(&self) -> f64 {
        (self.finish() - self.start()).max(0.0)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.outcomes.iter().map(|o| o.bytes).sum()
    }

    /// Aggregate throughput in bytes/second over the phase span.
    pub fn aggregate_throughput(&self) -> f64 {
        let span = self.span();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 / span
    }

    /// Per-request durations (arrival → finish), submission order.
    pub fn durations(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.duration()).collect()
    }

    /// Jitter summary of per-request durations:
    /// `(min, median, p99, max, max/min ratio)`.
    pub fn jitter(&self) -> JitterSummary {
        let mut d = self.durations();
        d.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        if d.is_empty() {
            return JitterSummary::default();
        }
        let pick = |q: f64| d[((d.len() - 1) as f64 * q).round() as usize];
        let min = d[0];
        let max = d[d.len() - 1];
        JitterSummary {
            min,
            median: pick(0.5),
            p99: pick(0.99),
            max,
            spread: if min > 0.0 { max / min } else { f64::INFINITY },
        }
    }
}

/// Distribution summary used by the variability experiment (E2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JitterSummary {
    /// Fastest request.
    pub min: f64,
    /// Median request.
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Slowest request.
    pub max: f64,
    /// `max / min` — the "orders of magnitude" the paper talks about.
    pub spread: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(client: u64, arrival: f64, finish: f64, bytes: u64) -> WriteOutcome {
        WriteOutcome {
            client,
            arrival,
            mds_done: arrival,
            finish,
            bytes,
            lock_wait: 0.0,
        }
    }

    #[test]
    fn aggregates() {
        let phase = PhaseOutcome {
            outcomes: vec![outcome(0, 0.0, 2.0, 100), outcome(1, 1.0, 3.0, 300)],
        };
        assert_eq!(phase.start(), 0.0);
        assert_eq!(phase.finish(), 3.0);
        assert_eq!(phase.span(), 3.0);
        assert_eq!(phase.total_bytes(), 400);
        assert!((phase.aggregate_throughput() - 400.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_summary() {
        let phase = PhaseOutcome {
            outcomes: (1..=100).map(|i| outcome(i, 0.0, i as f64, 1)).collect(),
        };
        let j = phase.jitter();
        assert_eq!(j.min, 1.0);
        assert_eq!(j.max, 100.0);
        // 100 samples: the 0.5 quantile rounds to index 50 → value 51.
        assert_eq!(j.median, 51.0);
        assert_eq!(j.p99, 99.0);
        assert_eq!(j.spread, 100.0);
    }

    #[test]
    fn empty_phase_is_safe() {
        let phase = PhaseOutcome::default();
        assert_eq!(phase.aggregate_throughput(), 0.0);
        assert_eq!(phase.jitter(), JitterSummary::default());
    }
}
