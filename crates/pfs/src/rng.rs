//! Deterministic random utilities: Box-Muller normal and log-normal
//! multipliers (implemented locally; `rand_distr` is not in the approved
//! dependency set).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via Box-Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Log-normal multiplier with unit mean: `exp(sigma·Z − sigma²/2)`.
///
/// `sigma = 0` returns exactly 1.0, keeping the no-jitter path bit-stable.
pub fn lognormal_unit_mean(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    (sigma * normal(rng) - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_has_unit_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| lognormal_unit_mean(&mut rng, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(lognormal_unit_mean(&mut rng, 0.0), 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..5).map(|_| normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..5).map(|_| normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
