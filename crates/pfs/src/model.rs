//! The file-system model: MDS queue, striping, OST service with
//! interference, extent locks, jitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::WriteRequest;
use crate::rng::lognormal_unit_mean;
use crate::stats::{PhaseOutcome, WriteOutcome};
use crate::PfsConfig;

/// A Lustre-like parallel file system in virtual time.
///
/// State (MDS and OST availability) persists across
/// [`Pfs::simulate_writes`] calls, so consecutive I/O phases queue up
/// naturally behind each other.
pub struct Pfs {
    cfg: PfsConfig,
    rng: StdRng,
    mds_next_free: f64,
    ost_next_free: Vec<f64>,
}

/// One stripe-sized unit of work bound for a single OST.
struct Chunk {
    ready: f64,
    req_idx: usize,
    client: u64,
    file: u64,
    shared: bool,
    bytes: u64,
    /// Position of this chunk within its request (interleaving key).
    seq: u64,
}

impl Pfs {
    /// Create a file system with the given configuration and RNG seed.
    pub fn new(cfg: PfsConfig, seed: u64) -> Self {
        assert!(cfg.n_osts > 0, "need at least one OST");
        assert!(cfg.ost_bandwidth > 0.0, "OST bandwidth must be positive");
        assert!(cfg.stripe_size > 0, "stripe size must be positive");
        let n = cfg.n_osts;
        Pfs {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            mds_next_free: 0.0,
            ost_next_free: vec![0.0; n],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Virtual time at which the MDS becomes idle.
    pub fn mds_backlog_until(&self) -> f64 {
        self.mds_next_free
    }

    /// Reset all queues to idle (fresh run with the same calibration).
    pub fn reset(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.mds_next_free = 0.0;
        self.ost_next_free.fill(0.0);
    }

    /// Simulate a batch of write requests; returns per-request timings.
    ///
    /// The model, in order:
    /// 1. every request passes the single MDS FIFO (create or open cost),
    /// 2. its bytes are split into stripe-size chunks, distributed
    ///    round-robin over the file's OSTs (chosen by file-id hash),
    /// 3. each OST serves chunks FIFO; the service rate of a chunk is
    ///    `ost_bandwidth × eff(active streams)` where `eff` is the
    ///    configured interference curve, times a log-normal jitter
    ///    multiplier and a background-load multiplier,
    /// 4. consecutive chunks of a *shared* file from different clients pay
    ///    the extent-lock handoff: `lock_switch_s × (active − 1)`.
    pub fn simulate_writes(&mut self, requests: &[WriteRequest]) -> PhaseOutcome {
        let n_reqs = requests.len();
        let mut outcomes: Vec<WriteOutcome> = requests
            .iter()
            .map(|r| WriteOutcome {
                client: r.client,
                arrival: r.arrival,
                mds_done: r.arrival,
                finish: r.arrival,
                bytes: r.bytes,
                lock_wait: 0.0,
            })
            .collect();

        // ---- 1. MDS pass, in arrival order ----
        let mut order: Vec<usize> = (0..n_reqs).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival
                .partial_cmp(&requests[b].arrival)
                .expect("arrivals are finite")
        });
        for &i in &order {
            let r = &requests[i];
            let op = if r.file.needs_create {
                self.cfg.mds_create_s
            } else {
                self.cfg.mds_open_s
            };
            let start = self.mds_next_free.max(r.arrival);
            let done = start + op * lognormal_unit_mean(&mut self.rng, self.cfg.jitter_sigma);
            self.mds_next_free = done;
            outcomes[i].mds_done = done;
        }

        // ---- 2. chunking & striping ----
        let n_osts = self.cfg.n_osts;
        let mut per_ost: Vec<Vec<Chunk>> = (0..n_osts).map(|_| Vec::new()).collect();
        for (i, r) in requests.iter().enumerate() {
            if r.bytes == 0 {
                continue;
            }
            let sc = if r.file.stripe_count == 0 {
                n_osts
            } else {
                r.file.stripe_count.min(n_osts)
            };
            // Lustre's allocator hands out starting OSTs round-robin, so
            // sequential file ids spread evenly — that balance is exactly
            // what lets one-file-per-node writes run near the knee.
            let base = (r.file.id as usize) % n_osts;
            let stripe = self.cfg.stripe_size;
            let n_chunks = r.bytes.div_ceil(stripe);
            for c in 0..n_chunks {
                let bytes = stripe.min(r.bytes - c * stripe);
                // The OST follows the absolute file offset (writer's
                // region offset + chunk index), as Lustre striping does.
                let ost = (base + ((r.stripe_offset + c) as usize % sc)) % n_osts;
                per_ost[ost].push(Chunk {
                    ready: outcomes[i].mds_done,
                    req_idx: i,
                    client: r.client,
                    file: r.file.id,
                    shared: r.file.shared,
                    bytes,
                    seq: c,
                });
            }
        }

        // ---- 3./4. per-OST round-robin service ----
        //
        // Each client streams its chunks sequentially; the OST round-robins
        // among the clients whose next chunk is ready ("armed"). This is
        // what makes concurrent streams *interleave* — the very mechanism
        // behind interference. Clients whose chunks only become ready later
        // (staggered arrivals, MDS queueing) wait in a ready-time heap.
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap, VecDeque};

        for (ost, chunks) in per_ost.into_iter().enumerate() {
            if chunks.is_empty() {
                continue;
            }
            // Group chunks per client, each client's queue in issue order.
            let mut queues: HashMap<u64, VecDeque<Chunk>> = HashMap::new();
            for c in chunks {
                queues.entry(c.client).or_default().push_back(c);
            }
            for q in queues.values_mut() {
                let mut v: Vec<Chunk> = q.drain(..).collect();
                v.sort_by(|a, b| {
                    a.ready
                        .partial_cmp(&b.ready)
                        .expect("times are finite")
                        .then(a.seq.cmp(&b.seq))
                });
                q.extend(v);
            }
            // Pending clients keyed by (first-chunk ready, client id) for
            // deterministic arming order; armed clients round-robin.
            let mut pending: BinaryHeap<Reverse<(OrdF64, u64)>> = queues
                .iter()
                .map(|(&client, q)| Reverse((OrdF64(q.front().expect("non-empty").ready), client)))
                .collect();
            let mut armed: VecDeque<u64> = VecDeque::new();
            let mut cursor = self.ost_next_free[ost];
            let mut last_writer: HashMap<u64, u64> = HashMap::new(); // file -> client

            loop {
                // Arm every pending client whose first chunk is ready.
                while let Some(&Reverse((OrdF64(t), client))) = pending.peek() {
                    if t <= cursor {
                        pending.pop();
                        armed.push_back(client);
                    } else {
                        break;
                    }
                }
                let client = match armed.pop_front() {
                    Some(c) => c,
                    None => match pending.pop() {
                        // OST idle: jump to the next arrival.
                        Some(Reverse((OrdF64(t), client))) => {
                            cursor = cursor.max(t);
                            client
                        }
                        None => break, // all served
                    },
                };
                let queue = queues.get_mut(&client).expect("armed client has a queue");
                let c = queue.pop_front().expect("armed client has a chunk");
                let start = cursor.max(c.ready);
                // Streams sharing the OST right now: this one plus armed.
                let active = 1 + armed.len();
                let eff = self.cfg.efficiency(active);
                let mut service = c.bytes as f64 / (self.cfg.ost_bandwidth * eff);
                service *= lognormal_unit_mean(&mut self.rng, self.cfg.jitter_sigma);
                if let Some(bg) = self.cfg.background {
                    if self.rng.random::<f64>() < bg.duty_cycle {
                        service /= bg.slowdown;
                    }
                }
                let mut lock = 0.0;
                if c.shared {
                    let prev = last_writer.insert(c.file, c.client);
                    if prev != Some(c.client) && prev.is_some() {
                        lock = self.cfg.lock_switch_s * active.saturating_sub(1) as f64;
                    }
                }
                let finish = start + lock + service;
                cursor = finish;
                let o = &mut outcomes[c.req_idx];
                o.finish = o.finish.max(finish);
                o.lock_wait += lock;
                // Re-queue the client if it has more work.
                match queue.front() {
                    Some(next) if next.ready <= cursor => armed.push_back(client),
                    Some(next) => pending.push(Reverse((OrdF64(next.ready), client))),
                    None => {}
                }
            }
            self.ost_next_free[ost] = cursor;
        }

        PhaseOutcome { outcomes }
    }
}

/// Total order over finite f64 times (heap key).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("virtual times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FileSpec;

    fn quiet(cfg: PfsConfig) -> Pfs {
        Pfs::new(cfg.without_jitter(), 1)
    }

    fn req(client: u64, bytes: u64, file: FileSpec) -> WriteRequest {
        WriteRequest::new(0.0, client, bytes, file)
    }

    #[test]
    fn single_stream_gets_peak_bandwidth() {
        let cfg = PfsConfig::kraken_lustre();
        let mut pfs = quiet(cfg.clone());
        let phase = pfs.simulate_writes(&[req(0, 400 << 20, FileSpec::private(0, true))]);
        let expect = (400 << 20) as f64 / cfg.ost_bandwidth;
        let got = phase.outcomes[0].duration();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "expected ≈{expect:.1}s at peak, got {got:.1}s"
        );
    }

    #[test]
    fn interference_throttles_many_streams_on_one_ost() {
        let cfg = PfsConfig::kraken_lustre().with_osts(1);
        let mut pfs = quiet(cfg.clone());
        let reqs: Vec<WriteRequest> = (0..27)
            .map(|c| req(c, 45 << 20, FileSpec::private(c, true)))
            .collect();
        let phase = pfs.simulate_writes(&reqs);
        let agg = phase.aggregate_throughput();
        let ideal = cfg.ost_bandwidth;
        assert!(
            agg < ideal * 0.2,
            "27 streams should collapse to ≲13 % of peak, got {:.1} %",
            100.0 * agg / ideal
        );
    }

    #[test]
    fn few_streams_keep_near_peak() {
        let cfg = PfsConfig::kraken_lustre().with_osts(1);
        let mut pfs = quiet(cfg.clone());
        let reqs: Vec<WriteRequest> = (0..2)
            .map(|c| req(c, 100 << 20, FileSpec::private(c, true)))
            .collect();
        let phase = pfs.simulate_writes(&reqs);
        let agg = phase.aggregate_throughput();
        assert!(
            agg > cfg.ost_bandwidth * 0.9,
            "2 streams sit below the knee: {:.2e} vs peak {:.2e}",
            agg,
            cfg.ost_bandwidth
        );
    }

    #[test]
    fn shared_file_pays_lock_handoffs() {
        let cfg = PfsConfig::kraken_lustre().with_osts(4);
        let shared: Vec<WriteRequest> = (0..32)
            .map(|c| {
                req(
                    c,
                    16 << 20,
                    FileSpec {
                        id: 1,
                        shared: true,
                        stripe_count: 0,
                        needs_create: c == 0,
                    },
                )
            })
            .collect();
        let private: Vec<WriteRequest> = (0..32)
            .map(|c| req(c, 16 << 20, FileSpec::private(c + 100, true)))
            .collect();
        let shared_span = quiet(cfg.clone()).simulate_writes(&shared).span();
        let private_span = quiet(cfg).simulate_writes(&private).span();
        assert!(
            shared_span > private_span,
            "shared-file writers must be slower: {shared_span:.2}s vs {private_span:.2}s"
        );
        let phase = quiet(PfsConfig::kraken_lustre().with_osts(4)).simulate_writes(&shared);
        assert!(phase.outcomes.iter().any(|o| o.lock_wait > 0.0));
    }

    #[test]
    fn mds_create_storm_queues() {
        let cfg = PfsConfig::kraken_lustre();
        let mut pfs = quiet(cfg.clone());
        let reqs: Vec<WriteRequest> = (0..9216)
            .map(|c| req(c, 0, FileSpec::private(c, true)))
            .collect();
        let phase = pfs.simulate_writes(&reqs);
        let last_mds = phase
            .outcomes
            .iter()
            .map(|o| o.mds_done)
            .fold(0.0, f64::max);
        let expect = 9216.0 * cfg.mds_create_s;
        assert!(
            (last_mds - expect).abs() / expect < 0.01,
            "MDS storm: expected ≈{expect:.2}s, got {last_mds:.2}s"
        );
    }

    #[test]
    fn striping_spreads_chunks() {
        // One wide-striped file must finish ~stripe_count× faster than the
        // same bytes on a single OST.
        let cfg = PfsConfig::kraken_lustre().with_osts(8);
        let wide = quiet(cfg.clone()).simulate_writes(&[req(
            0,
            256 << 20,
            FileSpec {
                id: 3,
                shared: false,
                stripe_count: 0,
                needs_create: true,
            },
        )]);
        let narrow = quiet(cfg).simulate_writes(&[req(0, 256 << 20, FileSpec::private(3, true))]);
        assert!(
            wide.span() * 4.0 < narrow.span(),
            "striping over 8 OSTs: {:.2}s vs {:.2}s",
            wide.span(),
            narrow.span()
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let cfg = PfsConfig::kraken_lustre();
        let reqs: Vec<WriteRequest> = (0..64)
            .map(|c| req(c, 45 << 20, FileSpec::private(c, true)))
            .collect();
        let a = Pfs::new(cfg.clone(), 99).simulate_writes(&reqs);
        let b = Pfs::new(cfg, 99).simulate_writes(&reqs);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn jitter_widens_the_distribution() {
        let mk_reqs = || -> Vec<WriteRequest> {
            (0..128)
                .map(|c| req(c, 45 << 20, FileSpec::private(c, true)))
                .collect()
        };
        let quiet_spread = quiet(PfsConfig::kraken_lustre())
            .simulate_writes(&mk_reqs())
            .jitter()
            .spread;
        let noisy_spread = Pfs::new(PfsConfig::kraken_lustre(), 5)
            .simulate_writes(&mk_reqs())
            .jitter()
            .spread;
        assert!(
            noisy_spread > quiet_spread,
            "jitter must widen spread: {noisy_spread:.2} vs {quiet_spread:.2}"
        );
    }

    #[test]
    fn state_persists_across_phases() {
        let cfg = PfsConfig::kraken_lustre().with_osts(1);
        let mut pfs = quiet(cfg);
        let first = pfs.simulate_writes(&[req(0, 40 << 20, FileSpec::private(0, true))]);
        let second = pfs.simulate_writes(&[req(0, 40 << 20, FileSpec::private(1, true))]);
        assert!(
            second.outcomes[0].finish > first.outcomes[0].finish,
            "second phase must queue behind the first"
        );
        pfs.reset(1);
        let fresh = pfs.simulate_writes(&[req(0, 40 << 20, FileSpec::private(2, true))]);
        assert!((fresh.outcomes[0].finish - first.outcomes[0].finish).abs() < 1e-9);
    }

    #[test]
    fn arrivals_respected() {
        let cfg = PfsConfig::kraken_lustre();
        let mut pfs = quiet(cfg);
        let reqs = vec![WriteRequest::new(
            100.0,
            0,
            4 << 20,
            FileSpec::private(0, true),
        )];
        let phase = pfs.simulate_writes(&reqs);
        assert!(phase.outcomes[0].mds_done >= 100.0);
        assert!(phase.outcomes[0].finish > 100.0);
    }

    #[test]
    fn zero_byte_write_is_metadata_only() {
        let mut pfs = quiet(PfsConfig::kraken_lustre());
        let phase = pfs.simulate_writes(&[req(0, 0, FileSpec::private(0, true))]);
        let o = phase.outcomes[0];
        assert_eq!(o.finish, o.arrival, "no data chunks scheduled");
        assert!(o.mds_done > 0.0);
    }
}
