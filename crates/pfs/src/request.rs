//! Write-request descriptions submitted to the model.

/// How a request's bytes map onto files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpec {
    /// File identity; requests with the same id target the same file.
    pub id: u64,
    /// Whether several clients write this file concurrently (shared files
    /// pay extent-lock handoffs on Lustre-like systems).
    pub shared: bool,
    /// Number of OSTs the file is striped over (1 = all bytes on one OST,
    /// 0 = stripe over every OST).
    pub stripe_count: usize,
    /// Whether the write must first create the file at the MDS (otherwise
    /// it is an open of an existing file).
    pub needs_create: bool,
}

impl FileSpec {
    /// A private (single-writer) file with stripe count 1 — the Lustre
    /// default used by file-per-process and by Damaris node files.
    pub fn private(id: u64, needs_create: bool) -> Self {
        FileSpec {
            id,
            shared: false,
            stripe_count: 1,
            needs_create,
        }
    }

    /// A shared file striped over every OST — what collective I/O produces.
    pub fn shared_wide(id: u64, needs_create: bool) -> Self {
        FileSpec {
            id,
            shared: true,
            stripe_count: 0,
            needs_create,
        }
    }
}

/// One client's write of `bytes` starting no earlier than `arrival`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteRequest {
    /// Virtual time at which the client issues the write (seconds).
    pub arrival: f64,
    /// Client identity (rank or dedicated-core id).
    pub client: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Target file.
    pub file: FileSpec,
    /// Offset of this write within the file, in stripe units. Striping
    /// round-robins from this position, so concurrent writers of one
    /// shared file (two-phase aggregators, each owning its own region)
    /// land on *different* storage targets — exactly how Lustre maps file
    /// offsets. Private single-writer files use 0.
    pub stripe_offset: u64,
}

impl WriteRequest {
    /// A request starting at the beginning of its file.
    pub fn new(arrival: f64, client: u64, bytes: u64, file: FileSpec) -> Self {
        WriteRequest {
            arrival,
            client,
            bytes,
            file,
            stripe_offset: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = FileSpec::private(7, true);
        assert!(!p.shared);
        assert_eq!(p.stripe_count, 1);
        assert!(p.needs_create);
        let s = FileSpec::shared_wide(1, false);
        assert!(s.shared);
        assert_eq!(s.stripe_count, 0);
    }
}
