//! # pfs-sim
//!
//! A queueing model of a **Lustre-like parallel file system** in virtual
//! time: one metadata server (MDS), `n` object storage targets (OSTs),
//! striping, stream-interference, shared-file extent-lock contention, and
//! heavy-tailed service jitter.
//!
//! The Damaris paper's evaluation numbers are queueing phenomena:
//!
//! * **file-per-process** floods the MDS with one create per rank per dump
//!   and spreads ~27 concurrent streams over every OST of Kraken at 9216
//!   ranks — interference throttles the aggregate to < 1.7 GB/s (§IV.C);
//! * **collective (two-phase) I/O** writes one shared file striped over all
//!   OSTs; every OST then sees hundreds of writers whose extent locks
//!   ping-pong, collapsing throughput to ~0.5 GB/s (§IV.C) and stretching
//!   the I/O phase to 800 s (§IV.A);
//! * **Damaris** writes one file per *node* (768 streams, ~2.3 per OST):
//!   near-streaming efficiency, ~10 GB/s, and with scheduling that caps
//!   concurrent writers per OST, ~12.7 GB/s (§IV.C–D);
//! * run-to-run **variability** of "several orders of magnitude" (§IV.B)
//!   comes from lock queues, MDS queues and background traffic — modeled
//!   with log-normal chunk jitter plus background-load episodes.
//!
//! The model is phase-oriented: the caller (the `cluster-sim` engine or a
//! test) submits a batch of [`WriteRequest`]s with arrival times and gets
//! back per-request [`WriteOutcome`]s in virtual seconds. All randomness is
//! seeded and deterministic.
//!
//! ```
//! use pfs_sim::{FileSpec, Pfs, PfsConfig, WriteRequest};
//!
//! let mut pfs = Pfs::new(PfsConfig::kraken_lustre().without_jitter(), 42);
//! // 768 "dedicated cores" each writing one 495 MiB node file.
//! let reqs: Vec<WriteRequest> = (0..768)
//!     .map(|c| WriteRequest::new(0.0, c, 495 << 20, FileSpec::private(c, true)))
//!     .collect();
//! let phase = pfs.simulate_writes(&reqs);
//! let gbps = phase.aggregate_throughput() / 1e9;
//! assert!(gbps > 8.0 && gbps < 14.0, "Damaris-style writes: {gbps:.1} GB/s");
//! ```

pub mod model;
pub mod request;
pub mod rng;
pub mod stats;

pub use model::Pfs;
pub use request::{FileSpec, WriteRequest};
pub use stats::{PhaseOutcome, WriteOutcome};

/// Background-traffic episodes: other applications hammering the file
/// system (the paper names them as a major source of variability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundLoad {
    /// Fraction of time the storage system is degraded, in `[0, 1)`.
    pub duty_cycle: f64,
    /// Bandwidth multiplier while degraded, in `(0, 1]`.
    pub slowdown: f64,
}

/// Configuration of the file-system model. All times in seconds, sizes in
/// bytes, bandwidths in bytes/second.
#[derive(Debug, Clone, PartialEq)]
pub struct PfsConfig {
    /// Number of object storage targets.
    pub n_osts: usize,
    /// Peak streaming bandwidth of one OST serving a single stream.
    pub ost_bandwidth: f64,
    /// Stream-interference coefficient (see [`PfsConfig::efficiency`]):
    /// past the knee, an OST serving `n` distinct streams delivers
    /// `1 / (1 + alpha * (n - knee))` of its peak.
    pub interference_alpha: f64,
    /// Number of concurrent streams an OST absorbs at full speed
    /// (write-back cache + elevator merging).
    pub interference_knee: usize,
    /// Efficiency floor: with very deep queues, request batching keeps
    /// per-OST efficiency from collapsing to zero.
    pub interference_floor: f64,
    /// Stripe unit: requests are split into chunks of this many bytes.
    pub stripe_size: u64,
    /// MDS service time for a file create.
    pub mds_create_s: f64,
    /// MDS service time for opening an existing file.
    pub mds_open_s: f64,
    /// Extent-lock handoff cost paid when consecutive chunks of a shared
    /// file on one OST come from different clients.
    pub lock_switch_s: f64,
    /// Log-normal sigma applied per chunk (0 disables jitter).
    pub jitter_sigma: f64,
    /// Optional background-traffic degradation.
    pub background: Option<BackgroundLoad>,
}

impl PfsConfig {
    /// Kraken-class Lustre (Cray XT5; the paper's §IV platform).
    ///
    /// Calibration (documented so EXPERIMENTS.md can reference it):
    /// * 336 OSTs × 40 MB/s effective ⇒ 13.4 GB/s streaming ceiling;
    /// * knee 4 / `alpha = 0.3` / floor 0.04 fits the paper's three fixed
    ///   points simultaneously:
    ///   - 2–3 streams/OST (Damaris, 768 node files) sit below the knee at
    ///     full efficiency ⇒ ≈ 10 GB/s once OST-load imbalance is counted,
    ///   - ~27 streams/OST (file-per-process at 9216 ranks) ⇒
    ///     eff ≈ 0.127 ⇒ ≈ 1.7 GB/s,
    ///   - hundreds of writers per OST (collective shared file) hit the
    ///     floor ⇒ with extent-lock handoffs ≈ 0.5 GB/s;
    /// * `lock_switch_s = 0.8 ms` per competing writer is the extent-lock
    ///   revoke cost behind the collective collapse;
    /// * MDS ≈ 3000 creates/s: 9216 creates ⇒ ≈ 3 s of pure metadata wait.
    pub fn kraken_lustre() -> Self {
        PfsConfig {
            n_osts: 336,
            ost_bandwidth: 40.0e6,
            interference_alpha: 0.3,
            interference_knee: 4,
            interference_floor: 0.04,
            stripe_size: 4 << 20,
            mds_create_s: 1.0 / 3000.0,
            mds_open_s: 1.0 / 12000.0,
            lock_switch_s: 0.8e-3,
            jitter_sigma: 0.35,
            background: Some(BackgroundLoad {
                duty_cycle: 0.08,
                slowdown: 0.45,
            }),
        }
    }

    /// Grid'5000-class cluster storage (PVFS; the paper's §V.C platform):
    /// fewer, slower servers, no extent locks (PVFS does not lock), higher
    /// relative jitter.
    pub fn grid5000_pvfs() -> Self {
        PfsConfig {
            n_osts: 24,
            ost_bandwidth: 60.0e6,
            interference_alpha: 0.2,
            interference_knee: 3,
            interference_floor: 0.05,
            stripe_size: 1 << 20,
            mds_create_s: 1.0 / 1500.0,
            mds_open_s: 1.0 / 6000.0,
            lock_switch_s: 0.0,
            jitter_sigma: 0.45,
            background: Some(BackgroundLoad {
                duty_cycle: 0.12,
                slowdown: 0.5,
            }),
        }
    }

    /// Disable all stochastic effects (unit tests, calibration fits).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_sigma = 0.0;
        self.background = None;
        self
    }

    /// Replace the OST count (scaling studies).
    pub fn with_osts(mut self, n: usize) -> Self {
        self.n_osts = n;
        self
    }

    /// Streaming ceiling: every OST at peak simultaneously.
    pub fn peak_bandwidth(&self) -> f64 {
        self.n_osts as f64 * self.ost_bandwidth
    }

    /// The interference efficiency function:
    ///
    /// ```text
    /// eff(n) = 1                                   for n ≤ knee
    /// eff(n) = max(floor, 1 / (1 + α (n − knee)))  for n > knee
    /// ```
    ///
    /// A few streams are absorbed by write-back caching and elevator
    /// merging (the knee); beyond it, head movement and cache thrash cut
    /// efficiency roughly hyperbolically; very deep queues re-batch enough
    /// sequential work that efficiency saturates at the floor.
    pub fn efficiency(&self, streams: usize) -> f64 {
        if streams <= self.interference_knee.max(1) {
            1.0
        } else {
            let excess = (streams - self.interference_knee) as f64;
            (1.0 / (1.0 + self.interference_alpha * excess)).max(self.interference_floor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraken_fixed_points() {
        let cfg = PfsConfig::kraken_lustre();
        // File-per-process: 9216 files over 336 OSTs ≈ 27.4 streams each.
        let fpp = cfg.peak_bandwidth() * cfg.efficiency(27);
        assert!(
            (1.2e9..2.2e9).contains(&fpp),
            "FPP regime should land near 1.7 GB/s, got {:.2e}",
            fpp
        );
        // Damaris: 768 node files, 2–3 streams per OST — below the knee.
        assert_eq!(cfg.efficiency(2), 1.0);
        assert_eq!(cfg.efficiency(3), 1.0);
        // Collective: hundreds of writers per OST — at the floor.
        assert_eq!(cfg.efficiency(300), cfg.interference_floor);
        assert!(cfg.peak_bandwidth() > 13.0e9);
    }

    #[test]
    fn efficiency_monotone_nonincreasing() {
        let cfg = PfsConfig::kraken_lustre();
        assert_eq!(cfg.efficiency(0), 1.0);
        assert_eq!(cfg.efficiency(1), 1.0);
        let mut prev = 1.0;
        for n in 2..1000 {
            let e = cfg.efficiency(n);
            assert!(e <= prev, "eff must never increase");
            assert!(e >= cfg.interference_floor);
            prev = e;
        }
        assert_eq!(cfg.efficiency(1000), cfg.interference_floor);
    }

    #[test]
    fn without_jitter_strips_randomness() {
        let cfg = PfsConfig::kraken_lustre().without_jitter();
        assert_eq!(cfg.jitter_sigma, 0.0);
        assert!(cfg.background.is_none());
    }
}
