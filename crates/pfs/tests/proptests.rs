//! Property tests for the file-system model: causality, conservation,
//! determinism.

use pfs_sim::{FileSpec, Pfs, PfsConfig, WriteRequest};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ReqSpec {
    arrival: f64,
    bytes: u64,
    shared: bool,
    wide: bool,
}

fn reqs_strategy() -> impl Strategy<Value = Vec<ReqSpec>> {
    proptest::collection::vec(
        (0.0f64..10.0, 0u64..64 << 20, any::<bool>(), any::<bool>()).prop_map(
            |(arrival, bytes, shared, wide)| ReqSpec {
                arrival,
                bytes,
                shared,
                wide,
            },
        ),
        1..40,
    )
}

fn build(specs: &[ReqSpec]) -> Vec<WriteRequest> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| WriteRequest {
            arrival: s.arrival,
            client: i as u64,
            bytes: s.bytes,
            file: if s.shared {
                FileSpec {
                    id: 1,
                    shared: true,
                    stripe_count: if s.wide { 0 } else { 4 },
                    needs_create: i == 0,
                }
            } else {
                FileSpec {
                    id: 100 + i as u64,
                    shared: false,
                    stripe_count: if s.wide { 0 } else { 1 },
                    needs_create: true,
                }
            },
            stripe_offset: if s.shared { i as u64 * 7 } else { 0 },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Causality: mds_done ≥ arrival and finish ≥ mds_done for data-carrying
    /// requests; finish times are finite.
    #[test]
    fn causality_holds(specs in reqs_strategy(), seed in any::<u64>()) {
        let mut pfs = Pfs::new(PfsConfig::kraken_lustre(), seed);
        let reqs = build(&specs);
        let phase = pfs.simulate_writes(&reqs);
        for (r, o) in reqs.iter().zip(&phase.outcomes) {
            prop_assert!(o.mds_done >= r.arrival);
            prop_assert!(o.finish.is_finite());
            if r.bytes > 0 {
                prop_assert!(o.finish >= o.mds_done,
                    "finish {} before mds_done {}", o.finish, o.mds_done);
            }
            prop_assert!(o.lock_wait >= 0.0);
            prop_assert_eq!(o.bytes, r.bytes);
        }
    }

    /// Without jitter, aggregate throughput never exceeds the streaming
    /// ceiling.
    #[test]
    fn throughput_bounded_by_peak(specs in reqs_strategy()) {
        let cfg = PfsConfig::kraken_lustre().without_jitter();
        let peak = cfg.peak_bandwidth();
        let mut pfs = Pfs::new(cfg, 0);
        let reqs = build(&specs);
        prop_assume!(reqs.iter().any(|r| r.bytes > 0));
        let phase = pfs.simulate_writes(&reqs);
        // The span includes MDS time, so the bound is conservative.
        prop_assert!(phase.aggregate_throughput() <= peak * 1.0001,
            "throughput {:.3e} above peak {:.3e}", phase.aggregate_throughput(), peak);
    }

    /// Identical seeds and inputs give identical outcomes.
    #[test]
    fn deterministic(specs in reqs_strategy(), seed in any::<u64>()) {
        let reqs = build(&specs);
        let a = Pfs::new(PfsConfig::kraken_lustre(), seed).simulate_writes(&reqs);
        let b = Pfs::new(PfsConfig::kraken_lustre(), seed).simulate_writes(&reqs);
        prop_assert_eq!(a.outcomes, b.outcomes);
    }
}
