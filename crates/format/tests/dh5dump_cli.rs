//! Integration test for the `dh5dump` inspection tool.
#![cfg(not(miri))] // spawns the dh5dump binary: no subprocesses under Miri

use std::process::Command;

use h5lite::{Dtype, FileWriter};

fn write_sample(path: &std::path::Path) {
    let mut w = FileWriter::create(path).expect("create");
    w.dataset("cm1/u", Dtype::F64, &[2, 3])
        .expect("dataset")
        .with_codec("rle")
        .expect("codec")
        .write_pod(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        .expect("write");
    w.set_attr("cm1", "time", 0.5f64).expect("attr");
    w.finish().expect("finish");
}

fn dh5dump(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dh5dump"))
        .args(args)
        .output()
        .expect("spawn dh5dump")
}

#[test]
fn lists_tree_and_data() {
    let dir = std::env::temp_dir().join(format!("dh5dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let file = dir.join("sample.dh5");
    write_sample(&file);

    let out = dh5dump(&[file.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cm1/u  f64 [2x3]"), "{stdout}");
    assert!(stdout.contains("codec=rle"), "{stdout}");
    assert!(stdout.contains("@time"), "{stdout}");

    let out = dh5dump(&["--data", "cm1/u", file.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[1, 2, 3, 4, 5, 6]"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_file_fails_gracefully() {
    let dir = std::env::temp_dir().join(format!("dh5dump-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let file = dir.join("junk.dh5");
    std::fs::write(&file, b"not a dh5 file at all").expect("write junk");
    let out = dh5dump(&[file.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt") || stderr.contains("magic"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_args_is_usage_error() {
    let out = dh5dump(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_dataset_reported() {
    let dir = std::env::temp_dir().join(format!("dh5dump-miss-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let file = dir.join("sample.dh5");
    write_sample(&file);
    let out = dh5dump(&["--data", "nope", file.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not found"));
    std::fs::remove_dir_all(&dir).ok();
}
