//! Property tests: arbitrary files round-trip write → read exactly.

use std::io::Cursor;

use h5lite::{Dtype, FileReader, FileWriter};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DsSpec {
    path_parts: Vec<String>,
    shape: Vec<u64>,
    data_seed: u64,
    codec: Option<&'static str>,
    chunk_rows: Option<u64>,
}

fn ds_strategy() -> impl Strategy<Value = DsSpec> {
    (
        proptest::collection::vec("[a-z][a-z0-9]{0,6}", 1..4),
        proptest::collection::vec(1u64..12, 1..4),
        any::<u64>(),
        proptest::option::of(prop_oneof![
            Just("rle"),
            Just("lzss"),
            Just("xor-delta8,rle"),
            Just("xor-delta8,shuffle8,rle,lzss"),
        ]),
        proptest::option::of(1u64..8),
    )
        .prop_map(|(path_parts, shape, data_seed, codec, chunk_rows)| DsSpec {
            path_parts,
            shape,
            data_seed,
            codec,
            chunk_rows,
        })
}

fn gen_data(seed: u64, n: usize) -> Vec<f64> {
    // xorshift-based deterministic values, including some repetition.
    let mut x = seed | 1;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 3 == 0 {
                300.0
            } else {
                f64::from_bits((x & 0x3fff_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn files_roundtrip(specs in proptest::collection::vec(ds_strategy(), 1..6)) {
        let mut cur = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut cur).unwrap();
        let mut written: Vec<(String, Vec<f64>)> = Vec::new();
        for spec in &specs {
            let path = spec.path_parts.join("/");
            if written.iter().any(|(p, _)| *p == path) {
                continue; // duplicate paths rejected by design
            }
            let n: u64 = spec.shape.iter().product();
            let data = gen_data(spec.data_seed, n as usize);
            let mut b = match w.dataset(&path, Dtype::F64, &spec.shape) {
                Ok(b) => b,
                Err(_) => continue, // path collides with an auto-created group
            };
            if let Some(c) = spec.codec {
                b = b.with_codec(c).unwrap();
            }
            if let Some(r) = spec.chunk_rows {
                b = b.chunked(r).unwrap();
            }
            b.write_pod(&data).unwrap();
            written.push((path, data));
        }
        w.finish().unwrap();
        let bytes = cur.into_inner();

        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        for (path, data) in &written {
            let back = r.read_pod::<f64>(path).unwrap();
            let a: Vec<u64> = data.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u64> = back.iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(a, b, "dataset {} corrupted", path);
        }
    }

    /// Random corruption of a valid file must produce an error or wrong
    /// data, never a panic.
    #[test]
    fn reader_never_panics_on_corruption(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut cur = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut cur).unwrap();
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        w.dataset("g/d", Dtype::F64, &[64]).unwrap()
            .with_codec("xor-delta8,rle").unwrap()
            .write_pod(&data).unwrap();
        w.finish().unwrap();
        let mut bytes = cur.into_inner();
        for (pos, mask) in flips {
            let n = bytes.len();
            bytes[pos as usize % n] ^= mask | 1;
        }
        if let Ok(mut r) = FileReader::new(Cursor::new(bytes)) {
            let _ = r.read_pod::<f64>("g/d");
            let _ = r.dump();
        }
    }
}
