//! `dh5dump` — the `h5ls`/`h5dump` equivalent for h5lite files.
//!
//! ```text
//! dh5dump FILE...            # tree listing with shapes, codecs, ratios
//! dh5dump --data PATH FILE   # also print a dataset's values
//! ```

use std::process::ExitCode;

use h5lite::FileReader;

fn usage() -> ExitCode {
    eprintln!("usage: dh5dump [--data DATASET] FILE...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut data_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => match it.next() {
                Some(p) => data_path = Some(p),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: dh5dump [--data DATASET] FILE...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut status = ExitCode::SUCCESS;
    for file in &files {
        match FileReader::open(file) {
            Ok(mut reader) => {
                println!("{file}:");
                print!("{}", indent(&reader.dump()));
                if let Some(path) = &data_path {
                    match reader.dataset(path).map(|d| d.dtype) {
                        Ok(dtype) => print_data(&mut reader, path, dtype),
                        Err(e) => {
                            eprintln!("dh5dump: {file}: {e}");
                            status = ExitCode::FAILURE;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("dh5dump: {file}: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

fn print_data(
    reader: &mut FileReader<std::io::BufReader<std::fs::File>>,
    path: &str,
    dtype: h5lite::Dtype,
) {
    use h5lite::Dtype as D;
    const LIMIT: usize = 64;
    macro_rules! dump_as {
        ($t:ty) => {{
            match reader.read_pod::<$t>(path) {
                Ok(values) => {
                    let shown = values.len().min(LIMIT);
                    let rendered: Vec<String> =
                        values[..shown].iter().map(|v| format!("{v}")).collect();
                    let ellipsis = if values.len() > LIMIT { ", …" } else { "" };
                    println!("  {path} = [{}{}]", rendered.join(", "), ellipsis);
                }
                Err(e) => eprintln!("dh5dump: {path}: {e}"),
            }
        }};
    }
    match dtype {
        D::I8 => dump_as!(i8),
        D::I16 => dump_as!(i16),
        D::I32 => dump_as!(i32),
        D::I64 => dump_as!(i64),
        D::U8 => dump_as!(u8),
        D::U16 => dump_as!(u16),
        D::U32 => dump_as!(u32),
        D::U64 => dump_as!(u64),
        D::F32 => dump_as!(f32),
        D::F64 => dump_as!(f64),
    }
}
