//! Element types of datasets.

use crate::error::{H5Error, H5Result};

/// Scalar element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Dtype {
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    F32,
    F64,
}

impl Dtype {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            Dtype::I8 | Dtype::U8 => 1,
            Dtype::I16 | Dtype::U16 => 2,
            Dtype::I32 | Dtype::U32 | Dtype::F32 => 4,
            Dtype::I64 | Dtype::U64 | Dtype::F64 => 8,
        }
    }

    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            Dtype::I8 => 0,
            Dtype::I16 => 1,
            Dtype::I32 => 2,
            Dtype::I64 => 3,
            Dtype::U8 => 4,
            Dtype::U16 => 5,
            Dtype::U32 => 6,
            Dtype::U64 => 7,
            Dtype::F32 => 8,
            Dtype::F64 => 9,
        }
    }

    /// Inverse of [`Dtype::code`].
    pub fn from_code(code: u8) -> H5Result<Self> {
        Ok(match code {
            0 => Dtype::I8,
            1 => Dtype::I16,
            2 => Dtype::I32,
            3 => Dtype::I64,
            4 => Dtype::U8,
            5 => Dtype::U16,
            6 => Dtype::U32,
            7 => Dtype::U64,
            8 => Dtype::F32,
            9 => Dtype::F64,
            other => return Err(H5Error::Corrupt(format!("unknown dtype code {other}"))),
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::I8 => "i8",
            Dtype::I16 => "i16",
            Dtype::I32 => "i32",
            Dtype::I64 => "i64",
            Dtype::U8 => "u8",
            Dtype::U16 => "u16",
            Dtype::U32 => "u32",
            Dtype::U64 => "u64",
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Marker for element types that map onto a [`Dtype`].
///
/// # Safety
///
/// Implementors must be `Copy` with no padding and no invalid bit patterns,
/// and `DTYPE` must match the Rust type exactly.
pub unsafe trait H5Pod: Copy + 'static {
    /// The corresponding dataset element type.
    const DTYPE: Dtype;
}

macro_rules! impl_h5pod {
    ($($t:ty => $d:expr),*) => { $(
        // SAFETY: primitive numeric types are Copy, have no padding
        // bytes, and every bit pattern is a valid value.
        unsafe impl H5Pod for $t { const DTYPE: Dtype = $d; }
    )* };
}
impl_h5pod!(
    i8 => Dtype::I8, i16 => Dtype::I16, i32 => Dtype::I32, i64 => Dtype::I64,
    u8 => Dtype::U8, u16 => Dtype::U16, u32 => Dtype::U32, u64 => Dtype::U64,
    f32 => Dtype::F32, f64 => Dtype::F64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for d in [
            Dtype::I8,
            Dtype::I16,
            Dtype::I32,
            Dtype::I64,
            Dtype::U8,
            Dtype::U16,
            Dtype::U32,
            Dtype::U64,
            Dtype::F32,
            Dtype::F64,
        ] {
            assert_eq!(Dtype::from_code(d.code()).unwrap(), d);
        }
        assert!(Dtype::from_code(200).is_err());
    }

    #[test]
    fn sizes() {
        assert_eq!(Dtype::F64.size_bytes(), 8);
        assert_eq!(Dtype::U16.size_bytes(), 2);
        assert_eq!(<f32 as H5Pod>::DTYPE, Dtype::F32);
    }
}
