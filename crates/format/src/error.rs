//! Error handling for h5lite.

use std::fmt;

/// Result alias for h5lite operations.
pub type H5Result<T> = Result<T, H5Error>;

/// Failure modes of reading or writing an h5lite file.
#[derive(Debug)]
pub enum H5Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file violates the format (bad magic, truncated footer, …).
    Corrupt(String),
    /// A referenced path does not exist.
    NotFound(String),
    /// Dataset exists but with a different type or shape than requested.
    TypeMismatch(String),
    /// Attempt to create an object that already exists.
    AlreadyExists(String),
    /// Compressed chunk failed to decode.
    Codec(codec::CodecError),
    /// API misuse (e.g. writing after `finish`).
    InvalidState(String),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::Io(e) => write!(f, "I/O error: {e}"),
            H5Error::Corrupt(m) => write!(f, "corrupt file: {m}"),
            H5Error::NotFound(p) => write!(f, "not found: {p}"),
            H5Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            H5Error::AlreadyExists(p) => write!(f, "already exists: {p}"),
            H5Error::Codec(e) => write!(f, "{e}"),
            H5Error::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for H5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            H5Error::Io(e) => Some(e),
            H5Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

impl From<codec::CodecError> for H5Error {
    fn from(e: codec::CodecError) -> Self {
        H5Error::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(H5Error::NotFound("/a/b".into())
            .to_string()
            .contains("/a/b"));
        assert!(H5Error::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let io = H5Error::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("I/O error"));
    }
}
