//! Reading h5lite files: metadata, datasets, and the `dump` inspector.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use codec::{Codec, Pipeline};

use crate::dtype::H5Pod;
use crate::error::{H5Error, H5Result};
use crate::meta::{AttrValue, DatasetMeta, FileMeta, Layout};
use crate::{MAGIC, TRAILER_MAGIC, VERSION};

/// Random-access reader over any seekable source.
pub struct FileReader<R: Read + Seek> {
    r: R,
    meta: FileMeta,
}

impl FileReader<std::io::BufReader<std::fs::File>> {
    /// Open a file from disk (buffered).
    pub fn open(path: impl AsRef<Path>) -> H5Result<Self> {
        let f = std::fs::File::open(path)?;
        FileReader::new(std::io::BufReader::new(f))
    }
}

impl<R: Read + Seek> FileReader<R> {
    /// Validate header and trailer, then load the metadata footer.
    pub fn new(mut r: R) -> H5Result<Self> {
        let mut header = [0u8; 16];
        r.seek(SeekFrom::Start(0))?;
        r.read_exact(&mut header)
            .map_err(|_| H5Error::Corrupt("file shorter than header".into()))?;
        if &header[..8] != MAGIC {
            return Err(H5Error::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(H5Error::Corrupt(format!("unsupported version {version}")));
        }
        let end = r.seek(SeekFrom::End(0))?;
        if end < 16 + 24 {
            return Err(H5Error::Corrupt(
                "file shorter than header + trailer".into(),
            ));
        }
        r.seek(SeekFrom::End(-24))?;
        let mut trailer = [0u8; 24];
        r.read_exact(&mut trailer)?;
        if &trailer[16..] != TRAILER_MAGIC {
            return Err(H5Error::Corrupt(
                "bad trailer magic (file not finished?)".into(),
            ));
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().unwrap());
        let footer_len = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        if footer_offset + footer_len + 24 != end {
            return Err(H5Error::Corrupt("trailer does not point at footer".into()));
        }
        r.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len as usize];
        r.read_exact(&mut footer)?;
        let meta = FileMeta::decode(&footer)?;
        Ok(FileReader { r, meta })
    }

    /// The file's metadata tree.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Metadata of a dataset.
    pub fn dataset(&self, path: &str) -> H5Result<&DatasetMeta> {
        let path = FileMeta::normalize(path);
        self.meta.datasets.get(&path).ok_or(H5Error::NotFound(path))
    }

    /// Attribute on a group or dataset.
    pub fn attr(&self, path: &str, key: &str) -> Option<&AttrValue> {
        let path = FileMeta::normalize(path);
        if let Some(ds) = self.meta.datasets.get(&path) {
            return ds.attrs.get(key);
        }
        self.meta.groups.get(&path).and_then(|g| g.attrs.get(key))
    }

    /// Immediate children of a group: `(name, is_dataset)`.
    pub fn list(&self, group: &str) -> Vec<(String, bool)> {
        self.meta.list(group)
    }

    /// Read and decompress a dataset's full contents as bytes.
    pub fn read_bytes(&mut self, path: &str) -> H5Result<Vec<u8>> {
        let ds = self.dataset(path)?.clone();
        let pipeline = if ds.codec_spec.is_empty() {
            None
        } else {
            Some(Pipeline::from_spec(&ds.codec_spec)?)
        };
        // Validate every extent against the actual file size before
        // allocating anything: a corrupted footer must produce a clean
        // error, not a gigantic allocation.
        let file_size = self.r.seek(SeekFrom::End(0))?;
        let extents: Vec<(u64, u64)> = match &ds.layout {
            Layout::Contiguous { offset, stored_len } => vec![(*offset, *stored_len)],
            Layout::Chunked { chunks, .. } => chunks.clone(),
        };
        for &(offset, len) in &extents {
            if offset.checked_add(len).is_none_or(|end| end > file_size) {
                return Err(H5Error::Corrupt(format!(
                    "dataset '{path}' extent [{offset}, +{len}) exceeds the {file_size}-byte file"
                )));
            }
        }
        if ds.byte_size() > file_size.saturating_mul(1024) {
            // Even with extreme compression a dataset cannot plausibly
            // expand this far; the shape is corrupt.
            return Err(H5Error::Corrupt(format!(
                "dataset '{path}' declares {} bytes in a {file_size}-byte file",
                ds.byte_size()
            )));
        }
        let mut out = Vec::with_capacity(ds.byte_size() as usize);
        for (offset, len) in extents {
            self.r.seek(SeekFrom::Start(offset))?;
            let mut stored = vec![0u8; len as usize];
            self.r.read_exact(&mut stored)?;
            match &pipeline {
                Some(p) => out.extend_from_slice(&p.decode(&stored)?),
                None => out.extend_from_slice(&stored),
            }
        }
        if out.len() as u64 != ds.byte_size() {
            return Err(H5Error::Corrupt(format!(
                "dataset '{path}' decoded to {} bytes, expected {}",
                out.len(),
                ds.byte_size()
            )));
        }
        Ok(out)
    }

    /// Read a dataset as a typed vector; the element type must match.
    pub fn read_pod<T: H5Pod>(&mut self, path: &str) -> H5Result<Vec<T>> {
        let ds = self.dataset(path)?;
        if ds.dtype != T::DTYPE {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{path}' is {}, read_pod called with {}",
                ds.dtype,
                T::DTYPE
            )));
        }
        let bytes = self.read_bytes(path)?;
        let size = std::mem::size_of::<T>();
        debug_assert_eq!(bytes.len() % size, 0);
        let n = bytes.len() / size;
        let mut out: Vec<T> = Vec::with_capacity(n);
        // SAFETY: any bit pattern is a valid T (H5Pod); copy handles alignment.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
            out.set_len(n);
        }
        Ok(out)
    }

    /// Read a contiguous row range of a dataset (rows = indices along the
    /// slowest dimension) without materializing the whole array.
    ///
    /// For chunked layouts only the chunks overlapping the range are read
    /// and decoded — the hyperslab access pattern analysis tools use on
    /// large node files. For contiguous uncompressed layouts the byte
    /// window is read directly; contiguous *compressed* layouts must
    /// decode the single extent (the format stores them as one unit).
    pub fn read_rows_pod<T: H5Pod>(
        &mut self,
        path: &str,
        row_start: u64,
        row_count: u64,
    ) -> H5Result<Vec<T>> {
        let ds = self.dataset(path)?.clone();
        if ds.dtype != T::DTYPE {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{path}' is {}, read_rows_pod called with {}",
                ds.dtype,
                T::DTYPE
            )));
        }
        let rows_total = ds.shape[0];
        if row_start
            .checked_add(row_count)
            .is_none_or(|end| end > rows_total)
        {
            return Err(H5Error::NotFound(format!(
                "{path}: rows [{row_start}, +{row_count}) outside 0..{rows_total}"
            )));
        }
        let row_elems: u64 = ds.shape[1..].iter().product::<u64>().max(1);
        let row_bytes = row_elems * ds.dtype.size_bytes() as u64;
        let want_start = row_start * row_bytes;
        let want_len = row_count * row_bytes;

        let bytes: Vec<u8> = match &ds.layout {
            Layout::Contiguous { offset, stored_len } => {
                if ds.codec_spec.is_empty() {
                    // Direct window read.
                    let file_size = self.r.seek(SeekFrom::End(0))?;
                    let begin = offset + want_start;
                    if begin + want_len > file_size || begin + want_len > offset + stored_len {
                        return Err(H5Error::Corrupt(format!(
                            "dataset '{path}' window exceeds its extent"
                        )));
                    }
                    self.r.seek(SeekFrom::Start(begin))?;
                    let mut buf = vec![0u8; want_len as usize];
                    self.r.read_exact(&mut buf)?;
                    buf
                } else {
                    // One compressed unit: decode all, then slice.
                    let all = self.read_bytes(path)?;
                    all[want_start as usize..(want_start + want_len) as usize].to_vec()
                }
            }
            Layout::Chunked {
                rows_per_chunk,
                chunks,
            } => {
                if *rows_per_chunk == 0 {
                    return Err(H5Error::Corrupt(format!(
                        "dataset '{path}' declares zero rows per chunk"
                    )));
                }
                let pipeline = if ds.codec_spec.is_empty() {
                    None
                } else {
                    Some(Pipeline::from_spec(&ds.codec_spec)?)
                };
                let file_size = self.r.seek(SeekFrom::End(0))?;
                let first_chunk = (row_start / rows_per_chunk) as usize;
                let last_chunk = ((row_start + row_count - 1) / rows_per_chunk) as usize;
                if last_chunk >= chunks.len() {
                    return Err(H5Error::Corrupt(format!(
                        "dataset '{path}' chunk table too short for its shape"
                    )));
                }
                let mut assembled = Vec::with_capacity(
                    ((last_chunk - first_chunk + 1) as u64 * rows_per_chunk * row_bytes) as usize,
                );
                for &(offset, len) in &chunks[first_chunk..=last_chunk] {
                    if offset.checked_add(len).is_none_or(|end| end > file_size) {
                        return Err(H5Error::Corrupt(format!(
                            "dataset '{path}' chunk extent exceeds the file"
                        )));
                    }
                    self.r.seek(SeekFrom::Start(offset))?;
                    let mut stored = vec![0u8; len as usize];
                    self.r.read_exact(&mut stored)?;
                    match &pipeline {
                        Some(p) => assembled.extend_from_slice(&p.decode(&stored)?),
                        None => assembled.extend_from_slice(&stored),
                    }
                }
                // Trim to the requested window inside the assembled chunks.
                let skip = (row_start - first_chunk as u64 * rows_per_chunk) * row_bytes;
                let end = skip + want_len;
                if end as usize > assembled.len() {
                    return Err(H5Error::Corrupt(format!(
                        "dataset '{path}' chunks decoded short: {} < {end}",
                        assembled.len()
                    )));
                }
                assembled[skip as usize..end as usize].to_vec()
            }
        };

        let size = std::mem::size_of::<T>();
        debug_assert_eq!(bytes.len() % size, 0);
        let n = bytes.len() / size;
        let mut out: Vec<T> = Vec::with_capacity(n);
        // SAFETY: any bit pattern is a valid T (H5Pod); copy handles alignment.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
            out.set_len(n);
        }
        Ok(out)
    }

    /// `h5ls`-style listing of the whole file, including compression ratios.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (path, g) in &self.meta.groups {
            if path.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{path}/");
            for (k, v) in &g.attrs {
                let _ = writeln!(out, "    @{k} = {v:?}");
            }
        }
        for (path, d) in &self.meta.datasets {
            let shape: Vec<String> = d.shape.iter().map(|s| s.to_string()).collect();
            let codec = if d.codec_spec.is_empty() {
                String::new()
            } else {
                format!(
                    "  codec={} ({:.2}:1)",
                    d.codec_spec,
                    d.byte_size() as f64 / d.stored_size().max(1) as f64
                )
            };
            let layout = match &d.layout {
                Layout::Contiguous { .. } => "contiguous".to_string(),
                Layout::Chunked {
                    chunks,
                    rows_per_chunk,
                } => {
                    format!("chunked[{} x {} rows]", chunks.len(), rows_per_chunk)
                }
            };
            let _ = writeln!(
                out,
                "{path}  {} [{}]  {layout}{codec}",
                d.dtype,
                shape.join("x")
            );
            for (k, v) in &d.attrs {
                let _ = writeln!(out, "    @{k} = {v:?}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Dtype;
    use crate::writer::FileWriter;
    use std::io::Cursor;

    fn build_sample() -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut cur).unwrap();
        let u: Vec<f64> = (0..60).map(|i| i as f64 * 0.5).collect();
        w.dataset("cm1/it0/u", Dtype::F64, &[3, 4, 5])
            .unwrap()
            .write_pod(&u)
            .unwrap();
        let theta: Vec<f32> = (0..64).map(|i| 300.0 + i as f32).collect();
        w.dataset("cm1/it0/theta", Dtype::F32, &[8, 8])
            .unwrap()
            .chunked(2)
            .unwrap()
            .with_codec("xor-delta4,rle")
            .unwrap()
            .write_pod(&theta)
            .unwrap();
        w.set_attr("cm1/it0", "time", 0.5f64).unwrap();
        w.set_attr("cm1/it0/u", "unit", "m/s").unwrap();
        w.finish().unwrap();
        cur.into_inner()
    }

    #[test]
    fn full_roundtrip() {
        let bytes = build_sample();
        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        let u = r.read_pod::<f64>("cm1/it0/u").unwrap();
        assert_eq!(u.len(), 60);
        assert_eq!(u[2], 1.0);
        let theta = r.read_pod::<f32>("/cm1/it0/theta").unwrap();
        assert_eq!(theta[63], 363.0);
        assert_eq!(r.attr("cm1/it0", "time").unwrap().as_f64(), Some(0.5));
        assert_eq!(r.attr("cm1/it0/u", "unit").unwrap().as_str(), Some("m/s"));
    }

    #[test]
    fn listing_and_dump() {
        let bytes = build_sample();
        let r = FileReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.list(""), vec![("cm1".to_string(), false)]);
        assert_eq!(
            r.list("cm1/it0"),
            vec![("theta".to_string(), true), ("u".to_string(), true)]
        );
        let dump = r.dump();
        assert!(
            dump.contains("cm1/it0/u  f64 [3x4x5]  contiguous"),
            "{dump}"
        );
        assert!(dump.contains("chunked[4 x 2 rows]"), "{dump}");
        assert!(dump.contains("codec=xor-delta4,rle"), "{dump}");
    }

    #[test]
    fn type_mismatch_on_read() {
        let bytes = build_sample();
        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.read_pod::<f32>("cm1/it0/u"),
            Err(H5Error::TypeMismatch(_))
        ));
    }

    #[test]
    fn missing_dataset() {
        let bytes = build_sample();
        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(r.read_bytes("nope"), Err(H5Error::NotFound(_))));
    }

    #[test]
    fn unfinished_file_rejected() {
        let mut cur = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut cur).unwrap();
        w.dataset("d", Dtype::U8, &[4])
            .unwrap()
            .write_pod(&[1u8, 2, 3, 4])
            .unwrap();
        // No finish().
        drop(w);
        let bytes = cur.into_inner();
        assert!(FileReader::new(Cursor::new(bytes)).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut bytes = build_sample();
        bytes[0] ^= 0xff;
        assert!(FileReader::new(Cursor::new(bytes)).is_err());
    }

    #[test]
    fn corrupt_trailer_rejected() {
        let mut bytes = build_sample();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(FileReader::new(Cursor::new(bytes)).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = build_sample();
        for cut in [3usize, 17, bytes.len() - 5] {
            assert!(
                FileReader::new(Cursor::new(bytes[..cut].to_vec())).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn on_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("h5lite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dh5");
        {
            let mut w = FileWriter::create(&path).unwrap();
            w.dataset("x", Dtype::I64, &[5])
                .unwrap()
                .write_pod(&[1i64, -2, 3, -4, 5])
                .unwrap();
            w.finish().unwrap();
        }
        let mut r = FileReader::open(&path).unwrap();
        assert_eq!(r.read_pod::<i64>("x").unwrap(), vec![1, -2, 3, -4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Reference data for the row-range tests: a 10×4 f64 grid where
    /// element (r, c) = 100r + c.
    fn rows_sample(codec: Option<&str>, chunk: Option<u64>) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut cur).unwrap();
        let data: Vec<f64> = (0..10)
            .flat_map(|r| (0..4).map(move |c| (100 * r + c) as f64))
            .collect();
        let mut b = w.dataset("grid", Dtype::F64, &[10, 4]).unwrap();
        if let Some(spec) = codec {
            b = b.with_codec(spec).unwrap();
        }
        if let Some(rows) = chunk {
            b = b.chunked(rows).unwrap();
        }
        b.write_pod(&data).unwrap();
        w.finish().unwrap();
        cur.into_inner()
    }

    fn expected_rows(start: u64, count: u64) -> Vec<f64> {
        (start..start + count)
            .flat_map(|r| (0..4).map(move |c| (100 * r + c) as f64))
            .collect()
    }

    #[test]
    fn read_rows_all_layouts() {
        for (codec, chunk) in [
            (None, None),                      // contiguous raw
            (Some("xor-delta8,rle"), None),    // contiguous compressed
            (None, Some(3)),                   // chunked raw
            (Some("xor-delta8,rle"), Some(3)), // chunked compressed
            (None, Some(1)),                   // one row per chunk
            (Some("rle"), Some(16)),           // single oversized chunk
        ] {
            let bytes = rows_sample(codec, chunk);
            let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
            for (start, count) in [(0u64, 10u64), (0, 1), (9, 1), (2, 5), (3, 4)] {
                let got = r.read_rows_pod::<f64>("grid", start, count).unwrap();
                assert_eq!(
                    got,
                    expected_rows(start, count),
                    "codec {codec:?} chunk {chunk:?} rows [{start}, +{count})"
                );
            }
        }
    }

    #[test]
    fn read_rows_validates_range_and_type() {
        let bytes = rows_sample(None, Some(3));
        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.read_rows_pod::<f64>("grid", 8, 3),
            Err(H5Error::NotFound(_))
        ));
        assert!(matches!(
            r.read_rows_pod::<f32>("grid", 0, 1),
            Err(H5Error::TypeMismatch(_))
        ));
        assert!(matches!(
            r.read_rows_pod::<f64>("ghost", 0, 1),
            Err(H5Error::NotFound(_))
        ));
    }

    #[test]
    fn read_rows_matches_full_read() {
        let bytes = rows_sample(Some("xor-delta8,shuffle8,rle,lzss"), Some(4));
        let mut r = FileReader::new(Cursor::new(bytes)).unwrap();
        let full = r.read_pod::<f64>("grid").unwrap();
        let windowed = r.read_rows_pod::<f64>("grid", 4, 4).unwrap();
        assert_eq!(windowed, full[4 * 4..8 * 4]);
    }
}
