//! # h5lite
//!
//! A self-contained hierarchical scientific data format — the role HDF5
//! plays in the original Damaris deployment ("this plugin system may simply
//! be used to forward I/O operations to the HDF5 library", §III.A).
//!
//! A file contains:
//!
//! * **groups** — a slash-separated namespace (`/cm1/it0042/u`),
//! * **datasets** — typed n-dimensional arrays with contiguous or
//!   row-chunked storage and an optional per-chunk compression pipeline
//!   (from the [`codec`] crate),
//! * **attributes** — small key/value metadata on groups and datasets
//!   (ints, floats, strings).
//!
//! The on-disk layout is write-once: a fixed header, the raw (possibly
//! compressed) dataset bytes in append order, a metadata footer describing
//! the tree, and a trailer pointing at the footer. Readers seek to the
//! trailer, load the footer, then read dataset extents on demand — the same
//! access pattern HDF5 gives the paper's post-processing tools.
//!
//! ```
//! use h5lite::{Dtype, FileReader, FileWriter};
//!
//! let mut buf = std::io::Cursor::new(Vec::new());
//! let mut w = FileWriter::new(&mut buf).unwrap();
//! let temps: Vec<f64> = (0..12).map(|i| 280.0 + i as f64).collect();
//! w.dataset("cm1/it0/temperature", Dtype::F64, &[3, 4]).unwrap()
//!     .write_pod(&temps).unwrap();
//! w.set_attr("cm1/it0", "time", 0.25f64).unwrap();
//! w.finish().unwrap();
//!
//! let bytes = buf.into_inner();
//! let mut r = FileReader::new(std::io::Cursor::new(bytes)).unwrap();
//! let ds = r.read_pod::<f64>("cm1/it0/temperature").unwrap();
//! assert_eq!(ds.len(), 12);
//! assert_eq!(r.attr("cm1/it0", "time").unwrap().as_f64(), Some(0.25));
//! ```

// Every operation inside an `unsafe fn` must state its own `unsafe {}`
// block (with its SAFETY comment — enforced by scripts/unsafe_audit.py).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dtype;
pub mod error;
pub mod meta;
pub mod reader;
pub mod wire;
pub mod writer;

pub use dtype::Dtype;
pub use error::{H5Error, H5Result};
pub use meta::{AttrValue, DatasetMeta, FileMeta, GroupMeta, Layout};
pub use reader::FileReader;
pub use writer::{DatasetBuilder, FileStats, FileWriter};

/// Magic bytes opening every h5lite file.
pub const MAGIC: &[u8; 8] = b"DH5LITE\0";
/// Magic bytes closing every h5lite file (trailer integrity check).
pub const TRAILER_MAGIC: &[u8; 8] = b"DH5LEND\0";
/// Current format version.
pub const VERSION: u32 = 1;
