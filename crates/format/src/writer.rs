//! Write-once file construction.

use std::collections::BTreeMap;
use std::io::{Seek, Write};
use std::path::Path;

use codec::pipeline::EncodeScratch;
use codec::Pipeline;

use crate::dtype::{Dtype, H5Pod};
use crate::error::{H5Error, H5Result};
use crate::meta::{AttrValue, DatasetMeta, FileMeta, GroupMeta, Layout};
use crate::{MAGIC, TRAILER_MAGIC, VERSION};

/// Summary returned by [`FileWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStats {
    /// Logical (uncompressed) dataset bytes.
    pub logical_bytes: u64,
    /// Bytes actually stored for datasets (after codecs).
    pub stored_bytes: u64,
    /// Number of datasets.
    pub datasets: usize,
    /// Total file size including header, footer and trailer.
    pub file_bytes: u64,
}

/// Streaming writer for an h5lite file.
///
/// Datasets are written append-only; metadata is kept in memory and flushed
/// as a footer by [`FileWriter::finish`]. Dropping without `finish` leaves
/// an unreadable file — deliberate, matching HDF5's behaviour on crash.
pub struct FileWriter<W: Write + Seek> {
    w: W,
    meta: FileMeta,
    pos: u64,
    logical_bytes: u64,
    finished: bool,
}

impl FileWriter<std::io::BufWriter<std::fs::File>> {
    /// Create a file on disk (buffered).
    pub fn create(path: impl AsRef<Path>) -> H5Result<Self> {
        let f = std::fs::File::create(path)?;
        FileWriter::new(std::io::BufWriter::new(f))
    }

    /// Push buffered dataset bytes to the OS and `fsync` them, without
    /// finishing the file. The durability half of the storage pipeline's
    /// background flusher: data written so far survives a crash of the
    /// process (the file only becomes *readable* after
    /// [`FileWriter::finish`], matching HDF5 semantics).
    pub fn sync_data(&mut self) -> H5Result<()> {
        self.w.flush()?;
        self.w.get_ref().sync_data()?;
        Ok(())
    }

    /// Like [`FileWriter::finish`], but additionally `fsync`s file contents
    /// and metadata to disk before returning — the durability knob
    /// `finish` deliberately omits (it only flushes userspace buffers).
    pub fn finish_synced(&mut self) -> H5Result<FileStats> {
        let stats = self.finish()?;
        self.w.get_ref().sync_all()?;
        Ok(stats)
    }
}

impl<W: Write + Seek> FileWriter<W> {
    /// Start writing into any seekable sink.
    pub fn new(mut w: W) -> H5Result<Self> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?; // flags, reserved
        let mut meta = FileMeta::default();
        meta.groups.insert(String::new(), GroupMeta::default()); // root
        Ok(FileWriter {
            w,
            meta,
            pos: 16,
            logical_bytes: 0,
            finished: false,
        })
    }

    /// Push buffered bytes to the underlying sink without any `fsync`.
    ///
    /// The cheap half of the durability split: the writing thread flushes
    /// its userspace buffer, while a background flusher `fsync`s through a
    /// duplicated file handle (see [`FileWriter::sync_data`], which does
    /// both on one thread).
    pub fn flush(&mut self) -> H5Result<()> {
        self.w.flush()?;
        Ok(())
    }

    fn check_open(&self) -> H5Result<()> {
        if self.finished {
            return Err(H5Error::InvalidState("writer already finished".into()));
        }
        Ok(())
    }

    /// Create a group (and any missing ancestors). Idempotent.
    pub fn create_group(&mut self, path: &str) -> H5Result<()> {
        self.check_open()?;
        let path = FileMeta::normalize(path);
        if self.meta.datasets.contains_key(&path) {
            return Err(H5Error::AlreadyExists(format!("{path} is a dataset")));
        }
        let mut prefix = String::new();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(part);
            self.meta.groups.entry(prefix.clone()).or_default();
        }
        Ok(())
    }

    /// Attach an attribute to a group or dataset. Creates the group if the
    /// path names nothing yet.
    pub fn set_attr(&mut self, path: &str, key: &str, value: impl Into<AttrValue>) -> H5Result<()> {
        self.check_open()?;
        let path = FileMeta::normalize(path);
        let value = value.into();
        if let Some(ds) = self.meta.datasets.get_mut(&path) {
            ds.attrs.insert(key.to_string(), value);
            return Ok(());
        }
        self.create_group(&path)?;
        self.meta
            .groups
            .get_mut(&path)
            .expect("group just created")
            .attrs
            .insert(key.to_string(), value);
        Ok(())
    }

    /// Begin a dataset at `path` with the given element type and shape.
    /// Parent groups are created automatically.
    pub fn dataset(
        &mut self,
        path: &str,
        dtype: Dtype,
        shape: &[u64],
    ) -> H5Result<DatasetBuilder<'_, W>> {
        self.check_open()?;
        let path = FileMeta::normalize(path);
        if path.is_empty() {
            return Err(H5Error::InvalidState(
                "dataset path must be non-empty".into(),
            ));
        }
        if shape.is_empty() || shape.contains(&0) {
            return Err(H5Error::InvalidState(format!(
                "dataset '{path}' must have positive extents, got {shape:?}"
            )));
        }
        if self.meta.datasets.contains_key(&path) || self.meta.groups.contains_key(&path) {
            return Err(H5Error::AlreadyExists(path));
        }
        if let Some((parent, _)) = path.rsplit_once('/') {
            self.create_group(parent)?;
        }
        Ok(DatasetBuilder {
            fw: self,
            path,
            dtype,
            shape: shape.to_vec(),
            pipeline: None,
            rows_per_chunk: None,
        })
    }

    fn append_extent(&mut self, bytes: &[u8]) -> H5Result<(u64, u64)> {
        let offset = self.pos;
        self.w.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok((offset, bytes.len() as u64))
    }

    /// Write the footer and trailer; the file becomes readable.
    pub fn finish(&mut self) -> H5Result<FileStats> {
        self.check_open()?;
        let footer = self.meta.encode();
        let footer_offset = self.pos;
        self.w.write_all(&footer)?;
        self.w.write_all(&footer_offset.to_le_bytes())?;
        self.w.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.w.write_all(TRAILER_MAGIC)?;
        self.w.flush()?;
        self.finished = true;
        let stored: u64 = self.meta.datasets.values().map(|d| d.stored_size()).sum();
        Ok(FileStats {
            logical_bytes: self.logical_bytes,
            stored_bytes: stored,
            datasets: self.meta.datasets.len(),
            file_bytes: footer_offset + footer.len() as u64 + 24,
        })
    }

    /// Current metadata snapshot (for tests and tooling).
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }
}

/// Builder configuring and writing one dataset.
pub struct DatasetBuilder<'a, W: Write + Seek> {
    fw: &'a mut FileWriter<W>,
    path: String,
    dtype: Dtype,
    shape: Vec<u64>,
    pipeline: Option<std::sync::Arc<Pipeline>>,
    rows_per_chunk: Option<u64>,
}

impl<'a, W: Write + Seek> DatasetBuilder<'a, W> {
    /// Compress every stored extent with the given codec pipeline spec.
    pub fn with_codec(mut self, spec: &str) -> H5Result<Self> {
        self.pipeline = Some(std::sync::Arc::new(Pipeline::from_spec(spec)?));
        Ok(self)
    }

    /// Compress with a pre-built pipeline, shared across datasets — the
    /// storage pipeline's steady-state path, which must not re-parse the
    /// spec (and re-allocate the stage boxes) on every dataset.
    pub fn with_pipeline(mut self, pipeline: std::sync::Arc<Pipeline>) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Chunk along the slowest dimension, `rows` rows per chunk.
    pub fn chunked(mut self, rows: u64) -> H5Result<Self> {
        if rows == 0 {
            return Err(H5Error::InvalidState(
                "rows_per_chunk must be positive".into(),
            ));
        }
        self.rows_per_chunk = Some(rows);
        Ok(self)
    }

    /// Write the dataset from a typed slice; the element type must match.
    pub fn write_pod<T: H5Pod>(self, data: &[T]) -> H5Result<()> {
        if T::DTYPE != self.dtype {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{}' is {}, write_pod called with {}",
                self.path,
                self.dtype,
                T::DTYPE
            )));
        }
        // SAFETY: H5Pod types have no padding and no invalid bit patterns.
        let bytes = unsafe {
            std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
        };
        self.write_bytes(bytes)
    }

    /// [`DatasetBuilder::write_pod`] through caller-owned codec scratch
    /// (see [`DatasetBuilder::write_bytes_with`]).
    pub fn write_pod_with<T: H5Pod>(self, data: &[T], scratch: &mut EncodeScratch) -> H5Result<()> {
        if T::DTYPE != self.dtype {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{}' is {}, write_pod called with {}",
                self.path,
                self.dtype,
                T::DTYPE
            )));
        }
        // SAFETY: H5Pod types have no padding and no invalid bit patterns.
        let bytes = unsafe {
            std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
        };
        self.write_bytes_with(bytes, scratch)
    }

    /// Write the dataset from raw little-endian bytes.
    pub fn write_bytes(self, bytes: &[u8]) -> H5Result<()> {
        let mut scratch = EncodeScratch::new();
        self.write_bytes_with(bytes, &mut scratch)
    }

    /// Like [`DatasetBuilder::write_bytes`], but codec encoding runs
    /// through caller-owned scratch buffers. A long-lived scratch makes
    /// steady-state writes allocation-free on the codec path — what the
    /// storage pipeline's per-variable scratch relies on. Uncompressed
    /// datasets append straight from `bytes` with no copy at all.
    pub fn write_bytes_with(self, bytes: &[u8], scratch: &mut EncodeScratch) -> H5Result<()> {
        let expect = self.shape.iter().product::<u64>() * self.dtype.size_bytes() as u64;
        if bytes.len() as u64 != expect {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{}' with shape {:?} of {} needs {expect} bytes, got {}",
                self.path,
                self.shape,
                self.dtype,
                bytes.len()
            )));
        }
        let codec_spec = self
            .pipeline
            .as_ref()
            .map(|p| p.spec().to_string())
            .unwrap_or_default();

        let layout = match self.rows_per_chunk {
            None => {
                let (offset, stored_len) = match &self.pipeline {
                    Some(p) => {
                        let stored = p.encode_with(bytes, scratch);
                        self.fw.append_extent(stored)?
                    }
                    None => self.fw.append_extent(bytes)?,
                };
                Layout::Contiguous { offset, stored_len }
            }
            Some(rows) => {
                let row_bytes =
                    self.shape[1..].iter().product::<u64>() as usize * self.dtype.size_bytes();
                let chunk_bytes = (rows as usize).saturating_mul(row_bytes.max(1)).max(1);
                let mut chunks = Vec::new();
                for chunk in bytes.chunks(chunk_bytes) {
                    let extent = match &self.pipeline {
                        Some(p) => {
                            let stored = p.encode_with(chunk, scratch);
                            self.fw.append_extent(stored)?
                        }
                        None => self.fw.append_extent(chunk)?,
                    };
                    chunks.push(extent);
                }
                Layout::Chunked {
                    rows_per_chunk: rows,
                    chunks,
                }
            }
        };
        self.fw.logical_bytes += bytes.len() as u64;
        self.fw.meta.datasets.insert(
            self.path,
            DatasetMeta {
                dtype: self.dtype,
                shape: self.shape,
                layout,
                codec_spec,
                attrs: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Append a dataset whose chunks were already encoded elsewhere — the
    /// reassembly half of a parallel encode stage. Workers run
    /// [`Pipeline::encode_with`] over the same chunk boundaries
    /// [`DatasetBuilder::write_bytes_with`] would use (`rows_per_chunk`
    /// rows of the slowest dimension), and the writer thread appends the
    /// results here in order, producing a file byte-identical to the
    /// serial path.
    ///
    /// `logical_len` is the *uncompressed* byte length the chunks decode
    /// to; it must match the dataset shape, and the chunk count must match
    /// the chunking the shape implies. Requires both a pipeline (for the
    /// codec spec recorded in metadata) and `chunked(...)`.
    pub fn write_encoded_chunks<'b>(
        self,
        logical_len: u64,
        encoded: impl IntoIterator<Item = &'b [u8]>,
    ) -> H5Result<()> {
        let expect = self.shape.iter().product::<u64>() * self.dtype.size_bytes() as u64;
        if logical_len != expect {
            return Err(H5Error::TypeMismatch(format!(
                "dataset '{}' with shape {:?} of {} needs {expect} logical bytes, got {}",
                self.path, self.shape, self.dtype, logical_len
            )));
        }
        let codec_spec = match &self.pipeline {
            Some(p) => p.spec().to_string(),
            None => {
                return Err(H5Error::InvalidState(format!(
                    "dataset '{}': write_encoded_chunks needs a codec pipeline",
                    self.path
                )))
            }
        };
        let rows = match self.rows_per_chunk {
            Some(rows) => rows,
            None => {
                return Err(H5Error::InvalidState(format!(
                    "dataset '{}': write_encoded_chunks needs chunked(...)",
                    self.path
                )))
            }
        };
        let row_bytes = self.shape[1..].iter().product::<u64>() as usize * self.dtype.size_bytes();
        let chunk_bytes = (rows as usize).saturating_mul(row_bytes.max(1)).max(1) as u64;
        let want_chunks = logical_len.div_ceil(chunk_bytes).max(1);
        let mut chunks = Vec::new();
        for enc in encoded {
            chunks.push(self.fw.append_extent(enc)?);
        }
        if chunks.len() as u64 != want_chunks {
            return Err(H5Error::InvalidState(format!(
                "dataset '{}': expected {want_chunks} encoded chunks, got {}",
                self.path,
                chunks.len()
            )));
        }
        self.fw.logical_bytes += logical_len;
        self.fw.meta.datasets.insert(
            self.path,
            DatasetMeta {
                dtype: self.dtype,
                shape: self.shape,
                layout: Layout::Chunked {
                    rows_per_chunk: rows,
                    chunks,
                },
                codec_spec,
                attrs: BTreeMap::new(),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn new_writer() -> FileWriter<Cursor<Vec<u8>>> {
        FileWriter::new(Cursor::new(Vec::new())).unwrap()
    }

    #[test]
    fn header_written_first() {
        let w = new_writer();
        drop(w);
        let mut c = Cursor::new(Vec::new());
        let _ = FileWriter::new(&mut c).unwrap();
        let bytes = c.into_inner();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            VERSION
        );
    }

    #[test]
    fn dataset_shape_validation() {
        let mut w = new_writer();
        assert!(w.dataset("d", Dtype::F64, &[]).is_err());
        assert!(w.dataset("d", Dtype::F64, &[0, 3]).is_err());
        assert!(w.dataset("", Dtype::F64, &[1]).is_err());
    }

    #[test]
    fn byte_length_validation() {
        let mut w = new_writer();
        let b = w.dataset("d", Dtype::F64, &[4]).unwrap();
        assert!(b.write_bytes(&[0u8; 31]).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut w = new_writer();
        let b = w.dataset("d", Dtype::F64, &[4]).unwrap();
        assert!(b.write_pod(&[0f32; 4]).is_err());
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let mut w = new_writer();
        w.dataset("d", Dtype::U8, &[1])
            .unwrap()
            .write_pod(&[1u8])
            .unwrap();
        assert!(matches!(
            w.dataset("d", Dtype::U8, &[1]),
            Err(H5Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn groups_auto_created_for_datasets() {
        let mut w = new_writer();
        w.dataset("a/b/c/d", Dtype::U8, &[1])
            .unwrap()
            .write_pod(&[1u8])
            .unwrap();
        assert!(w.meta().groups.contains_key("a"));
        assert!(w.meta().groups.contains_key("a/b"));
        assert!(w.meta().groups.contains_key("a/b/c"));
    }

    #[test]
    fn finish_twice_rejected() {
        let mut w = new_writer();
        w.finish().unwrap();
        assert!(w.finish().is_err());
        assert!(w.create_group("g").is_err());
    }

    #[test]
    fn stats_account_compression() {
        let mut w = new_writer();
        let data = vec![0u8; 64 * 1024];
        w.dataset("zeros", Dtype::U8, &[64 * 1024])
            .unwrap()
            .with_codec("rle")
            .unwrap()
            .write_pod(&data)
            .unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.logical_bytes, 64 * 1024);
        assert!(stats.stored_bytes < 2048, "stored {}", stats.stored_bytes);
        assert_eq!(stats.datasets, 1);
    }

    #[test]
    fn scratch_write_matches_plain_write_and_reuses() {
        let data: Vec<f64> = (0..4096).map(|i| 300.0 + (i % 7) as f64).collect();
        let write = |use_scratch: bool, scratch: &mut EncodeScratch| {
            let mut c = Cursor::new(Vec::new());
            let mut w = FileWriter::new(&mut c).unwrap();
            for it in 0..4 {
                let b = w
                    .dataset(&format!("it{it}/d"), Dtype::F64, &[64, 64])
                    .unwrap()
                    .with_codec("xor-delta8,shuffle8,rle")
                    .unwrap()
                    .chunked(16)
                    .unwrap();
                if use_scratch {
                    b.write_pod_with(&data, scratch).unwrap();
                } else {
                    b.write_pod(&data).unwrap();
                }
            }
            w.finish().unwrap();
            c.into_inner()
        };
        let mut scratch = EncodeScratch::new();
        let plain = write(false, &mut EncodeScratch::new());
        let scratched = write(true, &mut scratch);
        assert_eq!(plain, scratched, "scratch path must be byte-identical");
        // A second file through the same scratch stays allocation-free.
        let grows = scratch.grows();
        let _ = write(true, &mut scratch);
        assert_eq!(scratch.grows(), grows, "warmed scratch must not grow");
    }

    #[test]
    fn durable_finish_on_disk() {
        let dir = std::env::temp_dir().join(format!("h5lite-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.dh5");
        let mut w = FileWriter::create(&path).unwrap();
        w.dataset("d", Dtype::U8, &[4])
            .unwrap()
            .write_pod(&[1u8, 2, 3, 4])
            .unwrap();
        w.sync_data().unwrap(); // mid-run durability point
        let stats = w.finish_synced().unwrap();
        assert_eq!(stats.datasets, 1);
        assert!(w.finish().is_err(), "already finished");
        let mut r = crate::FileReader::open(&path).unwrap();
        assert_eq!(r.read_pod::<u8>("d").unwrap(), vec![1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_encoded_chunks_match_inline_encode_byte_for_byte() {
        let data: Vec<u8> = (0..100u32)
            .flat_map(|i| (300.0 + (i % 7) as f64).to_le_bytes())
            .collect();
        let pipeline = std::sync::Arc::new(Pipeline::from_spec("xor-delta8,rle").unwrap());

        // Inline path: the builder encodes chunk by chunk itself.
        let mut c_inline = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut c_inline).unwrap();
        w.dataset("d", Dtype::F64, &[10, 10])
            .unwrap()
            .with_pipeline(pipeline.clone())
            .chunked(3)
            .unwrap()
            .write_bytes(&data)
            .unwrap();
        w.finish().unwrap();

        // Parallel path: chunks encoded "elsewhere" over the same
        // boundaries (3 rows × 10 cols × 8 bytes), appended pre-encoded.
        let mut scratch = EncodeScratch::new();
        let encoded: Vec<Vec<u8>> = data
            .chunks(3 * 10 * 8)
            .map(|chunk| pipeline.encode_with(chunk, &mut scratch).to_vec())
            .collect();
        let mut c_pre = Cursor::new(Vec::new());
        let mut w = FileWriter::new(&mut c_pre).unwrap();
        w.dataset("d", Dtype::F64, &[10, 10])
            .unwrap()
            .with_pipeline(pipeline.clone())
            .chunked(3)
            .unwrap()
            .write_encoded_chunks(data.len() as u64, encoded.iter().map(|v| v.as_slice()))
            .unwrap();
        w.finish().unwrap();

        assert_eq!(c_inline.into_inner(), c_pre.into_inner());

        // Guard rails: wrong chunk count, missing pipeline, missing chunking.
        let mut w = new_writer();
        assert!(w
            .dataset("d", Dtype::F64, &[10, 10])
            .unwrap()
            .with_pipeline(pipeline.clone())
            .chunked(3)
            .unwrap()
            .write_encoded_chunks(800, std::iter::empty())
            .is_err());
        let mut w = new_writer();
        assert!(w
            .dataset("d", Dtype::F64, &[10, 10])
            .unwrap()
            .chunked(3)
            .unwrap()
            .write_encoded_chunks(800, std::iter::empty())
            .is_err());
        let mut w = new_writer();
        assert!(w
            .dataset("d", Dtype::F64, &[10, 10])
            .unwrap()
            .with_pipeline(pipeline)
            .write_encoded_chunks(800, std::iter::empty())
            .is_err());
    }

    #[test]
    fn chunked_layout_records_chunks() {
        let mut w = new_writer();
        let data: Vec<u32> = (0..100).collect();
        w.dataset("d", Dtype::U32, &[10, 10])
            .unwrap()
            .chunked(3)
            .unwrap()
            .write_pod(&data)
            .unwrap();
        match &w.meta().datasets["d"].layout {
            Layout::Chunked {
                rows_per_chunk,
                chunks,
            } => {
                assert_eq!(*rows_per_chunk, 3);
                assert_eq!(chunks.len(), 4); // 3+3+3+1 rows
            }
            other => panic!("unexpected layout {other:?}"),
        }
    }
}
