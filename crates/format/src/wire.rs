//! Little-endian wire encoding helpers for the metadata footer.

use crate::error::{H5Error, H5Result};

/// Append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// New empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finish, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-style decoder with bounds checking.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Whether all bytes have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> H5Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(H5Error::Corrupt(format!(
                "footer truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u8.
    pub fn u8(&mut self) -> H5Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> H5Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> H5Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> H5Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> H5Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> H5Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| H5Error::Corrupt("non-UTF-8 string in footer".into()))
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> H5Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(3.125);
        e.str("damaris");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.125);
        assert_eq!(d.str().unwrap(), "damaris");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert!(d.at_end());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..4]);
        assert!(d.u64().is_err());
    }

    #[test]
    fn bad_utf8_detected() {
        let mut e = Enc::new();
        e.u32(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut d = Dec::new(&bytes);
        assert!(d.str().is_err());
    }
}
