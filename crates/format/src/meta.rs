//! File metadata: the group/dataset/attribute tree and its footer encoding.

use std::collections::BTreeMap;

use crate::dtype::Dtype;
use crate::error::{H5Error, H5Result};
use crate::wire::{Dec, Enc};

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl AttrValue {
    /// The integer payload, if this is an [`AttrValue::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is an [`AttrValue::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is an [`AttrValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Physical layout of a dataset's bytes in the data region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// One extent holding the whole dataset.
    Contiguous {
        /// Byte offset in the file.
        offset: u64,
        /// Stored byte length (compressed size if a codec is set).
        stored_len: u64,
    },
    /// Split along the slowest dimension into equally sized row-chunks
    /// (the last chunk may be shorter).
    Chunked {
        /// Rows of the slowest dimension per chunk.
        rows_per_chunk: u64,
        /// `(offset, stored_len)` per chunk, in order.
        chunks: Vec<(u64, u64)>,
    },
}

/// Metadata of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Element type.
    pub dtype: Dtype,
    /// Extents, slowest-varying first.
    pub shape: Vec<u64>,
    /// Storage layout.
    pub layout: Layout,
    /// Codec pipeline spec applied per extent ("" = uncompressed).
    pub codec_spec: String,
    /// Attributes attached to the dataset.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl DatasetMeta {
    /// Number of elements.
    ///
    /// Saturating: a corrupted footer may carry absurd extents, and these
    /// accessors feed validation code that must report corruption rather
    /// than overflow.
    pub fn element_count(&self) -> u64 {
        self.shape
            .iter()
            .fold(1u64, |acc, &s| acc.saturating_mul(s))
    }

    /// Uncompressed byte size (saturating, see [`Self::element_count`]).
    pub fn byte_size(&self) -> u64 {
        self.element_count()
            .saturating_mul(self.dtype.size_bytes() as u64)
    }

    /// Stored (on-disk) byte size across all extents (saturating).
    pub fn stored_size(&self) -> u64 {
        match &self.layout {
            Layout::Contiguous { stored_len, .. } => *stored_len,
            Layout::Chunked { chunks, .. } => chunks
                .iter()
                .fold(0u64, |acc, &(_, l)| acc.saturating_add(l)),
        }
    }
}

/// Metadata of one group (interior namespace node).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupMeta {
    /// Attributes attached to the group.
    pub attrs: BTreeMap<String, AttrValue>,
}

/// The complete metadata tree of a file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileMeta {
    /// Datasets by full path (`a/b/c`, no leading slash).
    pub datasets: BTreeMap<String, DatasetMeta>,
    /// Groups by full path ("" is the root group).
    pub groups: BTreeMap<String, GroupMeta>,
}

impl FileMeta {
    /// Normalize a user path: strip leading/trailing slashes.
    pub fn normalize(path: &str) -> String {
        path.trim_matches('/').to_string()
    }

    /// List the immediate children of a group path: `(name, is_dataset)`.
    pub fn list(&self, group: &str) -> Vec<(String, bool)> {
        let prefix = Self::normalize(group);
        let mut out: Vec<(String, bool)> = Vec::new();
        let matches = |path: &str| -> Option<String> {
            let rest = if prefix.is_empty() {
                path
            } else {
                path.strip_prefix(&prefix)?.strip_prefix('/')?
            };
            if rest.is_empty() {
                return None;
            }
            Some(rest.split('/').next().unwrap().to_string())
        };
        for path in self.datasets.keys() {
            if let Some(child) = matches(path) {
                let full = if prefix.is_empty() {
                    child.clone()
                } else {
                    format!("{prefix}/{child}")
                };
                let is_ds = self.datasets.contains_key(&full);
                if !out.iter().any(|(n, _)| n == &child) {
                    out.push((child, is_ds));
                }
            }
        }
        for path in self.groups.keys() {
            if let Some(child) = matches(path) {
                if !out.iter().any(|(n, _)| n == &child) {
                    out.push((child, false));
                }
            }
        }
        out.sort();
        out
    }

    /// Serialize the tree into footer bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.groups.len() as u32);
        for (path, g) in &self.groups {
            e.str(path);
            encode_attrs(&mut e, &g.attrs);
        }
        e.u32(self.datasets.len() as u32);
        for (path, d) in &self.datasets {
            e.str(path);
            e.u8(d.dtype.code());
            e.u32(d.shape.len() as u32);
            for &s in &d.shape {
                e.u64(s);
            }
            e.str(&d.codec_spec);
            match &d.layout {
                Layout::Contiguous { offset, stored_len } => {
                    e.u8(0);
                    e.u64(*offset);
                    e.u64(*stored_len);
                }
                Layout::Chunked {
                    rows_per_chunk,
                    chunks,
                } => {
                    e.u8(1);
                    e.u64(*rows_per_chunk);
                    e.u32(chunks.len() as u32);
                    for &(off, len) in chunks {
                        e.u64(off);
                        e.u64(len);
                    }
                }
            }
            encode_attrs(&mut e, &d.attrs);
        }
        e.into_bytes()
    }

    /// Parse footer bytes back into a tree.
    pub fn decode(bytes: &[u8]) -> H5Result<Self> {
        let mut d = Dec::new(bytes);
        let mut meta = FileMeta::default();
        let n_groups = d.u32()?;
        for _ in 0..n_groups {
            let path = d.str()?;
            let attrs = decode_attrs(&mut d)?;
            meta.groups.insert(path, GroupMeta { attrs });
        }
        let n_datasets = d.u32()?;
        for _ in 0..n_datasets {
            let path = d.str()?;
            let dtype = Dtype::from_code(d.u8()?)?;
            let ndims = d.u32()? as usize;
            if ndims > 32 {
                return Err(H5Error::Corrupt(format!(
                    "{ndims} dimensions is implausible"
                )));
            }
            let mut shape = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                shape.push(d.u64()?);
            }
            let codec_spec = d.str()?;
            let layout = match d.u8()? {
                0 => Layout::Contiguous {
                    offset: d.u64()?,
                    stored_len: d.u64()?,
                },
                1 => {
                    let rows_per_chunk = d.u64()?;
                    let n = d.u32()? as usize;
                    let mut chunks = Vec::with_capacity(n);
                    for _ in 0..n {
                        chunks.push((d.u64()?, d.u64()?));
                    }
                    Layout::Chunked {
                        rows_per_chunk,
                        chunks,
                    }
                }
                other => {
                    return Err(H5Error::Corrupt(format!("unknown layout code {other}")));
                }
            };
            let attrs = decode_attrs(&mut d)?;
            meta.datasets.insert(
                path,
                DatasetMeta {
                    dtype,
                    shape,
                    layout,
                    codec_spec,
                    attrs,
                },
            );
        }
        if !d.at_end() {
            return Err(H5Error::Corrupt("trailing bytes after footer".into()));
        }
        Ok(meta)
    }
}

fn encode_attrs(e: &mut Enc, attrs: &BTreeMap<String, AttrValue>) {
    e.u32(attrs.len() as u32);
    for (k, v) in attrs {
        e.str(k);
        match v {
            AttrValue::Int(i) => {
                e.u8(0);
                e.i64(*i);
            }
            AttrValue::Float(f) => {
                e.u8(1);
                e.f64(*f);
            }
            AttrValue::Str(s) => {
                e.u8(2);
                e.str(s);
            }
        }
    }
}

fn decode_attrs(d: &mut Dec<'_>) -> H5Result<BTreeMap<String, AttrValue>> {
    let n = d.u32()?;
    let mut attrs = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = match d.u8()? {
            0 => AttrValue::Int(d.i64()?),
            1 => AttrValue::Float(d.f64()?),
            2 => AttrValue::Str(d.str()?),
            other => return Err(H5Error::Corrupt(format!("unknown attr code {other}"))),
        };
        attrs.insert(k, v);
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FileMeta {
        let mut meta = FileMeta::default();
        meta.groups.insert("cm1".into(), GroupMeta::default());
        let mut g = GroupMeta::default();
        g.attrs.insert("time".into(), AttrValue::Float(0.5));
        g.attrs.insert("step".into(), AttrValue::Int(42));
        g.attrs.insert("model".into(), AttrValue::Str("cm1".into()));
        meta.groups.insert("cm1/it42".into(), g);
        meta.datasets.insert(
            "cm1/it42/u".into(),
            DatasetMeta {
                dtype: Dtype::F32,
                shape: vec![64, 64, 32],
                layout: Layout::Contiguous {
                    offset: 16,
                    stored_len: 64 * 64 * 32 * 4,
                },
                codec_spec: String::new(),
                attrs: BTreeMap::new(),
            },
        );
        meta.datasets.insert(
            "cm1/it42/theta".into(),
            DatasetMeta {
                dtype: Dtype::F64,
                shape: vec![8, 16],
                layout: Layout::Chunked {
                    rows_per_chunk: 4,
                    chunks: vec![(1000, 120), (1120, 98)],
                },
                codec_spec: "xor-delta8,rle".into(),
                attrs: BTreeMap::new(),
            },
        );
        meta
    }

    #[test]
    fn footer_roundtrip() {
        let meta = sample();
        let bytes = meta.encode();
        let back = FileMeta::decode(&bytes).unwrap();
        assert_eq!(meta, back);
    }

    #[test]
    fn sizes_computed() {
        let meta = sample();
        let u = &meta.datasets["cm1/it42/u"];
        assert_eq!(u.element_count(), 64 * 64 * 32);
        assert_eq!(u.byte_size(), 64 * 64 * 32 * 4);
        let theta = &meta.datasets["cm1/it42/theta"];
        assert_eq!(theta.stored_size(), 218);
        assert_eq!(theta.byte_size(), 8 * 16 * 8);
    }

    #[test]
    fn list_children() {
        let meta = sample();
        assert_eq!(meta.list(""), vec![("cm1".to_string(), false)]);
        assert_eq!(meta.list("cm1"), vec![("it42".to_string(), false)]);
        let inside = meta.list("cm1/it42");
        assert_eq!(
            inside,
            vec![("theta".to_string(), true), ("u".to_string(), true)]
        );
        assert_eq!(meta.list("/cm1/it42/"), inside, "slashes normalized");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FileMeta::decode(&[1, 2, 3]).is_err());
        // Valid-looking but trailing junk.
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(FileMeta::decode(&bytes).is_err());
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::from(3i64).as_i64(), Some(3));
        assert_eq!(AttrValue::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(3i64).as_str(), None);
    }
}
