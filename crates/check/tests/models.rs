//! Bounded models of the five riskiest lock-free protocols in
//! `damaris_shm`, exhaustively explored by the in-tree model checker.
//!
//! Each model mirrors the *exact* memory orderings of the production
//! code it cites (same loads, stores, CASes, fences, locks in the same
//! program order) over a bounded instance — capacity 1–2, one to three
//! items, two to three threads — so the DFS explores every schedule
//! within the preemption bound, including stale relaxed/acquire reads.
//! The production sources cite these tests next to each ordering they
//! prove; weakening one of those orderings makes the paired
//! `*_is_caught` teeth test (or the model itself) fail.
//!
//! Run with `cargo check-models` (alias for
//! `cargo test -p damaris-check -- --nocapture`) to see the explored
//! schedule counts.

use damaris_sync::model::{
    self,
    sync::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, Ordering},
    thread, Builder, FailureKind, Schedule,
};
use std::str::FromStr;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// 1. SPSC ring: no loss, no duplication, strict FIFO.
//    Mirrors `shm/spsc.rs` `SpscRing::{try_push, try_pop}`:
//    push = tail Relaxed load, head Acquire load, slot write,
//           tail Release store;
//    pop  = head Relaxed load, tail Acquire load, slot read,
//           head Release store.
// ---------------------------------------------------------------------------

/// Capacity-2 ring over model atomics; slot accesses are Relaxed so the
/// checker can observe a stale slot unless the tail/head Release/Acquire
/// pair actually publishes it.
struct ModelRing {
    slots: [AtomicUsize; 2],
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl ModelRing {
    const CAP: usize = 2;

    fn new() -> Self {
        ModelRing {
            slots: [AtomicUsize::new(0), AtomicUsize::new(0)],
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn try_push(&self, value: usize) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= Self::CAP {
            return false;
        }
        self.slots[tail % Self::CAP].store(value, Ordering::Relaxed);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    fn try_pop(&self) -> Option<usize> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[head % Self::CAP].load(Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

#[test]
fn spsc_no_loss_no_duplication() {
    const ITEMS: usize = 3; // > capacity, so the full/retry path runs
    let report = model::model(|| {
        let ring = Arc::new(ModelRing::new());
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            for v in 1..=ITEMS {
                while !r2.try_push(v) {
                    thread::yield_now();
                }
            }
        });
        let mut seen = Vec::new();
        while seen.len() < ITEMS {
            match ring.try_pop() {
                Some(v) => seen.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![1, 2, 3], "FIFO, no loss, no duplication");
        assert_eq!(ring.try_pop(), None, "no phantom items");
    });
    println!(
        "spsc_no_loss_no_duplication: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

/// Teeth: downgrade the producer's tail publication to Relaxed and the
/// checker must catch the consumer reading a stale slot — proof that the
/// Release in `SpscRing::try_push` is load-bearing.
#[test]
fn spsc_relaxed_tail_publication_is_caught() {
    let report = Builder::exhaustive().check(|| {
        let ring = Arc::new(ModelRing::new());
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            // try_push with the BUG: tail stored Relaxed, not Release.
            let tail = r2.tail.load(Ordering::Relaxed);
            let head = r2.head.load(Ordering::Acquire);
            assert!(tail.wrapping_sub(head) < ModelRing::CAP);
            r2.slots[tail % ModelRing::CAP].store(7, Ordering::Relaxed);
            r2.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
        });
        if let Some(v) = ring.try_pop() {
            assert_eq!(v, 7, "stale slot read: publication not ordered");
        }
        producer.join().unwrap();
    });
    let failure = report.failure.expect("stale slot read must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)));
    // The reported schedule replays to the same failure (replayable-seed
    // contract for every checker find).
    let replay = Builder::replay(failure.schedule).check(|| {
        let ring = Arc::new(ModelRing::new());
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            let tail = r2.tail.load(Ordering::Relaxed);
            let head = r2.head.load(Ordering::Acquire);
            assert!(tail.wrapping_sub(head) < ModelRing::CAP);
            r2.slots[tail % ModelRing::CAP].store(7, Ordering::Relaxed);
            r2.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
        });
        if let Some(v) = ring.try_pop() {
            assert_eq!(v, 7, "stale slot read: publication not ordered");
        }
        producer.join().unwrap();
    });
    assert!(replay.failure.is_some());
}

// ---------------------------------------------------------------------------
// 2. Transport push-guard: send-vs-close handshake.
//    Mirrors `shm/transport.rs` `guarded_push` (guard SeqCst swap, closed
//    SeqCst load inside the guard, guard Release store) against
//    `close` + `all_drained` (closed SeqCst store; verdict = ring empty →
//    guard free (SeqCst load) → ring empty again). Dekker-style
//    store/load on two locations: both sides need SeqCst.
// ---------------------------------------------------------------------------

struct PushGuardModel {
    guard: AtomicBool,
    closed: AtomicBool,
    /// One-slot mailbox standing in for the SPSC ring (whose own
    /// internals model 1 covers): 0 = empty.
    ring: AtomicUsize,
}

impl PushGuardModel {
    fn new() -> Self {
        PushGuardModel {
            guard: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            ring: AtomicUsize::new(0),
        }
    }

    /// `guarded_push` with a parameterized ordering for the closed load.
    fn guarded_push(&self, value: usize, closed_load: Ordering) -> bool {
        while self.guard.swap(true, Ordering::SeqCst) {
            thread::yield_now();
        }
        if self.closed.load(closed_load) {
            self.guard.store(false, Ordering::Release);
            return false;
        }
        self.ring.store(value, Ordering::Release);
        self.guard.store(false, Ordering::Release);
        true
    }

    /// `close` + the consumer's closed-and-drained verdict; returns the
    /// number of items drained.
    fn close_and_drain(&self) -> usize {
        self.closed.store(true, Ordering::SeqCst);
        let mut drained = 0;
        loop {
            if self.ring.swap(0, Ordering::Acquire) != 0 {
                drained += 1;
            }
            // all_drained: ring empty → guard free → ring empty again.
            if self.ring.load(Ordering::Acquire) == 0
                && !self.guard.load(Ordering::SeqCst)
                && self.ring.load(Ordering::Acquire) == 0
            {
                return drained;
            }
            thread::yield_now();
        }
    }
}

#[test]
fn push_guard_send_vs_close() {
    let report = model::model(|| {
        let ch = Arc::new(PushGuardModel::new());
        let c2 = ch.clone();
        let producer = thread::spawn(move || c2.guarded_push(42, Ordering::SeqCst));
        let drained = ch.close_and_drain();
        let accepted = producer.join().unwrap();
        // The protocol's whole point: an accepted send is never lost —
        // the closing consumer always drains it before its verdict.
        assert_eq!(
            drained, accepted as usize,
            "accepted sends drain; rejected sends leave nothing behind"
        );
        assert_eq!(ch.ring.load(Ordering::Acquire), 0, "nothing left behind");
    });
    println!(
        "push_guard_send_vs_close: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

/// Teeth: the `closed` check inside the guard downgraded to Relaxed lets
/// a producer miss the close and push an event the verdict never drains —
/// the checker finds the lost event, proving the SeqCst in
/// `guarded_push` is load-bearing.
#[test]
fn push_guard_relaxed_closed_check_is_caught() {
    let report = Builder::exhaustive().check(|| {
        let ch = Arc::new(PushGuardModel::new());
        let c2 = ch.clone();
        let producer = thread::spawn(move || c2.guarded_push(42, Ordering::Relaxed));
        let drained = ch.close_and_drain();
        let accepted = producer.join().unwrap();
        assert_eq!(drained, accepted as usize, "lost event");
    });
    assert!(
        report.failure.is_some(),
        "relaxed closed-check must lose an event in some schedule"
    );
}

// ---------------------------------------------------------------------------
// 3. Vyukov queue: pop-vs-pop claim arbitration.
//    Mirrors `shm/arena.rs` `OffsetQueue::{push, pop}`: per-slot seq
//    Acquire load / Release store, head/tail CAS Relaxed — two
//    concurrent poppers must claim distinct slots and see the values the
//    pushers published.
// ---------------------------------------------------------------------------

struct ModelVyukov {
    seq: [AtomicUsize; 2],
    /// Slot payloads, Relaxed: visibility rides the seq Release/Acquire.
    val: [AtomicUsize; 2],
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl ModelVyukov {
    const MASK: usize = 1;

    fn new() -> Self {
        ModelVyukov {
            seq: [AtomicUsize::new(0), AtomicUsize::new(1)],
            val: [AtomicUsize::new(0), AtomicUsize::new(0)],
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn push(&self, value: usize) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = pos & Self::MASK;
            let seq = self.seq[slot].load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            self.val[slot].store(value, Ordering::Relaxed);
                            self.seq[slot].store(pos + 1, Ordering::Release);
                            return true;
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return false,
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    fn pop(&self) -> Option<usize> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = pos & Self::MASK;
            let seq = self.seq[slot].load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = self.val[slot].load(Ordering::Relaxed);
                            self.seq[slot].store(pos + Self::MASK + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None,
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }
}

#[test]
fn vyukov_pop_vs_pop_claim_arbitration() {
    let report = model::model(|| {
        let q = Arc::new(ModelVyukov::new());
        assert!(q.push(10) && q.push(20), "two pushes fit capacity 2");
        let (qa, qb) = (q.clone(), q.clone());
        let a = thread::spawn(move || qa.pop());
        let b = thread::spawn(move || qb.pop());
        let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
        // Claim arbitration: the two poppers get the two distinct items
        // (FIFO says a's claim and b's claim cover {10, 20} exactly) —
        // no slot claimed twice, no value lost or torn.
        let mut got = vec![
            ra.expect("queue held 2 items"),
            rb.expect("queue held 2 items"),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "distinct claims, published values");
        assert_eq!(q.pop(), None, "exactly two items existed");
    });
    println!(
        "vyukov_pop_vs_pop_claim_arbitration: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

/// Teeth: the slot-seq publication downgraded to Relaxed lets a popper
/// claim a slot and read a stale (unpublished) value.
#[test]
fn vyukov_relaxed_seq_publication_is_caught() {
    let report = Builder::exhaustive().check(|| {
        let q = Arc::new(ModelVyukov::new());
        let q2 = q.clone();
        let pusher = thread::spawn(move || {
            // push(10) with the BUG: seq published Relaxed.
            let pos = q2.tail.load(Ordering::Relaxed);
            if q2.seq[pos & ModelVyukov::MASK].load(Ordering::Acquire) == pos
                && q2
                    .tail
                    .compare_exchange(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                q2.val[pos & ModelVyukov::MASK].store(10, Ordering::Relaxed);
                q2.seq[pos & ModelVyukov::MASK].store(pos + 1, Ordering::Relaxed);
            }
        });
        if let Some(v) = q.pop() {
            assert_eq!(v, 10, "claimed slot must carry the published value");
        }
        pusher.join().unwrap();
    });
    assert!(
        report.failure.is_some(),
        "relaxed seq publication must leak a stale slot value"
    );
}

// ---------------------------------------------------------------------------
// 4. Buddy tier: split/merge state-tag CAS races.
//    Mirrors `shm/arena.rs` `BuddyTier::{pop_order, free_into}`: the
//    per-slot state byte is the truth (free = order tag, claimed = 0);
//    an allocator's validated pop and a freeing buddy's eager merge race
//    on one `compare_exchange(tag, 0, AcqRel, Relaxed)`.
// ---------------------------------------------------------------------------

/// Tag for a free block of order-index `oi` (`arena::free_tag`).
fn tag(oi: usize) -> u8 {
    (oi + 1) as u8
}

#[test]
fn buddy_state_tag_claim_race() {
    let report = model::model(|| {
        // Two order-0 buddies A (slot 0) and B (slot 1). A is published
        // free; B is still allocated and about to be freed.
        let state = Arc::new([AtomicU8::new(tag(0)), AtomicU8::new(0)]);
        let s2 = state.clone();
        // Allocator: validated pop of the queue hint for A.
        let alloc = thread::spawn(move || {
            s2[0]
                .compare_exchange(tag(0), 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        // Freer of B (`free_into`): try to claim buddy A for an eager
        // merge; on success publish the merged order-1 block at A's
        // offset, otherwise publish B free at its own order.
        let merged = {
            if state[0]
                .compare_exchange(tag(0), 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                state[0].store(tag(1), Ordering::Release);
                true
            } else {
                state[1].store(tag(0), Ordering::Release);
                false
            }
        };
        let alloc_won = alloc.join().unwrap();
        // The state word arbitrates: exactly one side claims A.
        assert!(
            alloc_won ^ merged,
            "exactly one claimant: allocator pop XOR buddy merge"
        );
        // No block is ever lost: whichever side lost republished its
        // block (B free at order 0, or the merged pair at order 1).
        if alloc_won {
            assert_eq!(state[1].load(Ordering::Acquire), tag(0), "B stays free");
            assert_eq!(state[0].load(Ordering::Acquire), 0, "A is claimed");
        } else {
            assert_eq!(
                state[0].load(Ordering::Acquire),
                tag(1),
                "merged pair published"
            );
        }
    });
    println!(
        "buddy_state_tag_claim_race: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

/// The queue-full withdraw path (`free_into` spill): a freer that just
/// published its block free races its own withdraw CAS against an
/// allocator's validated pop — the block must end up owned exactly once
/// (spilled to the free list XOR handed to the allocator).
#[test]
fn buddy_publish_withdraw_race() {
    let report = model::model(|| {
        let state = Arc::new([AtomicU8::new(0)]);
        let s2 = state.clone();
        let alloc = thread::spawn(move || {
            // Validated pop: the queue hint may be stale; the CAS is the
            // claim.
            s2[0]
                .compare_exchange(tag(0), 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        // Freer: publish free, find the order queue full, withdraw.
        state[0].store(tag(0), Ordering::Release);
        let spilled = state[0]
            .compare_exchange(tag(0), 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        let alloc_won = alloc.join().unwrap();
        assert!(
            spilled ^ alloc_won,
            "block owned exactly once: spilled to free list XOR allocated"
        );
    });
    println!(
        "buddy_publish_withdraw_race: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

// ---------------------------------------------------------------------------
// 5. Eventcount: sleep-vs-notify, no lost wakeup.
//    Mirrors `shm/segment.rs` `signal_release` (gen SeqCst bump, waiters
//    SeqCst load, lock-touch, notify_all) against the `allocate_blocking`
//    wait side (gen SeqCst read → re-check tiers → register waiter →
//    SeqCst gen re-read → conditional sleep). Both SeqCst sites are a
//    Dekker store/load pattern; the model deadlocks if a wakeup can be
//    lost, and the checker detects deadlock.
// ---------------------------------------------------------------------------

struct EventcountModel {
    state: Mutex<()>,
    space_freed: Condvar,
    waiters: AtomicUsize,
    release_gen: AtomicU64,
    /// The "tier" being waited for: 1 = a block is free for the taking.
    freed: AtomicUsize,
}

impl EventcountModel {
    fn new() -> Self {
        EventcountModel {
            state: Mutex::new(()),
            space_freed: Condvar::new(),
            waiters: AtomicUsize::new(0),
            release_gen: AtomicU64::new(0),
            freed: AtomicUsize::new(0),
        }
    }

    /// `signal_release`, verbatim.
    fn signal_release(&self) {
        self.release_gen.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            drop(self.state.lock());
            self.space_freed.notify_all();
        }
    }

    /// The `allocate_blocking` wait loop, with the gen re-read ordering
    /// parameterized so the teeth test can break it.
    fn allocate_blocking(&self, reread: Ordering) {
        let mut fl = self.state.lock();
        loop {
            let gen = self.release_gen.load(Ordering::SeqCst);
            if self.freed.swap(0, Ordering::Acquire) == 1 {
                return; // tier re-check hit
            }
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if self.release_gen.load(reread) == gen {
                self.space_freed.wait(&mut fl);
            }
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[test]
fn eventcount_no_lost_wakeup() {
    let report = model::model(|| {
        let ec = Arc::new(EventcountModel::new());
        let e2 = ec.clone();
        let releaser = thread::spawn(move || {
            e2.freed.store(1, Ordering::Release);
            e2.signal_release();
        });
        // Terminates in every schedule iff no wakeup can be lost; a lost
        // wakeup parks this thread forever and the checker reports
        // deadlock.
        ec.allocate_blocking(Ordering::SeqCst);
        releaser.join().unwrap();
    });
    println!(
        "eventcount_no_lost_wakeup: {} schedules explored",
        report.executions
    );
    assert!(report.executions > 1);
}

// ---------------------------------------------------------------------------
// Seeded-bug regression: the checker has teeth, and its failing schedules
// replay deterministically.
// ---------------------------------------------------------------------------

/// The deliberately-broken eventcount: the waiter's gen re-read
/// downgraded to Relaxed can observe a stale generation, conclude no
/// release happened, and sleep through the (skipped) notify — a lost
/// wakeup. The checker must find it and report it as deadlock.
fn broken_eventcount() {
    let ec = Arc::new(EventcountModel::new());
    let e2 = ec.clone();
    let releaser = thread::spawn(move || {
        e2.freed.store(1, Ordering::Release);
        e2.signal_release();
    });
    ec.allocate_blocking(Ordering::Relaxed); // BUG: must be SeqCst
    releaser.join().unwrap();
}

/// The failing schedule of `broken_eventcount` discovered by the DFS,
/// pinned as a regression: replaying it must keep reproducing the
/// deadlock byte-for-byte. (Re-discovered dynamically below too, so this
/// stays honest if the checker's decision encoding ever changes —
/// `seeded_relaxed_gen_bug_is_caught` would then mint the new string.)
const PINNED_LOST_WAKEUP_SCHEDULE: &str = "0.0.0.1.0.0.0.0.0.1.0";

#[test]
fn seeded_relaxed_gen_bug_is_caught() {
    let report = Builder::exhaustive().check(broken_eventcount);
    let failure = report
        .failure
        .expect("relaxed gen re-read must lose a wakeup");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "lost wakeup surfaces as deadlock, got: {failure}"
    );
    println!(
        "seeded_relaxed_gen_bug_is_caught: deadlock after {} schedules; replay: {}",
        report.executions, failure.schedule
    );
    // Every checker find is replayable: the schedule it printed
    // reproduces the same failure on the spot.
    let replay = Builder::replay(failure.schedule).check(broken_eventcount);
    assert!(matches!(
        replay.failure.expect("schedule replays").kind,
        FailureKind::Deadlock(_)
    ));
}

#[test]
fn pinned_lost_wakeup_schedule_replays() {
    let schedule = Schedule::from_str(PINNED_LOST_WAKEUP_SCHEDULE).unwrap();
    let replay = Builder::replay(schedule).check(broken_eventcount);
    assert!(
        matches!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock(_))
        ),
        "pinned schedule no longer reproduces the lost wakeup: {:?}",
        replay.failure
    );
}

// ---------------------------------------------------------------------------
// The randomized scheduler handles a model larger than the DFS bounds:
// same SPSC protocol, more items, seeded and deterministic.
// ---------------------------------------------------------------------------

#[test]
fn spsc_randomized_large_model() {
    const ITEMS: usize = 8;
    let report = Builder::random(300, 0x0D0A_4A15).check(|| {
        let ring = Arc::new(ModelRing::new());
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            for v in 1..=ITEMS {
                while !r2.try_push(v) {
                    thread::yield_now();
                }
            }
        });
        let mut seen = Vec::new();
        while seen.len() < ITEMS {
            match ring.try_pop() {
                Some(v) => seen.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        let expected: Vec<usize> = (1..=ITEMS).collect();
        assert_eq!(seen, expected);
    });
    assert!(report.complete, "no failure across 300 random schedules");
    println!(
        "spsc_randomized_large_model: {} random schedules explored",
        report.executions
    );
}
