//! Unit-level exercises of the checker runtime itself: that DFS actually
//! explores, that the weak-memory machinery admits stale reads exactly
//! where C11 would, and that every failure class is detected and
//! replayable. The protocol models live in `models.rs`.

use damaris_sync::model::{
    self,
    sync::{fence, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering},
    thread, Builder, FailureKind, Schedule,
};
use std::str::FromStr;
use std::sync::Arc;

/// Two unsynchronized increments built from load+store (not RMW) must be
/// able to lose an update; the checker has to find the interleaving.
#[test]
fn detects_lost_update() {
    let report = Builder::exhaustive().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = report.failure.expect("lost update must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)));
    // The failing schedule replays to the same failure.
    let replay = Builder::replay(failure.schedule.clone()).check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(matches!(
        replay.failure.expect("replay reproduces").kind,
        FailureKind::Panic(_)
    ));
}

/// The same increments through fetch_add are atomic RMWs: no schedule
/// loses an update, and more than one schedule must have been explored.
#[test]
fn rmw_increments_never_lose_updates() {
    let report = model::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(report.complete);
    assert!(report.executions > 1, "DFS must branch");
}

/// Message passing through a Relaxed flag is broken (the reader may see
/// the flag but stale data); through a Release/Acquire flag it is proven.
#[test]
fn release_acquire_publishes_relaxed_does_not() {
    let broken = Builder::exhaustive().check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed); // BUG: should be Release
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
        }
        t.join().unwrap();
    });
    assert!(
        broken.failure.is_some(),
        "relaxed publication must admit a stale read"
    );

    let fixed = model::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(fixed.complete && fixed.executions > 1);
}

/// Fence-based publication: release fence + relaxed store publishes to
/// relaxed load + acquire fence.
#[test]
fn fence_publication() {
    let report = model::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 7);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// Two threads blocking on each other's mutexes deadlock; the checker
/// reports it rather than hanging.
#[test]
fn detects_deadlock() {
    let report = Builder::exhaustive().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = report.failure.expect("AB/BA deadlock must be found");
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock(msg) if msg.contains("mutex")),
        "unexpected failure: {failure}"
    );
}

/// A condvar wait with no paired notify is a detected deadlock (this is
/// how lost wakeups surface: model timeouts never fire).
#[test]
fn detects_missed_notify_as_deadlock() {
    let report = Builder::exhaustive().check(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g); // nobody will ever notify
        }
    });
    assert!(matches!(
        report.failure.expect("must deadlock").kind,
        FailureKind::Deadlock(_)
    ));
}

/// Plain mutex + condvar handoff works and explores multiple schedules.
#[test]
fn condvar_handoff_completes() {
    let report = model::model(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_one();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.complete && report.executions > 1);
}

/// An unbounded spin against a never-set flag trips the step budget and
/// is reported as a livelock, not a hang.
#[test]
fn detects_livelock_via_step_budget() {
    let report = Builder::exhaustive()
        .max_steps(200)
        .max_executions(10)
        .check(|| {
            let flag = Arc::new(AtomicBool::new(false));
            while !flag.load(Ordering::Relaxed) {
                thread::yield_now();
            }
        });
    assert!(matches!(
        report.failure.expect("spin must exhaust steps").kind,
        FailureKind::StepLimit
    ));
}

/// The randomized scheduler finds the same lost update and reports a
/// schedule that replays deterministically.
#[test]
fn random_scheduler_finds_and_replays() {
    let run = |b: Builder| {
        b.check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
        })
    };
    let report = run(Builder::random(500, 0xDA3A));
    let failure = report.failure.expect("random exploration finds the bug");
    assert!(failure.seed.is_some());
    let replay = run(Builder::replay(failure.schedule.clone()));
    assert!(replay.failure.is_some(), "schedule replays to the failure");
}

/// Schedules round-trip through their string form (what a failure report
/// prints is exactly what a regression test can pin).
#[test]
fn schedule_string_round_trip() {
    let s = Schedule(vec![0, 3, 1, 0, 2]);
    assert_eq!(Schedule::from_str(&s.to_string()).unwrap(), s);
    assert_eq!(Schedule::from_str("").unwrap(), Schedule(vec![]));
}
