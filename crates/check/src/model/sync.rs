//! Model-mode replacements for `std::sync::atomic` and
//! `parking_lot::{Mutex, Condvar}`.
//!
//! ## Memory model (simplified C11)
//!
//! Each atomic location keeps a short suffix of its modification order
//! (`HISTORY_CAP` entries). A `Relaxed` or `Acquire` load may observe
//! *any* entry at or above the thread's per-location coherence floor —
//! which entry it reads is a scheduler decision, so DFS explores stale
//! reads exhaustively. An `Acquire` load that observes a `Release` store
//! joins the writer's view (happens-before); a `SeqCst` load additionally
//! may not observe anything older than the latest `SeqCst` store
//! (single-total-order approximation). RMWs always read the latest entry
//! in modification order, per C11. Fences are modeled with
//! pending-acquire / release-snapshot views.
//!
//! Deliberate simplifications (each is *stricter* than C11, so the
//! checker can miss bugs that need them but never reports false
//! failures): `compare_exchange_weak` never fails spuriously, `SeqCst`
//! fences do not participate in a global fence order, condvars never
//! wake spuriously or time out (a model must not rely on timeouts for
//! progress — a lost wakeup shows up as a detected deadlock), and each
//! thread may observe a non-latest value at a given location at most
//! `rt::STALE_BUDGET` times per execution (stores propagate
//! eventually, so spin loops terminate).

use crate::model::rt::{self, LocId, Status};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub use core::sync::atomic::Ordering;

fn has_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn has_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared implementation: a typed shell over one model location.
struct AtomicCell {
    loc: LocId,
}

impl AtomicCell {
    fn new(init: u64) -> Self {
        AtomicCell {
            loc: rt::register_location(init),
        }
    }

    fn load(&self, ord: Ordering) -> u64 {
        assert!(
            !matches!(ord, Ordering::Release | Ordering::AcqRel),
            "invalid ordering for atomic load"
        );
        if rt::quiet() {
            return rt::peek(self.loc);
        }
        rt::schedule_point();
        rt::with_state(|st, tid| {
            let floor = st.threads[tid].view.floor(self.loc);
            let l = &st.locations[self.loc];
            let min_seq = if ord == Ordering::SeqCst {
                floor.max(l.last_sc)
            } else {
                floor
            };
            // Eligible entries, newest first: choice 0 is the latest
            // value, so stale reads live on backtracked branches.
            let elig: Vec<usize> = (0..l.history.len())
                .rev()
                .filter(|&i| l.history[i].seq >= min_seq)
                .collect();
            debug_assert!(!elig.is_empty(), "coherence floor above latest store");
            // Stores propagate eventually: once this thread has burned its
            // stale budget at this location, it reads the latest value
            // without branching (keeps spin loops finite, see STALE_BUDGET).
            let stale_left = st.threads[tid]
                .stale
                .get(self.loc)
                .is_none_or(|&n| n < rt::STALE_BUDGET);
            let pick = if elig.len() > 1 && stale_left {
                st.decide(elig.len())
            } else {
                0
            };
            if pick != 0 {
                let s = &mut st.threads[tid].stale;
                if s.len() <= self.loc {
                    s.resize(self.loc + 1, 0);
                }
                s[self.loc] += 1;
            }
            let e = &st.locations[self.loc].history[elig[pick]];
            let (value, seq, rel_view) = (e.value, e.seq, e.rel_view.clone());
            let me = &mut st.threads[tid];
            me.view.raise(self.loc, seq);
            if let Some(rv) = rel_view {
                if has_acquire(ord) {
                    me.view.join(&rv);
                } else {
                    // Claimed by a later acquire fence.
                    me.acq_pending.join(&rv);
                }
            }
            value
        })
    }

    fn store(&self, value: u64, ord: Ordering) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "invalid ordering for atomic store"
        );
        if rt::quiet() {
            rt::with_state(|st, _tid| {
                let l = &mut st.locations[self.loc];
                let seq = l.next_seq;
                l.next_seq += 1;
                l.history.push(rt::StoreEntry {
                    seq,
                    value,
                    rel_view: None,
                });
            });
            return;
        }
        rt::schedule_point();
        rt::with_state(|st, tid| {
            let rel_view = if has_release(ord) {
                Some(st.threads[tid].view.clone())
            } else {
                st.threads[tid].rel_fence.clone()
            };
            let l = &mut st.locations[self.loc];
            let seq = l.next_seq;
            l.next_seq += 1;
            l.history.push(rt::StoreEntry {
                seq,
                value,
                rel_view,
            });
            if ord == Ordering::SeqCst {
                l.last_sc = seq;
            }
            if l.history.len() > rt::HISTORY_CAP {
                l.history.remove(0);
            }
            st.threads[tid].view.raise(self.loc, seq);
        });
    }

    /// Read-modify-write: reads the *latest* entry in modification order
    /// (C11 guarantees RMW atomicity), writes `f(old)` if `Some`.
    /// Returns `Ok(old)` on write, `Err(old)` when `f` declined
    /// (compare_exchange failure, which acts as a load with `fail_ord`).
    fn rmw(
        &self,
        f: impl FnOnce(u64) -> Option<u64>,
        ord: Ordering,
        fail_ord: Ordering,
    ) -> Result<u64, u64> {
        if rt::quiet() {
            let old = rt::peek(self.loc);
            if let Some(new) = f(old) {
                rt::with_state(|st, _tid| {
                    let l = &mut st.locations[self.loc];
                    let seq = l.next_seq;
                    l.next_seq += 1;
                    l.history.push(rt::StoreEntry {
                        seq,
                        value: new,
                        rel_view: None,
                    });
                });
                return Ok(old);
            }
            return Err(old);
        }
        rt::schedule_point();
        rt::with_state(|st, tid| {
            let l = &st.locations[self.loc];
            let latest = l.history.last().expect("location has an initial store");
            let (old, old_seq, old_rel) = (latest.value, latest.seq, latest.rel_view.clone());
            match f(old) {
                Some(new) => {
                    let me = &mut st.threads[tid];
                    if let Some(rv) = &old_rel {
                        if has_acquire(ord) {
                            me.view.join(rv);
                        } else {
                            me.acq_pending.join(rv);
                        }
                    }
                    let rel_view = if has_release(ord) {
                        Some(me.view.clone())
                    } else {
                        me.rel_fence.clone()
                    };
                    let l = &mut st.locations[self.loc];
                    let seq = l.next_seq;
                    l.next_seq += 1;
                    l.history.push(rt::StoreEntry {
                        seq,
                        value: new,
                        rel_view,
                    });
                    if ord == Ordering::SeqCst {
                        l.last_sc = seq;
                    }
                    if l.history.len() > rt::HISTORY_CAP {
                        l.history.remove(0);
                    }
                    st.threads[tid].view.raise(self.loc, seq);
                    Ok(old)
                }
                None => {
                    let me = &mut st.threads[tid];
                    me.view.raise(self.loc, old_seq);
                    if let Some(rv) = &old_rel {
                        if has_acquire(fail_ord) {
                            me.view.join(rv);
                        } else {
                            me.acq_pending.join(rv);
                        }
                    }
                    Err(old)
                }
            }
        })
    }

    fn peek(&self) -> u64 {
        rt::peek(self.loc)
    }
}

/// Memory fence with C11 fence semantics over the view machinery.
pub fn fence(ord: Ordering) {
    assert!(ord != Ordering::Relaxed, "fence(Relaxed) is not allowed");
    if rt::quiet() {
        return;
    }
    rt::schedule_point();
    rt::with_state(|st, tid| {
        let me = &mut st.threads[tid];
        if has_acquire(ord) {
            let pending = std::mem::take(&mut me.acq_pending);
            me.view.join(&pending);
        }
        if has_release(ord) {
            me.rel_fence = Some(me.view.clone());
        }
    });
}

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $from:expr, $into:expr) => {
        $(#[$doc])*
        pub struct $name {
            cell: AtomicCell,
        }

        impl $name {
            /// Register a fresh model location holding `v`.
            #[allow(clippy::redundant_closure_call)]
            pub fn new(v: $ty) -> Self {
                $name { cell: AtomicCell::new(($into)(v)) }
            }

            /// Model load; which store it observes is a scheduler choice.
            #[allow(clippy::redundant_closure_call)]
            pub fn load(&self, ord: Ordering) -> $ty {
                ($from)(self.cell.load(ord))
            }

            /// Model store appended to the location's modification order.
            #[allow(clippy::redundant_closure_call)]
            pub fn store(&self, v: $ty, ord: Ordering) {
                self.cell.store(($into)(v), ord)
            }

            /// Atomic swap (reads latest, per C11 RMW).
            #[allow(clippy::redundant_closure_call)]
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                let new = ($into)(v);
                ($from)(self.cell.rmw(|_| Some(new), ord, Ordering::Relaxed).unwrap())
            }

            /// Atomic compare-and-exchange against the latest value.
            #[allow(clippy::redundant_closure_call)]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                let cur = ($into)(current);
                let newv = ($into)(new);
                self.cell
                    .rmw(|old| if old == cur { Some(newv) } else { None }, success, failure)
                    .map($from)
                    .map_err($from)
            }

            /// Like [`Self::compare_exchange`]; the model never fails
            /// spuriously (a strictly-stronger behavior, documented in
            /// the module docs).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Consume the atomic, returning the latest value.
            #[allow(clippy::redundant_closure_call)]
            pub fn into_inner(self) -> $ty {
                ($from)(self.cell.peek())
            }
        }

        impl std::fmt::Debug for $name {
            #[allow(clippy::redundant_closure_call)]
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).field(&($from)(self.cell.peek())).finish()
            }
        }
    };
}

model_atomic!(
    /// Model `AtomicUsize`.
    AtomicUsize, usize, |v: u64| v as usize, |v: usize| v as u64
);
model_atomic!(
    /// Model `AtomicU64`.
    AtomicU64, u64, |v: u64| v, |v: u64| v
);
model_atomic!(
    /// Model `AtomicU32`.
    AtomicU32, u32, |v: u64| v as u32, |v: u32| v as u64
);
model_atomic!(
    /// Model `AtomicU8`.
    AtomicU8, u8, |v: u64| v as u8, |v: u8| v as u64
);
model_atomic!(
    /// Model `AtomicBool`.
    AtomicBool, bool, |v: u64| v != 0, |v: bool| v as u64
);

macro_rules! model_fetch_ops {
    ($name:ident, $ty:ty, $from:expr, $into:expr) => {
        impl $name {
            /// Atomic wrapping add, returning the previous value.
            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(
                    self.cell
                        .rmw(
                            |old| Some(($into)(($from)(old).wrapping_add(v))),
                            ord,
                            Ordering::Relaxed,
                        )
                        .unwrap(),
                )
            }

            /// Atomic wrapping subtract, returning the previous value.
            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(
                    self.cell
                        .rmw(
                            |old| Some(($into)(($from)(old).wrapping_sub(v))),
                            ord,
                            Ordering::Relaxed,
                        )
                        .unwrap(),
                )
            }

            /// Atomic maximum, returning the previous value.
            #[allow(clippy::redundant_closure_call)]
            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                ($from)(
                    self.cell
                        .rmw(
                            |old| Some(($into)(($from)(old).max(v))),
                            ord,
                            Ordering::Relaxed,
                        )
                        .unwrap(),
                )
            }
        }
    };
}

model_fetch_ops!(AtomicUsize, usize, |v: u64| v as usize, |v: usize| v as u64);
model_fetch_ops!(AtomicU64, u64, |v: u64| v, |v: u64| v);
model_fetch_ops!(AtomicU32, u32, |v: u64| v as u32, |v: u32| v as u64);
model_fetch_ops!(AtomicU8, u8, |v: u64| v as u8, |v: u8| v as u64);

impl AtomicBool {
    /// Atomic OR, returning the previous value.
    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        self.cell
            .rmw(|old| Some(old | v as u64), ord, Ordering::Relaxed)
            .unwrap()
            != 0
    }

    /// Atomic AND, returning the previous value.
    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        self.cell
            .rmw(|old| Some(old & v as u64), ord, Ordering::Relaxed)
            .unwrap()
            != 0
    }
}

/// Model mutex with `parking_lot`'s non-poisoning API. Lock acquisition
/// joins the views of past unlockers (unlock happens-before next lock);
/// contention and wake order are scheduler decisions.
pub struct Mutex<T: ?Sized> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the model runtime guarantees at most one thread holds the lock
// (and therefore touches `data`) at a time, mirroring std's Mutex.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only exposes `data` through the guard,
// which the runtime hands to one thread at a time.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    /// Guards are `!Send`, like std's.
    _not_send: PhantomData<*const ()>,
}

impl<T> Mutex<T> {
    /// Register a model mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: rt::register_mutex(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_mutex(self.id);
        MutexGuard {
            mutex: self,
            _not_send: PhantomData,
        }
    }

    /// Acquire the lock if it is free at this scheduling point.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if try_lock_mutex(self.id) {
            Some(MutexGuard {
                mutex: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex(<model>)")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the runtime records this thread as the owner until the
        // guard drops, so no other thread dereferences `data`.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive ownership until drop.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        unlock_mutex(self.mutex.id);
    }
}

fn lock_mutex(id: usize) {
    if rt::quiet() {
        rt::with_state(|st, tid| st.mutexes[id].owner = Some(tid));
        return;
    }
    rt::schedule_point();
    let (exec, tid) = rt::exec_handle();
    loop {
        let acquired = rt::with_state(|st, tid| {
            if st.mutexes[id].owner.is_none() {
                st.mutexes[id].owner = Some(tid);
                let v = st.mutexes[id].view.clone();
                st.threads[tid].view.join(&v);
                true
            } else {
                false
            }
        });
        if acquired {
            return;
        }
        rt::block_current(&exec, tid, |st| {
            st.threads[tid].status = Status::BlockedMutex(id);
        });
    }
}

fn try_lock_mutex(id: usize) -> bool {
    if rt::quiet() {
        return rt::with_state(|st, tid| {
            if st.mutexes[id].owner.is_none() {
                st.mutexes[id].owner = Some(tid);
                true
            } else {
                false
            }
        });
    }
    rt::schedule_point();
    rt::with_state(|st, tid| {
        if st.mutexes[id].owner.is_none() {
            st.mutexes[id].owner = Some(tid);
            let v = st.mutexes[id].view.clone();
            st.threads[tid].view.join(&v);
            true
        } else {
            false
        }
    })
}

fn unlock_mutex(id: usize) {
    if rt::quiet() {
        // Unwinding (assertion failure or execution abort): release
        // without scheduling so guard drops never double-panic.
        rt::with_state(|st, _tid| st.mutexes[id].owner = None);
        return;
    }
    rt::schedule_point();
    rt::with_state(|st, tid| {
        debug_assert_eq!(st.mutexes[id].owner, Some(tid), "unlock by non-owner");
        let tv = st.threads[tid].view.clone();
        st.mutexes[id].view.join(&tv);
        st.mutexes[id].owner = None;
        // Wake every waiter; they re-race for the lock and the scheduler
        // decides who wins (modeling contention nondeterminism).
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(id) {
                st.threads[t].status = Status::Runnable;
            }
        }
    });
}

/// Result of a timed condvar wait; in model time waits never time out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (never, in the
    /// model: timeouts are failsafes, and a model that *needs* one to
    /// make progress has a lost-wakeup bug the checker reports as
    /// deadlock).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model condvar with `parking_lot`'s `&mut guard` API.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Register a model condvar.
    pub fn new() -> Self {
        Condvar {
            id: rt::register_condvar(),
        }
    }

    /// Wake the longest-waiting thread, if any.
    pub fn notify_one(&self) {
        notify(self.id, false);
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        notify(self.id, true);
    }

    /// Atomically release the guard's mutex and wait to be notified,
    /// re-acquiring before returning.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        wait_impl(self.id, guard.mutex.id);
    }

    /// Timed wait; model time never elapses, so this is [`Self::wait`].
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _timeout: Duration,
    ) -> WaitTimeoutResult {
        wait_impl(self.id, guard.mutex.id);
        WaitTimeoutResult(false)
    }

    /// Timed wait; model time never elapses, so this is [`Self::wait`].
    pub fn wait_until<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _until: Instant,
    ) -> WaitTimeoutResult {
        wait_impl(self.id, guard.mutex.id);
        WaitTimeoutResult(false)
    }
}

fn wait_impl(cv: usize, mutex: usize) {
    if rt::quiet() {
        return;
    }
    rt::schedule_point();
    let (exec, tid) = rt::exec_handle();
    rt::block_current(&exec, tid, |st| {
        // Atomically (in model time): publish our view through the
        // mutex, release it, wake its waiters, and park on the condvar.
        debug_assert_eq!(st.mutexes[mutex].owner, Some(tid), "wait without the lock");
        let tv = st.threads[tid].view.clone();
        st.mutexes[mutex].view.join(&tv);
        st.mutexes[mutex].owner = None;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(mutex) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.condvars[cv].waiters.push(tid);
        st.threads[tid].status = Status::BlockedCondvar(cv);
    });
    // Notified: re-acquire the mutex before returning to the caller.
    lock_mutex(mutex);
}

fn notify(cv: usize, all: bool) {
    if rt::quiet() {
        return;
    }
    rt::schedule_point();
    rt::with_state(|st, _tid| {
        let n = if all {
            st.condvars[cv].waiters.len()
        } else {
            1
        };
        for _ in 0..n {
            if st.condvars[cv].waiters.is_empty() {
                break;
            }
            let w = st.condvars[cv].waiters.remove(0);
            debug_assert_eq!(st.threads[w].status, Status::BlockedCondvar(cv));
            st.threads[w].status = Status::Runnable;
        }
    });
}
