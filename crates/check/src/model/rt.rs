//! Execution runtime: one model execution = real OS threads run one at a
//! time under a token-passing scheduler. Every source of nondeterminism
//! (which thread runs next, which store a weak load observes) flows
//! through [`ExecState::decide`], so an execution is fully determined by
//! its decision vector — which is what makes schedules replayable and DFS
//! backtracking possible.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, PoisonError};

pub(crate) type Tid = usize;
pub(crate) type LocId = usize;

/// Entries of stale history kept per atomic location (latest + one stale
/// value). Bounds the arity of weak-read decisions.
pub(crate) const HISTORY_CAP: usize = 2;

/// How many times one thread may branch onto a *non-latest* value at one
/// location within a single execution. Real stores propagate eventually
/// (C11 forward-progress), so a spin loop re-reading a stale value forever
/// is not a real schedule; without this cap the DFS would explore it as an
/// infinite livelock. Exhausting the budget forces the latest value —
/// stricter than C11, never a false failure.
pub(crate) const STALE_BUDGET: u32 = 2;

/// Per-thread vector clock over atomic locations: `floors[loc]` is the
/// oldest modification-order position this thread may still observe.
#[derive(Clone, Debug, Default)]
pub(crate) struct View(Vec<u64>);

impl View {
    pub(crate) fn floor(&self, loc: LocId) -> u64 {
        self.0.get(loc).copied().unwrap_or(0)
    }

    pub(crate) fn raise(&mut self, loc: LocId, seq: u64) {
        if self.0.len() <= loc {
            self.0.resize(loc + 1, 0);
        }
        if self.0[loc] < seq {
            self.0[loc] = seq;
        }
    }

    pub(crate) fn join(&mut self, other: &View) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &s) in other.0.iter().enumerate() {
            if self.0[i] < s {
                self.0[i] = s;
            }
        }
    }
}

/// One store in a location's modification order.
pub(crate) struct StoreEntry {
    pub seq: u64,
    pub value: u64,
    /// The writer's view at the store if it was a release operation (or
    /// follows a release fence): joined into the view of any acquire
    /// reader, establishing happens-before.
    pub rel_view: Option<View>,
}

pub(crate) struct Location {
    /// Oldest..newest suffix of the modification order, capped at
    /// [`HISTORY_CAP`].
    pub history: Vec<StoreEntry>,
    pub next_seq: u64,
    /// Seq of the most recent `SeqCst` store; `SeqCst` loads may not
    /// observe anything older (single-total-order approximation).
    pub last_sc: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(Tid),
    Finished,
}

/// One-shot turnstile a parked OS thread sleeps on until scheduled.
struct Gate {
    flag: OsMutex<bool>,
    cv: OsCondvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            flag: OsMutex::new(false),
            cv: OsCondvar::new(),
        }
    }

    fn open(&self) {
        let mut f = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        *f = true;
        drop(f);
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut f = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*f {
            f = self.cv.wait(f).unwrap_or_else(PoisonError::into_inner);
        }
        *f = false;
    }
}

pub(crate) struct ThreadSlot {
    pub status: Status,
    /// Set by `yield_now`/`spin_loop`: the next scheduling decision must
    /// switch away if any other thread is runnable (consumed by one pick).
    pub yielded: bool,
    pub view: View,
    /// Release views observed by relaxed loads, claimed by a later
    /// acquire fence.
    pub acq_pending: View,
    /// View snapshot at the last release fence; attached to subsequent
    /// relaxed stores.
    pub rel_fence: Option<View>,
    /// Per-location count of non-latest (stale) read branches this thread
    /// has taken, capped at [`STALE_BUDGET`] — see the note there.
    pub stale: Vec<u32>,
    gate: Arc<Gate>,
    pub os: Option<std::thread::JoinHandle<()>>,
    pub result: Option<Box<dyn Any + Send>>,
}

impl ThreadSlot {
    fn new(view: View) -> Self {
        ThreadSlot {
            status: Status::Runnable,
            yielded: false,
            view,
            acq_pending: View::default(),
            rel_fence: None,
            stale: Vec::new(),
            gate: Arc::new(Gate::new()),
            os: None,
            result: None,
        }
    }
}

pub(crate) struct MutexSt {
    pub owner: Option<Tid>,
    /// Join of the views of all past unlockers: lock-acquire joins it,
    /// modeling the happens-before edge unlock -> next lock.
    pub view: View,
}

pub(crate) struct CondvarSt {
    /// FIFO wait queue.
    pub waiters: Vec<Tid>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    pub arity: u32,
    pub chosen: u32,
}

/// Why an execution failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure).
    Panic(String),
    /// Every live thread is blocked on a mutex, condvar, or join.
    Deadlock(String),
    /// The per-execution step budget was exhausted (livelock or an
    /// unbounded model).
    StepLimit,
}

#[derive(Clone)]
pub(crate) struct ExecCfg {
    pub max_preemptions: usize,
    pub max_steps: usize,
}

pub(crate) struct ExecState {
    pub threads: Vec<ThreadSlot>,
    pub locations: Vec<Location>,
    pub mutexes: Vec<MutexSt>,
    pub condvars: Vec<CondvarSt>,
    pub current: Tid,
    pub steps: usize,
    pub preemptions: usize,
    pub decisions: Vec<Decision>,
    prefix: Vec<u32>,
    cursor: usize,
    rng: Option<Rng64>,
    pub failure: Option<FailureKind>,
    pub aborting: bool,
    cfg: ExecCfg,
    done: Arc<Gate>,
}

impl ExecState {
    /// Resolve one nondeterministic choice among `arity` alternatives:
    /// forced by the replay prefix, drawn from the randomized scheduler's
    /// RNG, or defaulting to 0 (DFS explores the rest by backtracking).
    pub(crate) fn decide(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 1);
        let chosen = if self.cursor < self.prefix.len() {
            let c = self.prefix[self.cursor] as usize;
            self.cursor += 1;
            c.min(arity - 1)
        } else if let Some(rng) = &mut self.rng {
            (rng.next() % arity as u64) as usize
        } else {
            0
        };
        self.decisions.push(Decision {
            arity: arity as u32,
            chosen: chosen as u32,
        });
        chosen
    }

    fn runnable(&self) -> Vec<Tid> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].status == Status::Runnable)
            .collect()
    }

    /// Pick the next thread to run. Returns `None` when nothing is
    /// runnable (caller distinguishes completion from deadlock).
    ///
    /// Candidate 0 is always "keep running the current thread" when that
    /// is allowed, so the DFS default (choice 0 everywhere) is the
    /// non-preemptive schedule and preemptions only appear on backtracked
    /// branches — which is what makes the context-switch bound prune the
    /// tree instead of merely relabeling it.
    fn pick_next(&mut self, cur: Tid) -> Option<Tid> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            return None;
        }
        let cur_ok = self.threads[cur].status == Status::Runnable;
        let cur_yielded = self.threads[cur].yielded;
        let cands: Vec<Tid> = if cur_ok && !cur_yielded {
            if self.preemptions >= self.cfg.max_preemptions {
                vec![cur]
            } else {
                let mut c = vec![cur];
                c.extend(runnable.iter().copied().filter(|&t| t != cur));
                c
            }
        } else {
            // The switch is free: current is blocked, finished, or asked
            // to yield. Prefer threads that did not themselves yield.
            let non_yielded: Vec<Tid> = runnable
                .iter()
                .copied()
                .filter(|&t| !self.threads[t].yielded)
                .collect();
            if non_yielded.is_empty() {
                runnable
            } else {
                non_yielded
            }
        };
        let next = cands[self.decide(cands.len())];
        if cur_ok && !cur_yielded && next != cur {
            self.preemptions += 1;
        }
        for t in &mut self.threads {
            t.yielded = false;
        }
        self.current = next;
        Some(next)
    }

    /// Record a failure (first one wins) and tear the execution down:
    /// wake every parked thread so it unwinds via [`AbortExecution`], and
    /// release the controller.
    pub(crate) fn fail(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
        self.aborting = true;
        for t in &self.threads {
            if t.status != Status::Finished {
                t.gate.open();
            }
        }
        self.done.open();
    }

    fn deadlock_report(&self) -> String {
        let mut parts = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let what = match t.status {
                Status::BlockedMutex(m) => format!("thread {i} blocked on mutex {m}"),
                Status::BlockedCondvar(c) => format!("thread {i} waiting on condvar {c}"),
                Status::BlockedJoin(j) => format!("thread {i} joining thread {j}"),
                _ => continue,
            };
            parts.push(what);
        }
        parts.join("; ")
    }
}

pub(crate) struct Exec {
    pub st: OsMutex<ExecState>,
    done: Arc<Gate>,
}

/// Panic payload used to unwind model threads when an execution aborts;
/// recognized (and swallowed) by the thread wrapper.
pub(crate) struct AbortExecution;

fn abort_panic() -> ! {
    std::panic::panic_any(AbortExecution)
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
}

fn context() -> (Arc<Exec>, Tid) {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|(e, t)| (e.clone(), *t)).expect(
            "damaris_sync model primitive used outside a model run; \
                 construct model types only inside Builder::check / model()",
        )
    })
}

/// Ops performed while unwinding (e.g. atomics in destructors during an
/// abort) must not schedule, branch, or panic again: they run in "quiet"
/// mode against the latest state.
pub(crate) fn quiet() -> bool {
    std::thread::panicking()
}

fn lock(exec: &Exec) -> std::sync::MutexGuard<'_, ExecState> {
    exec.st.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A scheduling point: charge one step, then let the scheduler decide who
/// runs next; park until re-scheduled if the token moves away.
pub(crate) fn schedule_point() {
    if quiet() {
        return;
    }
    let (exec, tid) = context();
    let mut st = lock(&exec);
    if st.aborting {
        drop(st);
        abort_panic();
    }
    st.steps += 1;
    if st.steps > st.cfg.max_steps {
        st.fail(FailureKind::StepLimit);
        drop(st);
        abort_panic();
    }
    match st.pick_next(tid) {
        Some(next) if next == tid => {}
        Some(next) => {
            let g_next = st.threads[next].gate.clone();
            let g_me = st.threads[tid].gate.clone();
            drop(st);
            g_next.open();
            g_me.wait();
            let st = lock(&exec);
            if st.aborting {
                drop(st);
                abort_panic();
            }
        }
        // The caller is runnable, so the runnable set cannot be empty.
        None => unreachable!("schedule_point with no runnable thread"),
    }
}

/// Mark the current thread as yielding: the next scheduling decision must
/// prefer some other runnable thread. Spin loops in models terminate
/// because of this.
pub(crate) fn yield_now() {
    if quiet() {
        return;
    }
    let (exec, tid) = context();
    {
        let mut st = lock(&exec);
        if st.aborting {
            drop(st);
            abort_panic();
        }
        st.threads[tid].yielded = true;
    }
    schedule_point();
}

/// Block the current thread: `setup` registers it on whatever queue it is
/// waiting on and sets its `Blocked*` status; the scheduler then hands the
/// token to someone else (or declares deadlock). Returns once a waker has
/// made the thread runnable and the scheduler picked it again.
pub(crate) fn block_current(exec: &Exec, tid: Tid, setup: impl FnOnce(&mut ExecState)) {
    let mut st = lock(exec);
    if st.aborting {
        drop(st);
        abort_panic();
    }
    setup(&mut st);
    debug_assert_ne!(st.threads[tid].status, Status::Runnable);
    match st.pick_next(tid) {
        Some(next) => {
            debug_assert_ne!(next, tid);
            let g_next = st.threads[next].gate.clone();
            let g_me = st.threads[tid].gate.clone();
            drop(st);
            g_next.open();
            g_me.wait();
        }
        None => {
            // Everybody is blocked (the caller included): deadlock. A
            // fully-finished world is impossible here because the caller
            // is blocked, not finished.
            let report = st.deadlock_report();
            st.fail(FailureKind::Deadlock(report));
            drop(st);
            abort_panic();
        }
    }
    let st = lock(exec);
    if st.aborting {
        drop(st);
        abort_panic();
    }
    debug_assert_eq!(st.threads[tid].status, Status::Runnable);
}

/// Register a new atomic location with an initial store visible to every
/// thread.
pub(crate) fn register_location(init: u64) -> LocId {
    let (exec, _tid) = context();
    let mut st = lock(&exec);
    let id = st.locations.len();
    st.locations.push(Location {
        history: vec![StoreEntry {
            seq: 0,
            value: init,
            rel_view: None,
        }],
        next_seq: 1,
        last_sc: 0,
    });
    id
}

pub(crate) fn register_mutex() -> usize {
    let (exec, _tid) = context();
    let mut st = lock(&exec);
    let id = st.mutexes.len();
    st.mutexes.push(MutexSt {
        owner: None,
        view: View::default(),
    });
    id
}

pub(crate) fn register_condvar() -> usize {
    let (exec, _tid) = context();
    let mut st = lock(&exec);
    let id = st.condvars.len();
    st.condvars.push(CondvarSt {
        waiters: Vec::new(),
    });
    id
}

/// Read a location's latest value without scheduling (Debug impls).
pub(crate) fn peek(loc: LocId) -> u64 {
    let (exec, _tid) = context();
    let st = lock(&exec);
    st.locations[loc]
        .history
        .last()
        .map(|e| e.value)
        .unwrap_or(0)
}

pub(crate) fn with_state<R>(f: impl FnOnce(&mut ExecState, Tid) -> R) -> R {
    let (exec, tid) = context();
    let mut st = lock(&exec);
    f(&mut st, tid)
}

pub(crate) fn exec_handle() -> (Arc<Exec>, Tid) {
    context()
}

/// Spawn a model thread. The child inherits the parent's view (everything
/// the parent did happens-before the child's first step).
pub(crate) fn spawn_thread<F, T>(f: F) -> Tid
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, tid) = context();
    let child;
    {
        let mut st = lock(&exec);
        if st.aborting {
            drop(st);
            abort_panic();
        }
        child = st.threads.len();
        let parent_view = st.threads[tid].view.clone();
        st.threads.push(ThreadSlot::new(parent_view));
    }
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("model-{child}"))
        .spawn(move || thread_main(exec2, child, f))
        .expect("spawn model OS thread");
    let mut st = lock(&exec);
    st.threads[child].os = Some(os);
    child
}

/// Join a model thread: block until it finishes, then join its final view
/// (everything it did happens-before the join returning) and take its
/// result.
pub(crate) fn join_thread(target: Tid) -> Option<Box<dyn Any + Send>> {
    schedule_point();
    let (exec, tid) = context();
    loop {
        let mut st = lock(&exec);
        if st.aborting {
            drop(st);
            abort_panic();
        }
        if st.threads[target].status == Status::Finished {
            let tv = st.threads[target].view.clone();
            st.threads[tid].view.join(&tv);
            return st.threads[target].result.take();
        }
        drop(st);
        block_current(&exec, tid, |st| {
            st.threads[tid].status = Status::BlockedJoin(target);
        });
    }
}

fn payload_to_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with non-string payload".to_string()
    }
}

/// Body shared by the root closure and every spawned model thread.
fn thread_main<F, T>(exec: Arc<Exec>, tid: Tid, f: F)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let gate = {
        let st = lock(&exec);
        st.threads[tid].gate.clone()
    };
    gate.wait();
    let aborted_before_start = {
        let st = lock(&exec);
        st.aborting
    };
    if aborted_before_start {
        finish_quiet(&exec, tid);
    } else {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(val) => finish_ok(&exec, tid, Box::new(val)),
            Err(payload) => {
                if payload.is::<AbortExecution>() {
                    finish_quiet(&exec, tid);
                } else {
                    let msg = payload_to_string(payload);
                    let mut st = lock(&exec);
                    st.threads[tid].status = Status::Finished;
                    st.fail(FailureKind::Panic(msg));
                }
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Normal completion: wake joiners, hand the token onward (or finish the
/// execution / flag a deadlock if nobody can run).
fn finish_ok(exec: &Exec, tid: Tid, result: Box<dyn Any + Send>) {
    let mut st = lock(exec);
    st.threads[tid].status = Status::Finished;
    st.threads[tid].result = Some(result);
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::BlockedJoin(tid) {
            st.threads[t].status = Status::Runnable;
        }
    }
    if st.aborting {
        return;
    }
    match st.pick_next(tid) {
        Some(next) => {
            let g = st.threads[next].gate.clone();
            drop(st);
            g.open();
        }
        None => {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done.open();
            } else {
                let report = st.deadlock_report();
                st.fail(FailureKind::Deadlock(report));
            }
        }
    }
}

/// Teardown-path completion (abort unwind): just mark the slot finished.
fn finish_quiet(exec: &Exec, tid: Tid) {
    let mut st = lock(exec);
    st.threads[tid].status = Status::Finished;
}

/// Tiny splitmix64 for the randomized scheduler; good enough to diversify
/// schedules, and deterministic for a given seed.
#[derive(Clone)]
pub(crate) struct Rng64(u64);

impl Rng64 {
    pub(crate) fn new(seed: u64) -> Self {
        Rng64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Run one execution of `f` to completion (or failure) under the given
/// forced decision prefix / RNG, returning the decision trace and the
/// failure, if any.
pub(crate) fn run_once<F>(
    f: &Arc<F>,
    prefix: &[u32],
    rng: Option<Rng64>,
    cfg: &ExecCfg,
) -> (Vec<Decision>, Option<FailureKind>)
where
    F: Fn() + Send + Sync + 'static,
{
    let done = Arc::new(Gate::new());
    let exec = Arc::new(Exec {
        st: OsMutex::new(ExecState {
            threads: vec![ThreadSlot::new(View::default())],
            locations: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            current: 0,
            steps: 0,
            preemptions: 0,
            decisions: Vec::new(),
            prefix: prefix.to_vec(),
            cursor: 0,
            rng,
            failure: None,
            aborting: false,
            cfg: cfg.clone(),
            done: done.clone(),
        }),
        done,
    });
    let gate0 = {
        let st = lock(&exec);
        st.threads[0].gate.clone()
    };
    let exec2 = exec.clone();
    let f2 = f.clone();
    let h = std::thread::Builder::new()
        .name("model-0".into())
        .spawn(move || thread_main(exec2, 0, move || f2()))
        .expect("spawn model root thread");
    {
        let mut st = lock(&exec);
        st.threads[0].os = Some(h);
    }
    gate0.open();
    exec.done.wait();
    // Every live thread has been released (normal finish or abort); wait
    // for the OS threads to actually unwind before reading final state.
    let handles: Vec<_> = {
        let mut st = lock(&exec);
        st.threads.iter_mut().filter_map(|t| t.os.take()).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    let mut st = lock(&exec);
    (std::mem::take(&mut st.decisions), st.failure.take())
}
