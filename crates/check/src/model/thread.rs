//! Model-mode replacement for `std::thread`: spawn/join map onto model
//! threads driven by the checker's scheduler, and `yield_now`/`sleep`
//! become scheduling hints (model time does not advance).

use crate::model::rt;
use std::marker::PhantomData;
use std::time::Duration;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: rt::Tid,
    _t: PhantomData<T>,
}

/// Spawn a model thread; it becomes runnable immediately and actually
/// runs when the scheduler picks it. Everything the parent did so far
/// happens-before the child's first step.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    JoinHandle {
        tid: rt::spawn_thread(f),
        _t: PhantomData,
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Block (in model time) until the thread finishes; its final view
    /// joins the joiner's. Mirrors `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        match rt::join_thread(self.tid) {
            Some(boxed) => Ok(*boxed
                .downcast::<T>()
                .expect("join result type matches spawn closure")),
            // The thread finished without storing a result, which only
            // happens on the abort path — and aborts unwind the joiner
            // before reaching here.
            None => unreachable!("joined thread finished without a result"),
        }
    }
}

/// Ask the scheduler to run someone else; the backbone of spin loops in
/// models (guarantees progress, so bounded models terminate).
pub fn yield_now() {
    rt::yield_now();
}

/// Model time does not advance: sleeping is just a yield.
pub fn sleep(_dur: Duration) {
    rt::yield_now();
}
