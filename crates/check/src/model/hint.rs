//! Model-mode replacement for `std::hint`: a spin-loop hint is a real
//! scheduling yield so spinning cannot starve the thread being waited on.

use crate::model::rt;

/// Yield to the scheduler (model equivalent of a pause instruction).
pub fn spin_loop() {
    rt::yield_now();
}
