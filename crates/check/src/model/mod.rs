//! The model checker's public API.
//!
//! A *model* is a closure that builds a small bounded instance of a
//! concurrent protocol out of [`sync`] primitives and [`thread`] handles,
//! runs it, and asserts its invariants. [`Builder::check`] executes the
//! closure many times under a deterministic scheduler:
//!
//! - [`Builder::exhaustive`] — DFS over the tree of scheduler decisions
//!   (which thread runs at each step, which store a weak load observes),
//!   bounded by a context-switch (preemption) budget. Explores *every*
//!   schedule within the bound.
//! - [`Builder::random`] — seeded PCT-style randomized scheduling for
//!   models too large to exhaust; deterministic for a given seed.
//! - [`Builder::replay`] — re-run one exact schedule from a failure
//!   report (regression pinning).
//!
//! Failures — assertion panics, deadlock (all threads blocked), and step
//! budget exhaustion (livelock) — come back as a [`Failure`] carrying the
//! [`Schedule`] that reproduces them.
//!
//! ```
//! use damaris_sync::model::{self, sync::{AtomicUsize, Ordering}};
//! use std::sync::Arc;
//!
//! model::model(|| {
//!     let v = Arc::new(AtomicUsize::new(0));
//!     let v2 = v.clone();
//!     let t = model::thread::spawn(move || v2.fetch_add(1, Ordering::Relaxed));
//!     v.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(v.load(Ordering::Relaxed), 2); // RMWs cannot lose updates
//! });
//! ```

pub(crate) mod rt;

pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::FailureKind;

use rt::{Decision, ExecCfg, Rng64};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A replayable schedule: the chosen branch at every scheduler decision
/// of one execution. Print it with `{}` and pin it with [`Schedule::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule(pub Vec<u32>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.0 {
            if !first {
                f.write_str(".")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.split('.')
            .map(|p| p.parse::<u32>())
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// One failing execution: why it failed and how to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The decision vector reproducing it via [`Builder::replay`].
    pub schedule: Schedule,
    /// For randomized runs, the per-execution seed that produced it.
    pub seed: Option<u64>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => write!(f, "assertion failure: {msg}")?,
            FailureKind::Deadlock(what) => write!(f, "deadlock: {what}")?,
            FailureKind::StepLimit => write!(f, "step budget exhausted (livelock?)")?,
        }
        write!(f, "\n  replay schedule: {}", self.schedule)?;
        if let Some(seed) = self.seed {
            write!(f, "\n  random seed: {seed:#x}")?;
        }
        Ok(())
    }
}

/// Outcome of a [`Builder::check`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules (executions) explored.
    pub executions: u64,
    /// True when the exploration finished (DFS exhausted the tree within
    /// the bounds / all randomized iterations ran) rather than stopping
    /// at [`Builder::max_executions`] or at a failure.
    pub complete: bool,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

enum Mode {
    Exhaustive,
    Random { iterations: u64, seed: u64 },
    Replay(Schedule),
}

/// Configures and runs a model exploration.
pub struct Builder {
    mode: Mode,
    max_preemptions: usize,
    max_steps: usize,
    max_executions: u64,
}

impl Builder {
    /// Bounded-exhaustive DFS with the default preemption budget.
    pub fn exhaustive() -> Self {
        Builder {
            mode: Mode::Exhaustive,
            max_preemptions: 2,
            max_steps: 20_000,
            max_executions: 2_000_000,
        }
    }

    /// Seeded randomized exploration of `iterations` schedules.
    pub fn random(iterations: u64, seed: u64) -> Self {
        Builder {
            mode: Mode::Random { iterations, seed },
            max_preemptions: usize::MAX,
            max_steps: 20_000,
            max_executions: u64::MAX,
        }
    }

    /// Re-run one pinned schedule (from [`Failure::schedule`]).
    pub fn replay(schedule: Schedule) -> Self {
        Builder {
            mode: Mode::Replay(schedule),
            max_preemptions: usize::MAX,
            max_steps: 20_000,
            max_executions: 1,
        }
    }

    /// Cap the number of preemptive context switches per execution
    /// (exhaustive mode). Voluntary switches (blocking, yielding,
    /// finishing) are free.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Cap the number of scheduling points per execution; exceeding it
    /// reports [`FailureKind::StepLimit`].
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Cap the total number of executions explored (safety valve; a
    /// truncated exploration returns `complete: false`).
    pub fn max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }

    /// Explore `f` under this configuration.
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let cfg = ExecCfg {
            max_preemptions: self.max_preemptions,
            max_steps: self.max_steps,
        };
        match self.mode {
            Mode::Replay(schedule) => {
                let (decisions, kind) = rt::run_once(&f, &schedule.0, None, &cfg);
                Report {
                    executions: 1,
                    complete: true,
                    failure: kind.map(|kind| Failure {
                        kind,
                        schedule: chosen(&decisions),
                        seed: None,
                    }),
                }
            }
            Mode::Random { iterations, seed } => {
                for i in 0..iterations {
                    // Derive a per-execution seed so each iteration is
                    // independently replayable.
                    let exec_seed = Rng64::new(seed ^ i.wrapping_mul(0x9e37_79b9)).next();
                    let (decisions, kind) =
                        rt::run_once(&f, &[], Some(Rng64::new(exec_seed)), &cfg);
                    if let Some(kind) = kind {
                        return Report {
                            executions: i + 1,
                            complete: false,
                            failure: Some(Failure {
                                kind,
                                schedule: chosen(&decisions),
                                seed: Some(exec_seed),
                            }),
                        };
                    }
                }
                Report {
                    executions: iterations,
                    complete: true,
                    failure: None,
                }
            }
            Mode::Exhaustive => {
                let mut prefix: Vec<u32> = Vec::new();
                let mut executions = 0u64;
                loop {
                    let (decisions, kind) = rt::run_once(&f, &prefix, None, &cfg);
                    executions += 1;
                    if let Some(kind) = kind {
                        return Report {
                            executions,
                            complete: false,
                            failure: Some(Failure {
                                kind,
                                schedule: chosen(&decisions),
                                seed: None,
                            }),
                        };
                    }
                    // Backtrack: deepest decision with an untried branch
                    // becomes the new forced prefix (lexicographic DFS
                    // over the decision tree).
                    match next_prefix(&decisions) {
                        None => {
                            return Report {
                                executions,
                                complete: true,
                                failure: None,
                            }
                        }
                        Some(p) => prefix = p,
                    }
                    if executions >= self.max_executions {
                        return Report {
                            executions,
                            complete: false,
                            failure: None,
                        };
                    }
                }
            }
        }
    }
}

fn chosen(decisions: &[Decision]) -> Schedule {
    Schedule(decisions.iter().map(|d| d.chosen).collect())
}

fn next_prefix(decisions: &[Decision]) -> Option<Vec<u32>> {
    let mut i = decisions.len();
    while i > 0 {
        i -= 1;
        if decisions[i].chosen + 1 < decisions[i].arity {
            let mut p: Vec<u32> = decisions[..i].iter().map(|d| d.chosen).collect();
            p.push(decisions[i].chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Exhaustively explore `f` with the default bounds, panicking (with the
/// replay schedule) on the first failure. The loom-shaped entry point.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::exhaustive().check(f);
    if let Some(failure) = &report.failure {
        panic!(
            "model failed after {} execution(s): {failure}",
            report.executions
        );
    }
    assert!(
        report.complete,
        "model exploration truncated at {} executions; raise max_executions or shrink the model",
        report.executions
    );
    report
}
