//! `damaris_sync` — the workspace's synchronization facade, plus an
//! in-tree loom-style concurrency model checker.
//!
//! Every crate that owns a lock-free protocol imports its atomics,
//! `Mutex`/`Condvar`, fences, and thread handles from here instead of
//! `std::sync::atomic` / `parking_lot` directly:
//!
//! ```ignore
//! use damaris_sync::{AtomicUsize, Ordering, Mutex, Condvar, fence};
//! ```
//!
//! In a normal build the facade is zero-cost: every name re-exports the
//! `std` / `parking_lot` original. Under `--cfg damaris_check` (set by the
//! `cargo check-models` alias or `RUSTFLAGS="--cfg damaris_check"`), the
//! same names resolve to [`model`] runtime types that route every atomic
//! load/store/RMW, lock, and wait through a deterministic scheduler so
//! bounded models of the protocols can be exhaustively explored.
//!
//! The checker itself ([`model`]) is *always* compiled, so the model suite
//! in `tests/models.rs` runs under a plain `cargo test -p damaris-check`
//! with no special flags; `cfg(damaris_check)` only controls which types
//! the facade re-exports at the crate root.
//!
//! See the "Concurrency correctness" section of the top-level README for
//! the workflow and the policy on adding new atomics.

pub mod model;

#[cfg(not(damaris_check))]
mod facade {
    pub use core::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
    pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::hint;
    pub use std::thread;
}

#[cfg(damaris_check)]
mod facade {
    pub use crate::model::hint;
    pub use crate::model::sync::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard,
        Ordering, WaitTimeoutResult,
    };
    pub use crate::model::thread;
}

pub use facade::*;
