//! **The one Damaris client API** — a facade that hides where the
//! dedicated core lives.
//!
//! The paper's usability claim rests on a *single* simulation-side
//! surface (`damaris_write`, `damaris_alloc`/`damaris_commit`,
//! `damaris_signal`, `damaris_end_iteration`, `damaris_finalize`) that is
//! identical whether the dedicated core is a thread of the simulation
//! process or a separate MPI process on the same node. This module is
//! that seam:
//!
//! * [`SimHandle`] — the paper-shaped trait, implemented by the
//!   thread-mode [`DamarisClient`] and the process-mode
//!   [`ProcessHandle`];
//! * [`Damaris`] — the enum-dispatched handle applications hold, so a
//!   simulation is written exactly once as
//!   `fn simulate<H: SimHandle>(h: &mut H)` (or directly against
//!   `&mut Damaris`) and runs unmodified on either world;
//! * [`Damaris::launch`] — the one construction point: it reads
//!   `<world kind="threads|processes"/>` and `<clients count="…"/>` from
//!   the configuration, stands up the matching world (an in-process
//!   [`DamarisNode`] or a spawned [`mini_mpi::World`] with a
//!   [`ProcessServer`] on rank 0), runs
//!   the simulation function once per client, and returns a
//!   world-independent [`SimReport`].
//!
//! The report carries an order-independent digest of every block the
//! dedicated core consumed, so tests can assert that both worlds received
//! byte-identical data without poking world-specific internals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use damaris_xml::schema::Configuration;
use damaris_xml::VarId;
use mini_mpi::World;

use crate::client::{ClientStats, DamarisClient, WriteStatus};
use crate::error::{DamarisError, DamarisResult};
use crate::node::DamarisNode;
use crate::plugins::{FnPlugin, Plugin, ServeSink, StorageSink};
use crate::process::{DigestSink, ProcessHandle, ProcessServer, ProcessSink, DEDICATED_RANK};

// ---------------------------------------------------------------------------
// Shared validation (used by both backends)
// ---------------------------------------------------------------------------

/// Resolve a variable name against the configuration's interned registry.
///
/// The single construction point of [`DamarisError::UnknownVariable`]:
/// both the thread-mode client and the process-mode client route name
/// lookups through here, so the two backends cannot drift in how they
/// reject undeclared variables.
pub(crate) fn resolve_var(cfg: &Configuration, variable: &str) -> DamarisResult<VarId> {
    cfg.registry()
        .var_id(variable)
        .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))
}

/// Check that `got` bytes match the declared layout of `var`.
///
/// Fixed layouts require the exact precomputed byte size. **Dynamic**
/// layouts (`dimensions="dynamic"`) accept any caller-supplied extent
/// that is non-zero, a whole number of elements, and within the layout's
/// declared `max_size` — the AMR contract, where every write carries its
/// own block length.
///
/// The single construction point of [`DamarisError::LayoutMismatch`],
/// shared by both backends (see [`resolve_var`]).
pub(crate) fn check_layout(cfg: &Configuration, var: VarId, got: usize) -> DamarisResult<()> {
    let reg = cfg.registry();
    if reg.is_dynamic(var) {
        let elem = reg.entry(var).elem_type.size_bytes();
        let max = reg.max_byte_size(var);
        if got == 0 || !got.is_multiple_of(elem) {
            // expected = 0 selects the dynamic-specific error message
            // ("not a valid size for its dynamic layout"), not the
            // fixed-layout "layout holds N bytes" wording.
            return Err(DamarisError::LayoutMismatch {
                variable: cfg.var_name(var).to_string(),
                expected: 0,
                got,
            });
        }
        if let Some(m) = max {
            if got > m {
                return Err(DamarisError::LayoutMismatch {
                    variable: cfg.var_name(var).to_string(),
                    expected: m,
                    got,
                });
            }
        }
        return Ok(());
    }
    let expected = reg.byte_size(var);
    if got != expected {
        return Err(DamarisError::LayoutMismatch {
            variable: cfg.var_name(var).to_string(),
            expected,
            got,
        });
    }
    Ok(())
}

/// FNV-1a hash of one published block (variable, iteration, 0-based
/// client index, payload bytes). Blocks arrive at the dedicated core in a
/// scheduling-dependent order, so world-level digests combine per-block
/// hashes with a wrapping sum — order-independent, identical across
/// worlds when and only when the same blocks arrived.
pub(crate) fn block_digest(var: u64, iteration: u64, client: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [var, iteration, client] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// The facade traits
// ---------------------------------------------------------------------------

/// A shared-memory block being filled in place by the simulation (the
/// zero-copy path), independent of which backend allocated it.
pub trait SimWriter {
    /// Whether the skip policy dropped this iteration (the writer is
    /// inert: filling it is a no-op and committing reports
    /// [`WriteStatus::Skipped`]).
    fn is_skipped(&self) -> bool;

    /// Mutable view of the shared-memory block (empty slice when
    /// skipped).
    fn as_mut_slice(&mut self) -> &mut [u8];

    /// Fill from a typed slice (convenience over
    /// [`SimWriter::as_mut_slice`]).
    fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]);
}

/// The paper-shaped simulation-side API, identical over both worlds.
///
/// Each method corresponds to one function of the original middleware's C
/// API; simulation code written against this trait (or the
/// enum-dispatched [`Damaris`]) runs unmodified whether the dedicated
/// core is a thread ([`DamarisClient`]) or a separate OS process
/// ([`ProcessHandle`]).
pub trait SimHandle {
    /// Backend-specific zero-copy writer returned by [`SimHandle::alloc`].
    type Writer: SimWriter;

    /// This client's 0-based index among the node's compute cores (the
    /// paper's client rank within the node).
    fn id(&self) -> usize;

    /// The loaded configuration.
    fn config(&self) -> &Configuration;

    /// Resolve a variable name to its interned id once, so repeated
    /// writes can skip the hash lookup (paper: the variable handle
    /// `damaris_parameter_get`-style lookups cache).
    fn var_id(&self, variable: &str) -> DamarisResult<VarId>;

    /// Publish one variable for one iteration — the paper's
    /// `damaris_write`, the single instrumentation line its usability
    /// comparison counts (§V.C.2).
    fn write<T: damaris_shm::segment::Pod>(
        &mut self,
        variable: &str,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let var = self.var_id(variable)?;
        self.write_id(var, iteration, data)
    }

    /// [`SimHandle::write`] with a pre-resolved [`VarId`].
    fn write_id<T: damaris_shm::segment::Pod>(
        &mut self,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus>;

    /// Allocate the variable's block in shared memory for in-place
    /// filling — the paper's `damaris_alloc` ("functions to directly
    /// access the shared memory segment", §III.B). The write-timing
    /// clock starts here, so [`SimHandle::stats`] covers allocation and
    /// fill, not just the final publish.
    ///
    /// Only for fixed layouts (the size is the declared one); a
    /// `dimensions="dynamic"` variable needs [`SimHandle::alloc_sized`].
    fn alloc(&mut self, variable: &str, iteration: u64) -> DamarisResult<Self::Writer>;

    /// [`SimHandle::alloc`] with a caller-supplied block length in bytes
    /// — the zero-copy path for variable-size (AMR refinement,
    /// per-step particle counts) workloads on `dimensions="dynamic"`
    /// layouts. Every write carries its own extent; both backends
    /// validate it against the element size and the layout's `max_size`.
    fn alloc_sized(
        &mut self,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<Self::Writer>;

    /// Publish a block obtained from [`SimHandle::alloc`] — the paper's
    /// `damaris_commit`.
    fn commit(&mut self, writer: Self::Writer) -> DamarisResult<WriteStatus>;

    /// Raise a user event — the paper's `damaris_signal`; actions
    /// declared with `event="name"` fire on the dedicated core. Names no
    /// `<action>` references are silently dropped at this edge on both
    /// backends (nothing could match them).
    fn signal(&mut self, name: &str, iteration: u64) -> DamarisResult<()>;

    /// Mark the iteration finished for this client — the paper's
    /// `damaris_end_iteration`. When every client of the node has ended
    /// iteration `k` and all its blocks arrived, the dedicated core
    /// fires the end-of-iteration actions.
    fn end_iteration(&mut self, iteration: u64) -> DamarisResult<()>;

    /// Announce that this client will send nothing further — the
    /// paper's `damaris_finalize`.
    fn finalize(&mut self) -> DamarisResult<()>;

    /// Snapshot of this client's timing statistics (writes, bytes,
    /// latency histogram) — uniform per-rank instrumentation regardless
    /// of backend.
    fn stats(&self) -> ClientStats;

    /// Iterations dropped by the skip policy so far.
    fn skipped_iterations(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Trait impl for the thread-mode client
// ---------------------------------------------------------------------------

impl<C: damaris_shm::transport::EventChannel<crate::event::Event>> SimWriter
    for crate::client::BlockWriter<C>
{
    fn is_skipped(&self) -> bool {
        crate::client::BlockWriter::is_skipped(self)
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        crate::client::BlockWriter::as_mut_slice(self)
    }

    fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]) {
        crate::client::BlockWriter::fill_pod(self, data)
    }
}

impl<C: damaris_shm::transport::EventChannel<crate::event::Event>> SimHandle for DamarisClient<C> {
    type Writer = crate::client::BlockWriter<C>;

    fn id(&self) -> usize {
        DamarisClient::id(self)
    }

    fn config(&self) -> &Configuration {
        DamarisClient::config(self)
    }

    fn var_id(&self, variable: &str) -> DamarisResult<VarId> {
        DamarisClient::var_id(self, variable)
    }

    fn write_id<T: damaris_shm::segment::Pod>(
        &mut self,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        DamarisClient::write_id(self, var, iteration, data)
    }

    fn alloc(&mut self, variable: &str, iteration: u64) -> DamarisResult<Self::Writer> {
        DamarisClient::alloc(self, variable, iteration)
    }

    fn alloc_sized(
        &mut self,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<Self::Writer> {
        DamarisClient::alloc_sized(self, variable, iteration, bytes)
    }

    fn commit(&mut self, writer: Self::Writer) -> DamarisResult<WriteStatus> {
        DamarisClient::commit(self, writer)
    }

    fn signal(&mut self, name: &str, iteration: u64) -> DamarisResult<()> {
        DamarisClient::signal(self, name, iteration)
    }

    fn end_iteration(&mut self, iteration: u64) -> DamarisResult<()> {
        DamarisClient::end_iteration(self, iteration)
    }

    fn finalize(&mut self) -> DamarisResult<()> {
        DamarisClient::finalize(self)
    }

    fn stats(&self) -> ClientStats {
        DamarisClient::stats(self)
    }

    fn skipped_iterations(&self) -> u64 {
        DamarisClient::skipped_iterations(self)
    }
}

// ---------------------------------------------------------------------------
// The enum-dispatched handle and launcher
// ---------------------------------------------------------------------------

/// A zero-copy writer from either backend (see [`SimHandle::alloc`] on
/// [`Damaris`]).
pub enum DamarisWriter {
    /// Writer over the thread-mode node's shared segment.
    Threads(crate::client::BlockWriter),
    /// Writer over the process-mode client's slice of the shared mapping.
    Processes(crate::process::ProcessBlockWriter),
}

impl SimWriter for DamarisWriter {
    fn is_skipped(&self) -> bool {
        match self {
            DamarisWriter::Threads(w) => SimWriter::is_skipped(w),
            DamarisWriter::Processes(w) => SimWriter::is_skipped(w),
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        match self {
            DamarisWriter::Threads(w) => SimWriter::as_mut_slice(w),
            DamarisWriter::Processes(w) => SimWriter::as_mut_slice(w),
        }
    }

    fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]) {
        match self {
            DamarisWriter::Threads(w) => SimWriter::fill_pod(w, data),
            DamarisWriter::Processes(w) => SimWriter::fill_pod(w, data),
        }
    }
}

enum DamarisInner<'a> {
    Threads(DamarisClient),
    // Boxed: the process client embeds its stats histogram (~700 bytes),
    // which would bloat every thread-mode handle.
    Processes(Box<ProcessHandle<'a>>),
}

/// The unified client handle applications hold: one of the two backends
/// behind one [`SimHandle`] surface.
///
/// Constructed by [`Damaris::launch`] (which picks the backend from
/// `<world kind="…"/>`), or directly via [`Damaris::threads`] /
/// [`Damaris::processes`] when embedding into an existing node or world.
///
/// [`SimHandle::finalize`] is idempotent on this handle (the launcher
/// calls it defensively after the simulation function returns).
pub struct Damaris<'a> {
    inner: DamarisInner<'a>,
    finalized: bool,
}

impl<'a> Damaris<'a> {
    /// Wrap a thread-mode client of an existing [`DamarisNode`].
    pub fn threads(client: DamarisClient) -> Self {
        Damaris {
            inner: DamarisInner::Threads(client),
            finalized: false,
        }
    }

    /// Wrap a process-mode client rank of an existing socket world.
    pub fn processes(handle: ProcessHandle<'a>) -> Self {
        Damaris {
            inner: DamarisInner::Processes(Box::new(handle)),
            finalized: false,
        }
    }

    /// Stand up whichever world `cfg` names and run `sim` once per
    /// client — the facade's `damaris_initialize`-through-`finalize`
    /// lifecycle in one call.
    ///
    /// * `<world kind="threads"/>`: builds an in-process [`DamarisNode`]
    ///   with `<clients count="…"/>` compute threads; actions fire
    ///   plugins as usual.
    /// * `<world kind="processes"/>`: spawns `<clients count> + 1` OS
    ///   processes by re-executing the current binary
    ///   ([`World::run_spawned`]); rank 0 serves as the dedicated core.
    ///   `program` must uniquely identify this call site across
    ///   re-execution (any constant string for a plain binary; inside a
    ///   `#[test]`, use [`Damaris::launch_test`] with the test's path).
    ///
    /// `sim` receives the unified handle plus `input`, and must derive
    /// all rank behaviour from those two arguments alone — in process
    /// mode it runs in a re-executed child where captured state from the
    /// spawning scope may differ (the configuration itself travels to
    /// the children alongside `input`, so it is always consistent).
    /// `sim` should end with [`SimHandle::finalize`]; the launcher also
    /// finalizes defensively.
    pub fn launch<F>(
        cfg: Configuration,
        program: &str,
        input: &[u8],
        sim: F,
    ) -> DamarisResult<SimReport>
    where
        F: Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync,
    {
        Damaris::launcher(cfg, program).input(input).launch(sim)
    }

    /// [`Damaris::launch`] for call sites inside `#[test]` functions:
    /// process-mode children are re-executed through the libtest harness
    /// (`--exact <program>`), so `program` must be the test's full path
    /// within its binary.
    pub fn launch_test<F>(
        cfg: Configuration,
        program: &str,
        input: &[u8],
        sim: F,
    ) -> DamarisResult<SimReport>
    where
        F: Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync,
    {
        Damaris::launcher(cfg, program)
            .input(input)
            .test_harness()
            .launch(sim)
    }

    /// Start configuring a launch: attach custom plugins (thread world)
    /// and sink factories (process world) before running the simulation.
    /// See [`Launcher`].
    pub fn launcher(cfg: Configuration, program: &str) -> Launcher {
        Launcher {
            cfg,
            program: program.to_string(),
            input: Vec::new(),
            test_harness: false,
            plugins: Vec::new(),
            sinks: Vec::new(),
        }
    }
}

/// A factory producing one process-mode sink per launch (the dedicated
/// core may live in a re-executed child, so sinks travel as closures that
/// build them there, not as instances).
type SinkFactory = Box<dyn Fn() -> Box<dyn ProcessSink> + Send + Sync>;

/// Configured [`Damaris::launch`]: the one construction point extended
/// with custom data-management services for either world.
///
/// * [`Launcher::with_plugin`] registers a [`Plugin`] on the thread-mode
///   node — the dedicated-core services of `<world kind="threads"/>`.
/// * [`Launcher::with_sink`] registers a [`ProcessSink`] factory fanned
///   out on the process-mode dedicated core (rank 0 of
///   `<world kind="processes"/>`). Factories, not instances: the
///   dedicated core is a re-executed child, which rebuilds this
///   `Launcher` identically and constructs the sink there.
///
/// Whichever set does not match `<world kind="…"/>` is ignored, so one
/// call site can carry both and run unmodified on either world. A
/// declared `<store>` wires the storage pipeline automatically in both
/// worlds — no builder call needed.
///
/// ```no_run
/// use damaris_core::prelude::*;
/// use std::sync::Arc;
///
/// let cfg = Configuration::from_str("<simulation name=\"s\"/>").unwrap();
/// let report = Damaris::launcher(cfg, "my-sim")
///     .with_plugin(Arc::new(StatsPlugin::new()))
///     .with_sink(StatsSink::default)
///     .launch(|h, _| {
///         h.finalize().unwrap();
///         Vec::new()
///     })
///     .unwrap();
/// assert_eq!(report.signals_delivered, 0);
/// ```
pub struct Launcher {
    cfg: Configuration,
    program: String,
    input: Vec<u8>,
    test_harness: bool,
    plugins: Vec<Arc<dyn Plugin>>,
    sinks: Vec<SinkFactory>,
}

impl Launcher {
    /// Opaque bytes handed to every client's simulation function (travel
    /// to process-mode children alongside the configuration).
    pub fn input(mut self, input: &[u8]) -> Self {
        self.input = input.to_vec();
        self
    }

    /// Re-execute process-mode children through the libtest harness; the
    /// program string must then be the `#[test]` function's full path
    /// (see [`Damaris::launch_test`]).
    pub fn test_harness(mut self) -> Self {
        self.test_harness = true;
        self
    }

    /// Register a data-management plugin on the thread-mode node
    /// (replaces any auto-registered built-in of the same name; ignored
    /// by process worlds).
    pub fn with_plugin(mut self, plugin: Arc<dyn Plugin>) -> Self {
        self.plugins.push(plugin);
        self
    }

    /// Register a sink factory for the process-mode dedicated core; every
    /// registered sink sees each block and iteration boundary, after the
    /// built-in digest (and storage, when `<store>` is declared). Ignored
    /// by thread worlds.
    pub fn with_sink<S, G>(mut self, make: G) -> Self
    where
        S: ProcessSink + 'static,
        G: Fn() -> S + Send + Sync + 'static,
    {
        self.sinks.push(Box::new(move || Box::new(make())));
        self
    }

    /// Stand up whichever world the configuration names and run `sim`
    /// once per client (see [`Damaris::launch`] for the lifecycle).
    pub fn launch<F>(self, sim: F) -> DamarisResult<SimReport>
    where
        F: Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync,
    {
        match self.cfg.architecture.world {
            damaris_xml::schema::WorldKind::Threads => {
                launch_threads(self.cfg, &self.input, &self.plugins, sim)
            }
            damaris_xml::schema::WorldKind::Processes => launch_processes(
                self.cfg,
                &self.program,
                &self.input,
                self.test_harness,
                &self.sinks,
                sim,
            ),
        }
    }
}

impl SimHandle for Damaris<'_> {
    type Writer = DamarisWriter;

    fn id(&self) -> usize {
        match &self.inner {
            DamarisInner::Threads(c) => SimHandle::id(c),
            DamarisInner::Processes(h) => SimHandle::id(h.as_ref()),
        }
    }

    fn config(&self) -> &Configuration {
        match &self.inner {
            DamarisInner::Threads(c) => SimHandle::config(c),
            DamarisInner::Processes(h) => SimHandle::config(h.as_ref()),
        }
    }

    fn var_id(&self, variable: &str) -> DamarisResult<VarId> {
        match &self.inner {
            DamarisInner::Threads(c) => SimHandle::var_id(c, variable),
            DamarisInner::Processes(h) => SimHandle::var_id(h.as_ref(), variable),
        }
    }

    fn write_id<T: damaris_shm::segment::Pod>(
        &mut self,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        match &mut self.inner {
            DamarisInner::Threads(c) => SimHandle::write_id(c, var, iteration, data),
            DamarisInner::Processes(h) => SimHandle::write_id(h.as_mut(), var, iteration, data),
        }
    }

    fn alloc(&mut self, variable: &str, iteration: u64) -> DamarisResult<Self::Writer> {
        match &mut self.inner {
            DamarisInner::Threads(c) => {
                SimHandle::alloc(c, variable, iteration).map(DamarisWriter::Threads)
            }
            DamarisInner::Processes(h) => {
                SimHandle::alloc(h.as_mut(), variable, iteration).map(DamarisWriter::Processes)
            }
        }
    }

    fn alloc_sized(
        &mut self,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<Self::Writer> {
        match &mut self.inner {
            DamarisInner::Threads(c) => {
                SimHandle::alloc_sized(c, variable, iteration, bytes).map(DamarisWriter::Threads)
            }
            DamarisInner::Processes(h) => {
                SimHandle::alloc_sized(h.as_mut(), variable, iteration, bytes)
                    .map(DamarisWriter::Processes)
            }
        }
    }

    fn commit(&mut self, writer: Self::Writer) -> DamarisResult<WriteStatus> {
        match (&mut self.inner, writer) {
            (DamarisInner::Threads(c), DamarisWriter::Threads(w)) => SimHandle::commit(c, w),
            (DamarisInner::Processes(h), DamarisWriter::Processes(w)) => {
                SimHandle::commit(h.as_mut(), w)
            }
            _ => Err(DamarisError::InvalidState(
                "writer committed through a handle of the other backend".into(),
            )),
        }
    }

    fn signal(&mut self, name: &str, iteration: u64) -> DamarisResult<()> {
        match &mut self.inner {
            DamarisInner::Threads(c) => SimHandle::signal(c, name, iteration),
            DamarisInner::Processes(h) => SimHandle::signal(h.as_mut(), name, iteration),
        }
    }

    fn end_iteration(&mut self, iteration: u64) -> DamarisResult<()> {
        match &mut self.inner {
            DamarisInner::Threads(c) => SimHandle::end_iteration(c, iteration),
            DamarisInner::Processes(h) => SimHandle::end_iteration(h.as_mut(), iteration),
        }
    }

    fn finalize(&mut self) -> DamarisResult<()> {
        if self.finalized {
            return Ok(());
        }
        match &mut self.inner {
            DamarisInner::Threads(c) => SimHandle::finalize(c),
            DamarisInner::Processes(h) => SimHandle::finalize(h.as_mut()),
        }?;
        self.finalized = true;
        Ok(())
    }

    fn stats(&self) -> ClientStats {
        match &self.inner {
            DamarisInner::Threads(c) => SimHandle::stats(c),
            DamarisInner::Processes(h) => SimHandle::stats(h.as_ref()),
        }
    }

    fn skipped_iterations(&self) -> u64 {
        match &self.inner {
            DamarisInner::Threads(c) => SimHandle::skipped_iterations(c),
            DamarisInner::Processes(h) => SimHandle::skipped_iterations(h.as_ref()),
        }
    }
}

/// World-independent outcome of a [`Damaris::launch`] session: what the
/// simulation produced and what the dedicated core saw, with identical
/// meaning over both backends (the transport-equivalence tests compare
/// these structs field by field across worlds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Each client's bytes returned from the simulation function, in
    /// client order.
    pub outputs: Vec<Vec<u8>>,
    /// Iterations the dedicated core completed (all clients, all
    /// announced blocks).
    pub iterations_completed: u64,
    /// Client-iterations the skip policy dropped.
    pub skipped_client_iterations: u64,
    /// User signals that reached the dedicated core (names without a
    /// declared `<action>` are filtered at the client edge and never
    /// counted).
    pub signals_delivered: u64,
    /// Blocks the dedicated core consumed.
    pub blocks_received: u64,
    /// Payload bytes the dedicated core consumed out of shared memory.
    pub bytes_received: u64,
    /// Order-independent digest of every block belonging to a
    /// *completed* iteration (variable, iteration, client, payload) —
    /// byte-identical data across worlds produces equal digests. Blocks
    /// of iterations that never complete (a client skips
    /// `end_iteration`) are excluded on both backends.
    pub data_digest: u64,
    /// World ranks of clients that died mid-run and were survived in
    /// degraded mode (ascending; requires the process world with
    /// `<world heartbeat_ms="…">`). Always empty for the thread world.
    /// A dead client's entry in [`SimReport::outputs`] is empty.
    pub dead_ranks: Vec<usize>,
    /// Whether the run completed in degraded mode (at least one client
    /// died and the dedicated core closed its staged iterations).
    pub degraded: bool,
}

fn encode_wire(cfg: &Configuration, input: &[u8]) -> Vec<u8> {
    let xml = cfg.to_xml();
    let mut wire = Vec::with_capacity(8 + xml.len() + input.len());
    wire.extend((xml.len() as u64).to_le_bytes());
    wire.extend(xml.as_bytes());
    wire.extend(input);
    wire
}

fn decode_wire(wire: &[u8]) -> (Configuration, &[u8]) {
    let len = u64::from_le_bytes(wire[..8].try_into().expect("wire header")) as usize;
    let xml = std::str::from_utf8(&wire[8..8 + len]).expect("wire config is utf-8");
    let cfg = Configuration::from_str(xml).expect("wire config re-parses");
    (cfg, &wire[8 + len..])
}

fn launch_threads<F>(
    cfg: Configuration,
    input: &[u8],
    plugins: &[Arc<dyn Plugin>],
    sim: F,
) -> DamarisResult<SimReport>
where
    F: Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync,
{
    let node = DamarisNode::builder().config(cfg).build()?;
    for plugin in plugins {
        node.register_plugin(plugin.clone());
    }
    let digest = Arc::new(AtomicU64::new(0));
    let d = digest.clone();
    node.register_plugin(Arc::new(FnPlugin::new("__launch-digest", move |ctx| {
        let mut sum = 0u64;
        for b in ctx.blocks {
            sum = sum.wrapping_add(block_digest(
                b.variable.index() as u64,
                b.iteration,
                b.source as u64,
                b.data.as_slice(),
            ));
        }
        d.fetch_add(sum, Ordering::Relaxed);
        Ok(())
    })));
    let sim = &sim;
    let outputs: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                scope.spawn(move || {
                    let mut h = Damaris::threads(client);
                    let out = sim(&mut h, input);
                    let _ = SimHandle::finalize(&mut h);
                    out
                })
            })
            .collect();
        // Join *every* handle before inspecting results: a short-circuit
        // on the first panic would leave later panicked handles
        // un-observed, and `thread::scope` re-raises those at scope exit —
        // escaping as a panic instead of the mapped error below.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined.into_iter().collect::<Result<_, _>>()
    })
    .map_err(|_| DamarisError::InvalidState("a simulation client thread panicked".into()))?;
    let report = node.shutdown()?;
    Ok(SimReport {
        outputs,
        iterations_completed: report.iterations_completed,
        skipped_client_iterations: report.skipped_client_iterations,
        signals_delivered: report.signals_delivered,
        blocks_received: report.blocks_received,
        bytes_received: report.bytes_received,
        data_digest: digest.load(Ordering::Relaxed),
        dead_ranks: Vec::new(),
        degraded: false,
    })
}

/// Fans every server callback out to the built-in digest, the optional
/// storage pipeline, the optional streaming tier, and any user sinks, in
/// that order.
struct FanoutSink<'a> {
    digest: &'a mut DigestSink,
    storage: Option<&'a mut StorageSink>,
    serve: Option<&'a mut ServeSink>,
    extras: &'a mut [Box<dyn ProcessSink>],
}

impl ProcessSink for FanoutSink<'_> {
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]) {
        self.digest.on_block(var, iteration, source, data);
        if let Some(s) = self.storage.as_mut() {
            s.on_block(var, iteration, source, data);
        }
        if let Some(s) = self.serve.as_mut() {
            s.on_block(var, iteration, source, data);
        }
        for e in self.extras.iter_mut() {
            e.on_block(var, iteration, source, data);
        }
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        self.digest.on_iteration_complete(iteration);
        if let Some(s) = self.storage.as_mut() {
            s.on_iteration_complete(iteration);
        }
        if let Some(s) = self.serve.as_mut() {
            s.on_iteration_complete(iteration);
        }
        for e in self.extras.iter_mut() {
            e.on_iteration_complete(iteration);
        }
    }

    fn on_signal(&mut self, event: damaris_xml::EventId, iteration: u64, source: usize) {
        self.digest.on_signal(event, iteration, source);
        if let Some(s) = self.storage.as_mut() {
            s.on_signal(event, iteration, source);
        }
        if let Some(s) = self.serve.as_mut() {
            s.on_signal(event, iteration, source);
        }
        for e in self.extras.iter_mut() {
            e.on_signal(event, iteration, source);
        }
    }
}

fn launch_processes<F>(
    cfg: Configuration,
    program: &str,
    input: &[u8],
    test_harness: bool,
    sinks: &[SinkFactory],
    sim: F,
) -> DamarisResult<SimReport>
where
    F: Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync,
{
    let size = cfg.architecture.clients + 1;
    let wire = encode_wire(&cfg, input);
    let rank_program = |comm: &mut mini_mpi::Comm, wire: &[u8]| -> Vec<u8> {
        // All rank behaviour derives from the wire bytes: in a
        // re-executed child the surrounding scope's captures (cfg,
        // input) may belong to a *different* invocation of the caller.
        // (The sink factories are safe to use: the child re-executes the
        // same call site, reconstructing an identical `Launcher`.)
        let (cfg, input) = decode_wire(wire);
        let dir = World::spawn_dir().expect("rank runs inside a spawned world");
        if comm.rank() == DEDICATED_RANK {
            // A declared <store> wires the storage pipeline onto the
            // dedicated core, exactly like the thread world's
            // auto-registered StoragePlugin (node id 0; files land in
            // the spawn dir unless <store path> says otherwise).
            let mut storage = if cfg.architecture.store.is_some() {
                Some(StorageSink::new(&cfg, 0, &dir).expect("storage pipeline starts"))
            } else {
                None
            };
            // A declared <serve> runs the streaming tier on the dedicated
            // rank, mirroring the thread world's ServePlugin.
            let mut serve = if cfg.architecture.serve.is_some() {
                Some(ServeSink::new(&cfg, &dir).expect("streaming tier starts"))
            } else {
                None
            };
            let server = ProcessServer::new(comm, cfg, &dir).expect("dedicated core starts");
            let mut sink = DigestSink::default();
            let mut extras: Vec<Box<dyn ProcessSink>> = sinks.iter().map(|f| f()).collect();
            let mut fanout = FanoutSink {
                digest: &mut sink,
                storage: storage.as_mut(),
                serve: serve.as_mut(),
                extras: &mut extras,
            };
            let report = server
                .serve(comm, &mut fanout)
                .expect("dedicated core serves");
            if let Some(mut s) = storage {
                s.finish().expect("storage pipeline finishes");
                assert!(
                    s.errors().is_empty(),
                    "storage pipeline errors: {:?}",
                    s.errors()
                );
            }
            if let Some(mut s) = serve {
                s.finish();
            }
            let mut words = vec![
                report.iterations_completed,
                report.skipped_client_iterations,
                report.signals_delivered,
                report.blocks_received,
                report.bytes_received,
                sink.digest(),
                report.dead_ranks.len() as u64,
            ];
            words.extend(report.dead_ranks.iter().map(|&r| r as u64));
            words.iter().flat_map(|w| w.to_le_bytes()).collect()
        } else {
            let handle = ProcessHandle::new(comm, cfg, &dir).expect("client joins the node");
            let mut h = Damaris::processes(handle);
            let out = sim(&mut h, input);
            let _ = SimHandle::finalize(&mut h);
            out
        }
    };
    // Seed-list rendezvous and the heartbeat mesh come straight from the
    // configuration (`<world seeds="…" heartbeat_ms="…"/>`).
    let opts = mini_mpi::SpawnOptions {
        harness_args: test_harness,
        seeds: cfg.architecture.seeds.clone(),
        heartbeat_ms: cfg.architecture.heartbeat_ms.unwrap_or(0),
        heartbeat_timeout_ms: cfg.architecture.heartbeat_timeout_ms.unwrap_or(10_000),
        ..mini_mpi::SpawnOptions::default()
    };
    let outcome = World::run_spawned_outcome(size, program, &wire, opts, rank_program)
        .map_err(|e| DamarisError::InvalidState(format!("process world failed: {e}")))?;
    let mut results = outcome.results;
    let server = results.remove(DEDICATED_RANK).ok_or_else(|| {
        DamarisError::InvalidState(format!(
            "process world failed: dedicated core died ({})",
            outcome.failures.join("; ")
        ))
    })?;
    let words: Vec<u64> = server
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    if words.len() < 7 || words.len() != 7 + words[6] as usize {
        return Err(DamarisError::InvalidState(
            "malformed dedicated-core report".into(),
        ));
    }
    let [iterations_completed, skipped_client_iterations, signals_delivered, blocks_received, bytes_received, data_digest, _dead_count] =
        words[..7]
    else {
        unreachable!("length checked above");
    };
    let dead_ranks: Vec<usize> = words[7..].iter().map(|&w| w as usize).collect();
    // A failed rank is tolerable only when the dedicated core itself
    // declared it dead and finished degraded; anything else (a client
    // that panicked but said goodbye, a failure the server never saw)
    // still fails the launch.
    let unexplained: Vec<&String> = outcome
        .failures
        .iter()
        .filter(|line| {
            !dead_ranks
                .iter()
                .any(|r| line.starts_with(&format!("rank {r}:")))
        })
        .collect();
    if !unexplained.is_empty() {
        return Err(DamarisError::InvalidState(format!(
            "process world failed: {}",
            unexplained
                .into_iter()
                .cloned()
                .collect::<Vec<_>>()
                .join("; ")
        )));
    }
    // Dead clients have no output; keep client order with empty slots.
    let outputs: Vec<Vec<u8>> = results.into_iter().map(Option::unwrap_or_default).collect();
    Ok(SimReport {
        outputs,
        iterations_completed,
        skipped_client_iterations,
        signals_delivered,
        blocks_received,
        bytes_received,
        data_digest,
        degraded: !dead_ranks.is_empty(),
        dead_ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = r#"
      <simulation name="facade-test">
        <architecture>
          <dedicated cores="1"/>
          <clients count="2"/>
          <buffer size="262144"/>
          <queue capacity="64"/>
        </architecture>
        <data>
          <layout name="row" type="f64" dimensions="64"/>
          <variable name="u" layout="row"/>
        </data>
        <actions>
          <action name="snap" plugin="stats" event="take-snapshot"/>
        </actions>
      </simulation>"#;

    #[test]
    fn resolve_var_rejects_undeclared_names() {
        let cfg = Configuration::from_str(XML).unwrap();
        assert!(resolve_var(&cfg, "u").is_ok());
        let err = resolve_var(&cfg, "ghost").unwrap_err();
        assert!(matches!(err, DamarisError::UnknownVariable(ref v) if v == "ghost"));
    }

    #[test]
    fn check_layout_rejects_wrong_byte_counts() {
        let cfg = Configuration::from_str(XML).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        assert!(check_layout(&cfg, u, 64 * 8).is_ok());
        let err = check_layout(&cfg, u, 24).unwrap_err();
        match err {
            DamarisError::LayoutMismatch {
                variable,
                expected,
                got,
            } => {
                assert_eq!(variable, "u");
                assert_eq!(expected, 512);
                assert_eq!(got, 24);
            }
            other => panic!("expected LayoutMismatch, got {other}"),
        }
    }

    #[test]
    fn check_layout_dynamic_accepts_caller_extents() {
        let xml = r#"
          <simulation name="amr">
            <architecture><buffer size="1048576" allocator="buddy"/></architecture>
            <data>
              <layout name="patch" type="f64" dimensions="dynamic" max_size="8192"/>
              <layout name="free" type="f32" dimensions="dynamic"/>
              <variable name="density" layout="patch"/>
              <variable name="tracer" layout="free"/>
            </data>
          </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        let density = cfg.registry().var_id("density").unwrap();
        let tracer = cfg.registry().var_id("tracer").unwrap();
        // Any whole-element size within the bound passes.
        assert!(check_layout(&cfg, density, 8).is_ok());
        assert!(check_layout(&cfg, density, 8192).is_ok());
        assert!(check_layout(&cfg, tracer, 4 * 12345).is_ok());
        // Zero, fractional elements and over-max are all layout errors.
        for bad in [0usize, 12, 8200] {
            match check_layout(&cfg, density, bad) {
                Err(DamarisError::LayoutMismatch { variable, got, .. }) => {
                    assert_eq!(variable, "density");
                    assert_eq!(got, bad);
                }
                other => panic!("size {bad}: expected LayoutMismatch, got {other:?}"),
            }
        }
        assert!(check_layout(&cfg, tracer, 6).is_err(), "not whole f32s");
    }

    #[test]
    fn block_digest_is_order_independent_by_sum_and_content_sensitive() {
        let a = block_digest(0, 1, 0, &[1, 2, 3]);
        let b = block_digest(1, 1, 1, &[4, 5, 6]);
        assert_eq!(
            a.wrapping_add(b),
            b.wrapping_add(a),
            "wrapping sum commutes"
        );
        assert_ne!(a, block_digest(0, 1, 0, &[1, 2, 4]), "payload matters");
        assert_ne!(a, block_digest(0, 2, 0, &[1, 2, 3]), "iteration matters");
        assert_ne!(a, block_digest(0, 1, 1, &[1, 2, 3]), "client matters");
    }

    #[test]
    fn wire_roundtrips_config_and_input() {
        let cfg = Configuration::from_str(XML).unwrap();
        let wire = encode_wire(&cfg, &[7, 8, 9]);
        let (back, input) = decode_wire(&wire);
        assert_eq!(back, cfg);
        assert_eq!(input, &[7, 8, 9]);
    }

    #[test]
    fn launch_runs_a_threads_world_from_the_config_alone() {
        let cfg = Configuration::from_str(XML).unwrap();
        let report = Damaris::launch(cfg, "unused-for-threads", &[3], |h, input| {
            let iterations = u64::from(input[0]);
            let data = vec![h.id() as f64 + 1.0; 64];
            for it in 0..iterations {
                assert_eq!(h.write("u", it, &data).unwrap(), WriteStatus::Written);
                h.signal("take-snapshot", it).unwrap();
                h.signal("undeclared-event", it).unwrap();
                h.end_iteration(it).unwrap();
            }
            h.finalize().unwrap();
            h.stats().writes.to_le_bytes().to_vec()
        })
        .unwrap();
        assert_eq!(report.iterations_completed, 3);
        assert_eq!(report.outputs.len(), 2, "<clients count=\"2\"/> clients");
        for out in &report.outputs {
            assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 3);
        }
        assert_eq!(report.blocks_received, 6);
        assert_eq!(report.bytes_received, 6 * 512);
        assert_eq!(
            report.signals_delivered, 6,
            "undeclared names filtered at the edge"
        );
        assert_ne!(report.data_digest, 0);
    }

    #[test]
    fn mismatched_writer_is_rejected() {
        let cfg = Configuration::from_str(XML).unwrap();
        let node = DamarisNode::builder().config(cfg).build().unwrap();
        let mut a = Damaris::threads(node.client(0).unwrap());
        let mut b = Damaris::threads(node.client(1).unwrap());
        let mut w = SimHandle::alloc(&mut a, "u", 0).unwrap();
        w.fill_pod(&[1.0f64; 64]);
        // Same backend, different handle: committing through another
        // *threads* handle is fine (the writer carries its own client) —
        // the mismatch arm guards cross-backend confusion, which we can
        // only provoke cheaply by committing a skipped process writer.
        assert_eq!(SimHandle::commit(&mut b, w).unwrap(), WriteStatus::Written);
        for c in node.clients() {
            c.finalize().unwrap();
        }
        node.shutdown().unwrap();
    }
}
