//! # damaris-core
//!
//! The **Damaris middleware**: dedicated-core I/O and data management for
//! multicore SMP nodes, as described in *"Efficient I/O using Dedicated
//! Cores in Large-Scale HPC Simulations"* (M. Dorier, IPDPS 2013 PhD Forum)
//! and the underlying IEEE Cluster 2012 paper.
//!
//! ## The approach
//!
//! > "Its main idea consists of dedicating one or a few cores to I/O and
//! > data processing tasks in each SMP node. These cores do not run the
//! > simulation's code, but handle asynchronous I/O operations on behalf of
//! > the other cores, which in turn hides the performance impact of these
//! > operations." (§III)
//!
//! Concretely, per node:
//!
//! * compute cores hold a [`client::DamarisClient`]; a *write* is one memcpy
//!   into the node's shared-memory segment plus one event post — ~0.1 s for
//!   typical per-core output, independent of scale (§IV.B);
//! * events travel over a pluggable **transport**
//!   ([`damaris_shm::EventChannel`]), selected by the XML
//!   `<queue kind="mutex|sharded">` attribute (or
//!   [`node::NodeBuilder::transport`]): `mutex` is the classic bounded
//!   MPMC queue, `sharded` gives every client its own lock-free SPSC ring
//!   drained by work-stealing dedicated cores, keeping the post cost flat
//!   as clients scale;
//! * one or a few dedicated cores run [`server::server_loop`] event loops
//!   over their transport consumer handle: they index incoming blocks in a
//!   [`store::VariableStore`], detect iteration completion, and fire user
//!   [`plugins`] (HDF5 output, compression, statistics, in-situ analysis)
//!   — all overlapped with the simulation's next compute phase;
//! * when plugins cannot keep up and memory pressure rises, the
//!   [`policy::SkipPolicy`] drops whole iterations instead of blocking the
//!   simulation (§V.C.1);
//! * [`sched`] provides the I/O scheduling strategies that lift aggregate
//!   throughput from 10 GB/s to 12.7 GB/s (§IV.D);
//! * [`baseline`] implements the two state-of-the-art approaches Damaris is
//!   evaluated against — file-per-process and collective (two-phase) I/O —
//!   over `mini-mpi` and `h5lite`.
//!
//! Everything is configured from the external XML description of the data
//! ([`damaris_xml::schema::Configuration`]), so instrumenting a simulation
//! takes one line per variable (§V.C.2).
//!
//! ## One API over two worlds
//!
//! The middleware runs in two realizations of the paper's architecture —
//! dedicated cores as **threads** of the simulation process
//! ([`DamarisNode`]) or as separate OS **processes** over sockets and a
//! file-backed segment ([`process`]) — and both sit behind one facade:
//! the [`facade::SimHandle`] trait and the enum-dispatched
//! [`facade::Damaris`] handle. Simulation code is written exactly once
//! (`fn simulate<H: SimHandle>(h: &mut H)`) and
//! [`facade::Damaris::launch`] stands up whichever world the XML
//! `<world kind="threads|processes"/>` names.
//!
//! ## Quickstart
//!
//! ```
//! use damaris_core::prelude::*;
//!
//! let xml = r#"
//!   <simulation name="demo">
//!     <architecture>
//!       <dedicated cores="1"/>
//!       <clients count="2"/>
//!       <buffer size="1048576"/>
//!       <queue capacity="64"/>
//!       <world kind="threads"/>
//!     </architecture>
//!     <data>
//!       <layout name="row" type="f64" dimensions="128"/>
//!       <variable name="temperature" layout="row"/>
//!     </data>
//!   </simulation>"#;
//!
//! let cfg = Configuration::from_str(xml).unwrap();
//! let report = Damaris::launch(cfg, "demo", &[], |h, _input| {
//!     let field = vec![300.0_f64; 128];
//!     for it in 0..3 {
//!         h.write("temperature", it, &field).unwrap();
//!         h.end_iteration(it).unwrap();
//!     }
//!     h.finalize().unwrap();
//!     Vec::new()
//! })
//! .unwrap();
//! assert_eq!(report.iterations_completed, 3);
//! assert_eq!(report.blocks_received, 6);
//! // Flip <world kind> to "processes" and the same closure runs with one
//! // OS process per rank. For custom plugins or finer control, embed the
//! // node directly (see `DamarisNode::builder`) and wrap its clients in
//! // `Damaris::threads`.
//! ```

pub mod baseline;
pub mod client;
pub mod error;
pub mod event;
pub mod facade;
pub mod node;
pub mod plugins;
pub mod policy;
pub mod process;
pub mod sched;
pub mod server;
pub mod store;

pub use client::{DamarisClient, WriteStatus};
pub use error::{DamarisError, DamarisResult};
pub use facade::{Damaris, DamarisWriter, Launcher, SimHandle, SimReport, SimWriter};
pub use node::{DamarisNode, NodeBuilder};
pub use plugins::{
    Plugin, ServePlugin, ServeSink, StorageEngine, StoragePlugin, StorageSink, StorageStats,
};
pub use process::{ProcessClient, ProcessHandle, ProcessServer, ProcessSink};

/// One-stop imports for applications embedding Damaris.
pub mod prelude {
    pub use crate::client::{ClientStats, DamarisClient, WriteStatus};
    pub use crate::error::{DamarisError, DamarisResult};
    pub use crate::facade::{Damaris, DamarisWriter, Launcher, SimHandle, SimReport, SimWriter};
    pub use crate::node::{DamarisNode, NodeBuilder};
    pub use crate::plugins::{
        FnPlugin, Plugin, ServePlugin, ServeSink, StatsPlugin, StorageEngine, StoragePlugin,
        StorageSink, StorageStats,
    };
    pub use crate::process::{ProcessClient, ProcessHandle, ProcessServer, ProcessSink, StatsSink};
    pub use damaris_xml::schema::Configuration;
    pub use damaris_xml::{EventId, VarId};
}
