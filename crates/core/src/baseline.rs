//! The two state-of-the-art I/O approaches Damaris is evaluated against
//! (paper §II), implemented over `mini-mpi` + `h5lite` so laptop-scale
//! comparisons run for real.
//!
//! * **File-per-process** — every rank writes its own file. No
//!   synchronization, but one file per rank per dump ("a huge amount of
//!   files that are simply impossible to post-process") and one metadata
//!   operation per rank hammering the MDS.
//! * **Collective (two-phase) I/O** — ranks exchange data so that a small
//!   set of aggregators writes large contiguous regions of one shared file
//!   (Thakur et al.'s two-phase scheme, as in ROMIO/pHDF5). Costs heavy
//!   inter-process communication; produces one convenient shared file.

use std::path::Path;

use h5lite::{Dtype, FileWriter};
use mini_mpi::{Comm, Source};

use crate::error::{DamarisError, DamarisResult};

/// One variable to dump: `(name, values)` — `f64` grids, as CM1 produces.
pub type VarSlice<'a> = (&'a str, &'a [f64]);

/// Outcome of a baseline dump on one rank.
#[derive(Debug, Clone, Default)]
pub struct DumpReport {
    /// Seconds this rank spent blocked in the dump call.
    pub seconds: f64,
    /// Bytes of simulation data this rank contributed.
    pub payload_bytes: u64,
    /// Bytes this rank moved over the network for aggregation.
    pub comm_bytes: u64,
    /// Files this rank created.
    pub files_created: usize,
}

/// File-per-process dump: rank `r` writes
/// `{dir}/{sim}_rank{r:05}_it{iteration:06}.dh5` containing its variables.
pub fn file_per_process(
    comm: &Comm,
    dir: &Path,
    sim: &str,
    iteration: u64,
    vars: &[VarSlice<'_>],
) -> DamarisResult<DumpReport> {
    let t0 = std::time::Instant::now();
    std::fs::create_dir_all(dir).map_err(h5lite::H5Error::from)?;
    let path = dir.join(format!("{sim}_rank{:05}_it{iteration:06}.dh5", comm.rank()));
    let mut w = FileWriter::create(&path)?;
    let mut payload = 0u64;
    for (name, values) in vars {
        w.dataset(name, Dtype::F64, &[values.len() as u64])?
            .write_pod(values)?;
        payload += (values.len() * 8) as u64;
    }
    w.set_attr("", "iteration", iteration as i64)?;
    w.set_attr("", "rank", comm.rank() as i64)?;
    w.finish()?;
    Ok(DumpReport {
        seconds: t0.elapsed().as_secs_f64(),
        payload_bytes: payload,
        comm_bytes: 0,
        files_created: 1,
    })
}

/// Collective two-phase dump into one shared file per iteration.
///
/// Phase 1: every rank ships its variables to its aggregator (ranks
/// `0, A, 2A, …` where `A = size / aggregators`). Phase 2: aggregators
/// forward their aggregated region to rank 0, which writes the single
/// shared file `{dir}/{sim}_shared_it{iteration:06}.dh5` with one dataset
/// per (variable, rank).
///
/// The communication volume matches real two-phase I/O (every byte moves
/// at least once); the final single-writer step stands in for the
/// shared-file extent writes that `h5lite`'s write-once format cannot
/// express — the *performance* of concurrent shared-file writes is modeled
/// by `pfs-sim`/`cluster-sim`, while this function provides bit-exact
/// output for correctness comparisons.
pub fn collective(
    comm: &Comm,
    dir: &Path,
    sim: &str,
    iteration: u64,
    vars: &[VarSlice<'_>],
    aggregators: usize,
) -> DamarisResult<DumpReport> {
    let t0 = std::time::Instant::now();
    let size = comm.size();
    let aggregators = aggregators.clamp(1, size);
    let group = size.div_ceil(aggregators);
    let my_aggregator = (comm.rank() / group) * group;
    let payload: u64 = vars.iter().map(|(_, v)| (v.len() * 8) as u64).sum();

    const TAG_DATA: u32 = 0xD0;
    const TAG_META: u32 = 0xD1;

    // ---- Phase 1: ship data to the aggregator ----
    let flat: Vec<f64> = vars.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    let lens: Vec<u64> = vars.iter().map(|(_, v)| v.len() as u64).collect();
    let mut comm_bytes = 0u64;
    let mut files_created = 0usize;

    if comm.rank() != my_aggregator {
        comm.send(my_aggregator, TAG_META, &lens);
        comm.send(my_aggregator, TAG_DATA, &flat);
        comm_bytes += (flat.len() * 8) as u64;
        // Wait for the completion broadcast below.
    }

    // Aggregators collect their group's data (rank order within group).
    let mut group_data: Vec<(usize, Vec<u64>, Vec<f64>)> = Vec::new();
    if comm.rank() == my_aggregator {
        group_data.push((comm.rank(), lens.clone(), flat.clone()));
        let group_end = (my_aggregator + group).min(size);
        for r in (my_aggregator + 1)..group_end {
            let l: Vec<u64> = comm.recv(Source::Rank(r), TAG_META);
            let d: Vec<f64> = comm.recv(Source::Rank(r), TAG_DATA);
            group_data.push((r, l, d));
        }
        // ---- Phase 2: forward to the writer (rank 0) ----
        if comm.rank() != 0 {
            for (r, l, d) in &group_data {
                comm.send(0, TAG_META, &[*r as u64]);
                comm.send(0, TAG_META, l);
                comm.send(0, TAG_DATA, d);
                comm_bytes += (d.len() * 8) as u64;
            }
            comm.send(0, TAG_META, &[u64::MAX]); // end-of-group marker
        }
    }

    if comm.rank() == 0 {
        std::fs::create_dir_all(dir).map_err(h5lite::H5Error::from)?;
        let path = dir.join(format!("{sim}_shared_it{iteration:06}.dh5"));
        let mut w = FileWriter::create(&path)?;
        let write_rank =
            |rank: usize, lens: &[u64], data: &[f64], w: &mut FileWriter<_>| -> DamarisResult<()> {
                let mut offset = 0usize;
                for ((name, _), &len) in vars.iter().zip(lens) {
                    let len = len as usize;
                    w.dataset(&format!("{name}/rank{rank}"), Dtype::F64, &[len as u64])?
                        .write_pod(&data[offset..offset + len])?;
                    offset += len;
                }
                Ok(())
            };
        // Own group first.
        for (r, l, d) in &group_data {
            write_rank(*r, l, d, &mut w)?;
        }
        // Then every other aggregator's group.
        let n_other_aggregators = (0..size).step_by(group).filter(|&a| a != 0).count();
        for _ in 0..n_other_aggregators {
            loop {
                let head: Vec<u64> = comm.recv(Source::Any, TAG_META);
                if head[0] == u64::MAX {
                    break;
                }
                let rank = head[0] as usize;
                let l: Vec<u64> = comm.recv(Source::Rank(aggregator_of(rank, group)), TAG_META);
                let d: Vec<f64> = comm.recv(Source::Rank(aggregator_of(rank, group)), TAG_DATA);
                write_rank(rank, &l, &d, &mut w)?;
            }
        }
        w.set_attr("", "iteration", iteration as i64)?;
        w.finish()?;
        files_created = 1;
    }

    // Everyone leaves together, as MPI_File_write_all would enforce.
    comm.barrier();
    Ok(DumpReport {
        seconds: t0.elapsed().as_secs_f64(),
        payload_bytes: payload,
        comm_bytes,
        files_created,
    })
}

fn aggregator_of(rank: usize, group: usize) -> usize {
    (rank / group) * group
}

/// Map a `DamarisError` from baseline helpers (exists so callers can use
/// `?` uniformly).
impl From<std::convert::Infallible> for DamarisError {
    fn from(x: std::convert::Infallible) -> Self {
        match x {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_mpi::World;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("damaris-base-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_per_process_writes_one_file_each() {
        let dir = tmpdir("fpp");
        let d2 = dir.clone();
        let reports = World::run(4, move |comm| {
            let data: Vec<f64> = (0..32).map(|i| (comm.rank() * 100 + i) as f64).collect();
            file_per_process(comm, &d2, "t", 3, &[("u", &data)]).unwrap()
        });
        assert!(reports.iter().all(|r| r.files_created == 1));
        assert!(reports.iter().all(|r| r.comm_bytes == 0));
        // Verify the files exist and hold the right data.
        for rank in 0..4 {
            let path = dir.join(format!("t_rank{rank:05}_it000003.dh5"));
            let mut r = h5lite::FileReader::open(&path).unwrap();
            let u = r.read_pod::<f64>("u").unwrap();
            assert_eq!(u[0], (rank * 100) as f64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collective_produces_single_shared_file() {
        let dir = tmpdir("coll");
        let d2 = dir.clone();
        let reports = World::run(6, move |comm| {
            let data: Vec<f64> = vec![comm.rank() as f64; 16];
            collective(comm, &d2, "t", 0, &[("u", &data)], 3).unwrap()
        });
        assert_eq!(reports.iter().map(|r| r.files_created).sum::<usize>(), 1);
        // Non-root ranks moved their data at least once.
        assert!(reports[1].comm_bytes >= 16 * 8);
        let path = dir.join("t_shared_it000000.dh5");
        let mut r = h5lite::FileReader::open(&path).unwrap();
        for rank in 0..6 {
            let u = r.read_pod::<f64>(&format!("u/rank{rank}")).unwrap();
            assert_eq!(u, vec![rank as f64; 16], "rank {rank} data intact");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collective_matches_fpp_content() {
        // The two baselines must persist identical values.
        let dir = tmpdir("match");
        let d2 = dir.clone();
        World::run(4, move |comm| {
            let data: Vec<f64> = (0..8)
                .map(|i| (comm.rank() as f64) * 1.5 + i as f64)
                .collect();
            file_per_process(comm, &d2.join("fpp"), "t", 0, &[("u", &data)]).unwrap();
            collective(comm, &d2.join("coll"), "t", 0, &[("u", &data)], 2).unwrap();
        });
        let mut shared = h5lite::FileReader::open(dir.join("coll/t_shared_it000000.dh5")).unwrap();
        for rank in 0..4 {
            let mut own =
                h5lite::FileReader::open(dir.join(format!("fpp/t_rank{rank:05}_it000000.dh5")))
                    .unwrap();
            assert_eq!(
                own.read_pod::<f64>("u").unwrap(),
                shared.read_pod::<f64>(&format!("u/rank{rank}")).unwrap()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_rank_collective_degenerates() {
        let dir = tmpdir("single");
        let d2 = dir.clone();
        let reports = World::run(1, move |comm| {
            let data = vec![7.0f64; 4];
            collective(comm, &d2, "t", 1, &[("u", &data)], 4).unwrap()
        });
        assert_eq!(reports[0].files_created, 1);
        assert_eq!(reports[0].comm_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_variables_roundtrip() {
        let dir = tmpdir("vars");
        let d2 = dir.clone();
        World::run(2, move |comm| {
            let u = vec![comm.rank() as f64; 4];
            let v = vec![comm.rank() as f64 + 10.0; 6];
            collective(comm, &d2, "t", 0, &[("u", &u), ("v", &v)], 1).unwrap();
        });
        let mut r = h5lite::FileReader::open(dir.join("t_shared_it000000.dh5")).unwrap();
        assert_eq!(r.read_pod::<f64>("v/rank1").unwrap(), vec![11.0; 6]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
