//! Events flowing through the shared message queue.
//!
//! Paper §III.B: "A shared message queue is used for the simulation
//! processes to send events to the dedicated cores. These events activate
//! the user-provided plugins. The message queue is also used for sending
//! events that inform dedicated cores of the state of the simulation."
//!
//! Events carry interned [`VarId`]/[`EventId`] handles instead of strings:
//! posting one is a plain move of `Copy` metadata plus a [`BlockRef`]
//! handle — no heap allocation, nothing for the dedicated core to
//! re-compare byte by byte.

use damaris_shm::BlockRef;
use damaris_xml::{EventId, VarId};

/// A message from a simulation core to the dedicated cores.
#[derive(Debug, Clone)]
pub enum Event {
    /// A variable block was published into shared memory.
    ///
    /// Carries the block's metadata — "blocks are identified by metadata
    /// including a block identifier, the writer's process identifier
    /// (usually its MPI rank), and the associated time step" (§III.B) —
    /// plus the zero-copy handle to the data itself.
    Write {
        /// Interned variable id (resolved from the configuration at the
        /// client edge).
        variable: VarId,
        /// Simulation time step the block belongs to.
        iteration: u64,
        /// Writer's client id (rank within the node).
        source: usize,
        /// The frozen shared-memory block.
        block: BlockRef,
    },
    /// A client finished iteration `iteration`, having successfully
    /// published `writes` blocks for it (0 if the iteration was skipped
    /// under memory pressure).
    EndIteration {
        /// Writer's client id.
        source: usize,
        /// The completed time step.
        iteration: u64,
        /// Blocks this client published for the step.
        writes: u64,
        /// Whether the skip policy dropped this client's data for the step.
        skipped: bool,
    },
    /// A user-defined event (fires [`damaris_xml::schema::Trigger::Event`]
    /// actions).
    Signal {
        /// Interned id of the event name referenced by
        /// `<action event="…">`. Names no action declares are filtered at
        /// the client edge (they could fire nothing).
        event: EventId,
        /// Emitting client id.
        source: usize,
        /// Iteration during which the signal was raised.
        iteration: u64,
    },
    /// The client will send nothing further.
    ClientFinalize {
        /// Finalizing client id.
        source: usize,
    },
}

impl Event {
    /// The client that emitted this event.
    pub fn source(&self) -> usize {
        match self {
            Event::Write { source, .. }
            | Event::EndIteration { source, .. }
            | Event::Signal { source, .. }
            | Event::ClientFinalize { source } => *source,
        }
    }

    /// Short kind tag for logging/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Write { .. } => "write",
            Event::EndIteration { .. } => "end-iteration",
            Event::Signal { .. } => "signal",
            Event::ClientFinalize { .. } => "finalize",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_shm::SharedSegment;

    #[test]
    fn accessors() {
        let seg = SharedSegment::new(1024).unwrap();
        let mut b = seg.allocate(8).unwrap();
        b.write_pod(&[1.0f64]);
        let ev = Event::Write {
            variable: VarId::from_raw(0),
            iteration: 3,
            source: 2,
            block: b.freeze(),
        };
        assert_eq!(ev.source(), 2);
        assert_eq!(ev.kind(), "write");
        assert_eq!(Event::ClientFinalize { source: 7 }.source(), 7);
        assert_eq!(
            Event::Signal {
                event: EventId::from_raw(0),
                source: 1,
                iteration: 0
            }
            .kind(),
            "signal"
        );
    }
}
