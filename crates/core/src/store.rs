//! The block index on the dedicated-core side.
//!
//! Paper §III.B: "All data blocks are indexed in a metadata structure that
//! helps searching for particular blocks from data management services."
//!
//! The index is one ordered map keyed by `(iteration, variable, source,
//! seq)`: per-variable queries are range scans that come back already
//! ordered by writer rank (no filter + sort per query), point lookups are
//! O(log n), and an iteration's blocks can be split off wholesale when it
//! completes.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use damaris_shm::BlockRef;
use damaris_xml::VarId;

/// One indexed block: who wrote which variable at which step.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Interned variable id.
    pub variable: VarId,
    /// Writing client id (rank within the node).
    pub source: usize,
    /// Simulation time step.
    pub iteration: u64,
    /// Zero-copy handle into the shared segment.
    pub data: BlockRef,
}

/// `(iteration, variable, source, seq)` — `seq` distinguishes repeated
/// writes of the same variable by the same client within one iteration.
type BlockKey = (u64, u32, usize, u32);

/// Index of live blocks, ordered by `(iteration, variable, source)`.
///
/// Blocks hold [`BlockRef`]s, so removing an iteration releases its shared
/// memory once plugins drop their own references — this is the garbage
/// collection that keeps the segment from filling under steady state.
#[derive(Debug, Default)]
pub struct VariableStore {
    by_key: BTreeMap<BlockKey, StoredBlock>,
    /// Blocks per iteration (kept incrementally so completion checks are
    /// O(log iterations)).
    counts: BTreeMap<u64, usize>,
    /// Iterations marked complete and still held for snapshot catch-up
    /// (the serving tier's late joiners read these); bounded by the
    /// retain window passed to [`VariableStore::gc_completed`].
    completed: BTreeSet<u64>,
}

fn iter_range(iteration: u64) -> (Bound<BlockKey>, Bound<BlockKey>) {
    (
        Bound::Included((iteration, 0, 0, 0)),
        Bound::Included((iteration, u32::MAX, usize::MAX, u32::MAX)),
    )
}

fn var_range(iteration: u64, variable: VarId) -> (Bound<BlockKey>, Bound<BlockKey>) {
    (
        Bound::Included((iteration, variable.raw(), 0, 0)),
        Bound::Included((iteration, variable.raw(), usize::MAX, u32::MAX)),
    )
}

impl VariableStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a block.
    pub fn insert(&mut self, block: StoredBlock) {
        let lo = (block.iteration, block.variable.raw(), block.source, 0);
        let hi = (
            block.iteration,
            block.variable.raw(),
            block.source,
            u32::MAX,
        );
        // Repeated writes of the same (iteration, variable, source) get
        // increasing seq numbers so none is silently replaced.
        let seq = self
            .by_key
            .range((Bound::Included(lo), Bound::Included(hi)))
            .next_back()
            .map(|(&(_, _, _, s), _)| s + 1)
            .unwrap_or(0);
        *self.counts.entry(block.iteration).or_insert(0) += 1;
        self.by_key.insert(
            (block.iteration, block.variable.raw(), block.source, seq),
            block,
        );
    }

    /// All blocks of an iteration (any variable, any source), ordered by
    /// `(variable, source)`.
    pub fn iteration_blocks(&self, iteration: u64) -> impl Iterator<Item = &StoredBlock> {
        self.by_key.range(iter_range(iteration)).map(|(_, b)| b)
    }

    /// Blocks of one variable at one iteration, ordered by source — a
    /// range scan of the ordered index, no per-query filtering or sorting.
    pub fn variable_blocks(&self, variable: VarId, iteration: u64) -> Vec<&StoredBlock> {
        self.by_key
            .range(var_range(iteration, variable))
            .map(|(_, b)| b)
            .collect()
    }

    /// Search a specific block (paper: "searching for particular blocks").
    pub fn find(&self, variable: VarId, iteration: u64, source: usize) -> Option<&StoredBlock> {
        let lo = (iteration, variable.raw(), source, 0);
        let hi = (iteration, variable.raw(), source, u32::MAX);
        self.by_key
            .range((Bound::Included(lo), Bound::Included(hi)))
            .map(|(_, b)| b)
            .next()
    }

    /// Number of blocks held for an iteration — O(log iterations).
    pub fn count(&self, iteration: u64) -> usize {
        self.counts.get(&iteration).copied().unwrap_or(0)
    }

    /// Total live blocks across iterations.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterations currently holding data, ascending.
    pub fn iterations(&self) -> Vec<u64> {
        self.counts.keys().copied().collect()
    }

    /// Mark an iteration complete (every expected block indexed). The
    /// blocks stay in the store until [`VariableStore::gc_completed`]
    /// rotates them out of the retain window.
    pub fn mark_complete(&mut self, iteration: u64) {
        self.completed.insert(iteration);
    }

    /// Highest iteration marked complete, if any. This is what a late
    /// subscriber catches up from — callers no longer need to know the
    /// iteration id out of band.
    pub fn latest_complete_iteration(&self) -> Option<u64> {
        self.completed.iter().next_back().copied()
    }

    /// Snapshot of one iteration: cloned blocks ordered by `(variable,
    /// source)` — one range scan of the ordered index. Clones hold
    /// [`BlockRef`]s, so the snapshot stays readable even if the store
    /// GCs the iteration afterwards.
    pub fn snapshot(&self, iteration: u64) -> Vec<StoredBlock> {
        self.by_key
            .range(iter_range(iteration))
            .map(|(_, b)| b.clone())
            .collect()
    }

    /// Snapshot of the most recent completed iteration (see
    /// [`VariableStore::snapshot`]); `None` before the first completion.
    pub fn latest_snapshot(&self) -> Option<(u64, Vec<StoredBlock>)> {
        let it = self.latest_complete_iteration()?;
        Some((it, self.snapshot(it)))
    }

    /// Garbage-collect completed iterations beyond the retain window:
    /// keep the newest `retain` completed iterations, drop the rest.
    /// Returns the dropped blocks so callers can release them outside
    /// any lock. `retain == 0` reclaims every completed iteration
    /// immediately (the no-serving default).
    pub fn gc_completed(&mut self, retain: usize) -> Vec<StoredBlock> {
        let mut dropped = Vec::new();
        while self.completed.len() > retain {
            // `completed` is ordered, so the first entry is the oldest.
            let oldest = *self.completed.iter().next().expect("len checked");
            self.completed.remove(&oldest);
            dropped.extend(self.remove_iteration(oldest));
        }
        dropped
    }

    /// Drop an iteration's blocks, releasing their shared memory.
    /// Returns the removed blocks ordered by `(variable, source)`;
    /// callers may still hold clones.
    pub fn remove_iteration(&mut self, iteration: u64) -> Vec<StoredBlock> {
        self.completed.remove(&iteration);
        if self.counts.remove(&iteration).is_none() {
            return Vec::new();
        }
        // Split the map at the iteration's bounds: everything below stays,
        // the iteration itself is returned, everything above is re-attached.
        let mut upper = self.by_key.split_off(&(iteration, 0, 0, 0));
        if let Some(next) = iteration.checked_add(1) {
            let mut rest = upper.split_off(&(next, 0, 0, 0));
            self.by_key.append(&mut rest);
        }
        upper.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_shm::SharedSegment;

    fn var(raw: u32) -> VarId {
        VarId::from_raw(raw)
    }

    fn block(seg: &SharedSegment, v: VarId, it: u64, src: usize, val: f64) -> StoredBlock {
        let mut b = seg.allocate(8).unwrap();
        b.write_pod(&[val]);
        StoredBlock {
            variable: v,
            source: src,
            iteration: it,
            data: b.freeze(),
        }
    }

    #[test]
    fn index_and_query() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        let (u, v, w) = (var(0), var(1), var(2));
        store.insert(block(&seg, u, 0, 1, 1.0));
        store.insert(block(&seg, u, 0, 0, 2.0));
        store.insert(block(&seg, v, 0, 0, 3.0));
        store.insert(block(&seg, u, 1, 0, 4.0));

        assert_eq!(store.count(0), 3);
        assert_eq!(store.total(), 4);
        assert_eq!(store.iterations(), vec![0, 1]);

        let u0 = store.variable_blocks(u, 0);
        assert_eq!(u0.len(), 2);
        assert_eq!(u0[0].source, 0, "ordered by source");
        assert_eq!(u0[1].source, 1);

        let found = store.find(v, 0, 0).unwrap();
        assert_eq!(found.data.as_pod::<f64>()[0], 3.0);
        assert!(store.find(v, 0, 1).is_none());
        assert!(store.find(w, 0, 0).is_none());
    }

    #[test]
    fn repeated_writes_of_same_block_are_all_kept() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        let u = var(0);
        store.insert(block(&seg, u, 0, 0, 1.0));
        store.insert(block(&seg, u, 0, 0, 2.0));
        assert_eq!(store.count(0), 2, "seq keeps duplicates distinct");
        assert_eq!(store.variable_blocks(u, 0).len(), 2);
    }

    #[test]
    fn remove_iteration_releases_memory() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        let u = var(0);
        store.insert(block(&seg, u, 0, 0, 1.0));
        store.insert(block(&seg, u, 0, 1, 2.0));
        store.insert(block(&seg, u, 1, 0, 3.0));
        assert!(seg.used_bytes() > 0);
        let removed = store.remove_iteration(0);
        assert_eq!(removed.len(), 2);
        drop(removed);
        assert_eq!(store.total(), 1, "iteration 1 untouched");
        assert_eq!(store.count(1), 1);
        let removed = store.remove_iteration(1);
        assert_eq!(removed.len(), 1);
        drop(removed);
        assert_eq!(seg.used_bytes(), 0, "blocks freed after store GC");
        assert_eq!(store.total(), 0);
        assert!(store.remove_iteration(0).is_empty(), "idempotent");
    }

    #[test]
    fn last_iteration_boundary_is_safe() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        store.insert(block(&seg, var(0), u64::MAX, 0, 1.0));
        assert_eq!(store.count(u64::MAX), 1);
        assert_eq!(store.remove_iteration(u64::MAX).len(), 1);
        assert_eq!(store.total(), 0);
    }

    #[test]
    fn latest_complete_tracks_marking_order() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        assert_eq!(store.latest_complete_iteration(), None);
        store.insert(block(&seg, var(0), 0, 0, 1.0));
        assert_eq!(
            store.latest_complete_iteration(),
            None,
            "inserted ≠ complete"
        );
        store.insert(block(&seg, var(0), 1, 0, 2.0));
        // Out-of-order completion (multiple dedicated cores): latest is
        // the max marked, not the last marked.
        store.mark_complete(1);
        store.mark_complete(0);
        assert_eq!(store.latest_complete_iteration(), Some(1));
    }

    #[test]
    fn snapshot_survives_gc() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        let (u, v) = (var(0), var(1));
        store.insert(block(&seg, v, 3, 1, 4.0));
        store.insert(block(&seg, u, 3, 0, 3.0));
        store.mark_complete(3);

        let (it, snap) = store.latest_snapshot().unwrap();
        assert_eq!(it, 3);
        assert_eq!(snap.len(), 2);
        assert_eq!(
            (snap[0].variable, snap[0].source),
            (u, 0),
            "range scan comes back (variable, source)-ordered"
        );
        assert_eq!((snap[1].variable, snap[1].source), (v, 1));

        // GC with retain=0 empties the store, but the snapshot's clones
        // keep the shared memory alive until the last reader drops them.
        let dropped = store.gc_completed(0);
        assert_eq!(dropped.len(), 2);
        drop(dropped);
        assert_eq!(store.total(), 0);
        assert!(seg.used_bytes() > 0, "snapshot clones pin the bytes");
        assert_eq!(snap[1].data.as_pod::<f64>()[0], 4.0);
        drop(snap);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn gc_respects_retain_window() {
        let seg = SharedSegment::new(1 << 16).unwrap();
        let mut store = VariableStore::new();
        for it in 0..5 {
            store.insert(block(&seg, var(0), it, 0, it as f64));
            store.mark_complete(it);
            drop(store.gc_completed(2));
        }
        // The two newest completed iterations survive for catch-up.
        assert_eq!(store.iterations(), vec![3, 4]);
        assert_eq!(store.latest_complete_iteration(), Some(4));
        assert!(!store.snapshot(4).is_empty());
        // Widening the window later never resurrects dropped iterations.
        assert!(store.gc_completed(3).is_empty());
        assert_eq!(store.iterations(), vec![3, 4]);
        // An incomplete iteration is never GCed, whatever the window.
        store.insert(block(&seg, var(0), 7, 0, 7.0));
        let dropped = store.gc_completed(0);
        assert_eq!(dropped.len(), 2, "only the completed pair went");
        drop(dropped);
        assert_eq!(store.iterations(), vec![7]);
        assert_eq!(store.latest_complete_iteration(), None);
    }

    #[test]
    fn remove_iteration_clears_completion() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        store.insert(block(&seg, var(0), 0, 0, 1.0));
        store.mark_complete(0);
        drop(store.remove_iteration(0));
        assert_eq!(store.latest_complete_iteration(), None);
        assert!(store.gc_completed(0).is_empty(), "nothing left to collect");
    }

    #[test]
    fn empty_queries_are_safe() {
        let store = VariableStore::new();
        assert_eq!(store.count(9), 0);
        assert!(store.variable_blocks(var(0), 9).is_empty());
        assert!(store.iterations().is_empty());
        assert_eq!(store.iteration_blocks(3).count(), 0);
    }
}
