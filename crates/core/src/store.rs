//! The block index on the dedicated-core side.
//!
//! Paper §III.B: "All data blocks are indexed in a metadata structure that
//! helps searching for particular blocks from data management services."

use std::collections::BTreeMap;

use damaris_shm::BlockRef;

/// One indexed block: who wrote which variable at which step.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Variable name.
    pub variable: String,
    /// Writing client id (rank within the node).
    pub source: usize,
    /// Simulation time step.
    pub iteration: u64,
    /// Zero-copy handle into the shared segment.
    pub data: BlockRef,
}

/// Index of live blocks, keyed by iteration then (variable, source).
///
/// Blocks hold [`BlockRef`]s, so removing an iteration releases its shared
/// memory once plugins drop their own references — this is the garbage
/// collection that keeps the segment from filling under steady state.
#[derive(Debug, Default)]
pub struct VariableStore {
    by_iteration: BTreeMap<u64, Vec<StoredBlock>>,
}

impl VariableStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a block.
    pub fn insert(&mut self, block: StoredBlock) {
        self.by_iteration
            .entry(block.iteration)
            .or_default()
            .push(block);
    }

    /// All blocks of an iteration (any variable, any source).
    pub fn iteration_blocks(&self, iteration: u64) -> &[StoredBlock] {
        self.by_iteration
            .get(&iteration)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Blocks of one variable at one iteration, ordered by source.
    pub fn variable_blocks(&self, variable: &str, iteration: u64) -> Vec<&StoredBlock> {
        let mut v: Vec<&StoredBlock> = self
            .iteration_blocks(iteration)
            .iter()
            .filter(|b| b.variable == variable)
            .collect();
        v.sort_by_key(|b| b.source);
        v
    }

    /// Search a specific block (paper: "searching for particular blocks").
    pub fn find(&self, variable: &str, iteration: u64, source: usize) -> Option<&StoredBlock> {
        self.iteration_blocks(iteration)
            .iter()
            .find(|b| b.variable == variable && b.source == source)
    }

    /// Number of blocks held for an iteration.
    pub fn count(&self, iteration: u64) -> usize {
        self.iteration_blocks(iteration).len()
    }

    /// Total live blocks across iterations.
    pub fn total(&self) -> usize {
        self.by_iteration.values().map(Vec::len).sum()
    }

    /// Iterations currently holding data, ascending.
    pub fn iterations(&self) -> Vec<u64> {
        self.by_iteration.keys().copied().collect()
    }

    /// Drop an iteration's blocks, releasing their shared memory.
    /// Returns the removed blocks (callers may still hold clones).
    pub fn remove_iteration(&mut self, iteration: u64) -> Vec<StoredBlock> {
        self.by_iteration.remove(&iteration).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_shm::SharedSegment;

    fn block(seg: &SharedSegment, var: &str, it: u64, src: usize, val: f64) -> StoredBlock {
        let mut b = seg.allocate(8).unwrap();
        b.write_pod(&[val]);
        StoredBlock {
            variable: var.into(),
            source: src,
            iteration: it,
            data: b.freeze(),
        }
    }

    #[test]
    fn index_and_query() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        store.insert(block(&seg, "u", 0, 1, 1.0));
        store.insert(block(&seg, "u", 0, 0, 2.0));
        store.insert(block(&seg, "v", 0, 0, 3.0));
        store.insert(block(&seg, "u", 1, 0, 4.0));

        assert_eq!(store.count(0), 3);
        assert_eq!(store.total(), 4);
        assert_eq!(store.iterations(), vec![0, 1]);

        let u0 = store.variable_blocks("u", 0);
        assert_eq!(u0.len(), 2);
        assert_eq!(u0[0].source, 0, "ordered by source");
        assert_eq!(u0[1].source, 1);

        let found = store.find("v", 0, 0).unwrap();
        assert_eq!(found.data.as_pod::<f64>()[0], 3.0);
        assert!(store.find("v", 0, 1).is_none());
        assert!(store.find("w", 0, 0).is_none());
    }

    #[test]
    fn remove_iteration_releases_memory() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut store = VariableStore::new();
        store.insert(block(&seg, "u", 0, 0, 1.0));
        store.insert(block(&seg, "u", 0, 1, 2.0));
        assert!(seg.used_bytes() > 0);
        let removed = store.remove_iteration(0);
        assert_eq!(removed.len(), 2);
        drop(removed);
        assert_eq!(seg.used_bytes(), 0, "blocks freed after store GC");
        assert_eq!(store.total(), 0);
        assert!(store.remove_iteration(0).is_empty(), "idempotent");
    }

    #[test]
    fn empty_queries_are_safe() {
        let store = VariableStore::new();
        assert_eq!(store.count(9), 0);
        assert!(store.variable_blocks("u", 9).is_empty());
        assert!(store.iterations().is_empty());
    }
}
