//! The dedicated-core event loop.
//!
//! Each dedicated core runs [`server_loop`] over an
//! [`EventConsumer`] handle of the node's event transport: it drains
//! events, indexes blocks, detects iteration completion (all clients
//! ended the step *and* all announced blocks arrived — necessary because
//! several dedicated cores may drain events concurrently, and, with the
//! sharded transport, because events from different clients may arrive
//! reordered), fires plugins, and garbage-collects the iteration's shared
//! memory.
//!
//! The loop is transport-agnostic: a mutex [`damaris_shm::MessageQueue`]
//! and a work-stealing [`damaris_shm::StealingConsumer`] plug in
//! unchanged.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use damaris_shm::transport::EventConsumer;
use damaris_xml::schema::{Action, Configuration, Trigger};
use damaris_xml::EventId;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::event::Event;
use crate::plugins::{IterationCtx, Plugin, SignalCtx};
use crate::store::{StoredBlock, VariableStore};

/// Progress bookkeeping for one in-flight iteration.
#[derive(Debug, Default)]
struct IterProgress {
    /// Clients that sent `EndIteration`.
    ended: usize,
    /// Blocks those clients announced.
    expected_blocks: u64,
    /// Guards against double-firing when two server threads race.
    fired: bool,
}

/// State shared between all dedicated cores of a node (and the node handle).
pub struct ServerShared {
    pub(crate) cfg: Arc<Configuration>,
    pub(crate) node_id: usize,
    pub(crate) n_clients: usize,
    pub(crate) output_dir: PathBuf,
    pub(crate) store: Mutex<VariableStore>,
    /// Completed iterations kept in the store for subscriber catch-up
    /// (`<serve retain>`); 0 without a serving tier — reclaim at once.
    retain_window: usize,
    progress: Mutex<HashMap<u64, IterProgress>>,
    /// Actions per interned user event, precomputed so a signal dispatch
    /// is an index instead of a scan over every declared action.
    signal_actions: Vec<Vec<Action>>,
    pub(crate) plugins: RwLock<Vec<Arc<dyn Plugin>>>,
    /// Clients that called finalize, with a condvar for shutdown waits.
    finalized: Mutex<usize>,
    pub(crate) all_finalized: Condvar,
    /// Plugin failures (collected, never fatal to the service).
    pub(crate) errors: Mutex<Vec<String>>,
    /// Completed iterations (actions fired, memory reclaimed).
    pub(crate) iterations_completed: AtomicU64,
    /// Skipped client-iterations observed.
    pub(crate) skipped_client_iterations: AtomicU64,
    /// User signals processed (undeclared names never arrive — the
    /// client edge filters them).
    pub(crate) signals_delivered: AtomicU64,
    /// Blocks consumed off the transport.
    pub(crate) blocks_received: AtomicU64,
    /// Payload bytes of those blocks.
    pub(crate) bytes_received: AtomicU64,
    /// Nanoseconds the dedicated cores spent doing work.
    pub(crate) busy_nanos: AtomicU64,
    /// Nanoseconds the dedicated cores spent idle (waiting for events) —
    /// the §IV.D "idle 92–99 % of the time" measurement at node scale.
    pub(crate) idle_nanos: AtomicU64,
}

impl ServerShared {
    pub(crate) fn new(
        cfg: Arc<Configuration>,
        node_id: usize,
        n_clients: usize,
        output_dir: PathBuf,
    ) -> Self {
        let registry = cfg.registry();
        let mut signal_actions = vec![Vec::new(); registry.event_count()];
        for action in &cfg.actions {
            if let Trigger::Event(name) = &action.trigger {
                if let Some(id) = registry.event_id(name) {
                    signal_actions[id.index()].push(action.clone());
                }
            }
        }
        let retain_window = cfg
            .architecture
            .serve
            .as_ref()
            .map(|s| s.retain as usize)
            .unwrap_or(0);
        ServerShared {
            cfg,
            node_id,
            n_clients,
            output_dir,
            store: Mutex::new(VariableStore::new()),
            retain_window,
            progress: Mutex::new(HashMap::new()),
            signal_actions,
            plugins: RwLock::new(Vec::new()),
            finalized: Mutex::new(0),
            all_finalized: Condvar::new(),
            errors: Mutex::new(Vec::new()),
            iterations_completed: AtomicU64::new(0),
            skipped_client_iterations: AtomicU64::new(0),
            signals_delivered: AtomicU64::new(0),
            blocks_received: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            idle_nanos: AtomicU64::new(0),
        }
    }

    /// Block until every client has finalized (returns false on timeout).
    pub(crate) fn wait_all_finalized(&self, timeout: std::time::Duration) -> bool {
        let mut n = self.finalized.lock();
        while *n < self.n_clients {
            if self.all_finalized.wait_for(&mut n, timeout).timed_out() {
                return false;
            }
        }
        true
    }

    /// Fraction of time the dedicated cores sat idle so far.
    pub fn idle_fraction(&self) -> f64 {
        let busy = self.busy_nanos.load(Ordering::Relaxed) as f64;
        let idle = self.idle_nanos.load(Ordering::Relaxed) as f64;
        if busy + idle == 0.0 {
            return 1.0;
        }
        idle / (busy + idle)
    }

    fn actions_for_iteration(&self, iteration: u64) -> Vec<Action> {
        let mut out = Vec::new();
        for action in &self.cfg.actions {
            if let Trigger::EndOfIteration { frequency } = action.trigger {
                if iteration.is_multiple_of(frequency) {
                    out.push(action.clone());
                }
            }
        }
        out
    }

    /// Fire plugins for a completed iteration (blocks already removed from
    /// the store by the caller, so other server threads keep running).
    fn fire_iteration(&self, iteration: u64, blocks: &[StoredBlock]) {
        let plugins = self.plugins.read();
        let actions = self.actions_for_iteration(iteration);
        for plugin in plugins.iter() {
            // Actions referencing the plugin configure its invocation; a
            // plugin with no matching action fires with defaults.
            let matched: Vec<&Action> = actions
                .iter()
                .filter(|a| a.plugin == plugin.name())
                .collect();
            let default_action = Action {
                name: plugin.name().to_string(),
                plugin: plugin.name().to_string(),
                trigger: Trigger::EndOfIteration { frequency: 1 },
                params: vec![],
            };
            let declared_anywhere = self.cfg.actions.iter().any(|a| a.plugin == plugin.name());
            let invocations: Vec<&Action> = if matched.is_empty() {
                if declared_anywhere {
                    // Declared with a frequency that excludes this step.
                    continue;
                }
                vec![&default_action]
            } else {
                matched
            };
            for action in invocations {
                let ctx = IterationCtx {
                    iteration,
                    node_id: self.node_id,
                    simulation: &self.cfg.name,
                    blocks,
                    config: &self.cfg,
                    output_dir: &self.output_dir,
                    action,
                };
                if let Err(msg) = plugin.on_iteration(&ctx) {
                    self.errors.lock().push(format!(
                        "plugin '{}' at iteration {iteration}: {msg}",
                        plugin.name()
                    ));
                }
            }
        }
        self.iterations_completed.fetch_add(1, Ordering::Relaxed);
    }

    fn fire_signal(&self, event: EventId, source: usize, iteration: u64) {
        let name = self.cfg.registry().event_name(event);
        let plugins = self.plugins.read();
        let store = self.store.lock();
        let blocks: Vec<StoredBlock> = store.iteration_blocks(iteration).cloned().collect();
        drop(store);
        for action in &self.signal_actions[event.index()] {
            for plugin in plugins.iter().filter(|p| p.name() == action.plugin) {
                let ctx = SignalCtx {
                    name,
                    source,
                    iteration,
                    blocks: &blocks,
                    config: &self.cfg,
                    output_dir: &self.output_dir,
                    action,
                };
                if let Err(msg) = plugin.on_signal(&ctx) {
                    self.errors.lock().push(format!(
                        "plugin '{}' on signal '{name}': {msg}",
                        plugin.name()
                    ));
                }
            }
        }
    }

    /// Fire-and-collect if iteration `it` became complete. Returns true if
    /// this call fired it.
    fn maybe_complete(&self, it: u64) -> bool {
        let (blocks, expired) = {
            let mut progress = self.progress.lock();
            let mut store = self.store.lock();
            let Some(p) = progress.get_mut(&it) else {
                return false;
            };
            if p.fired || p.ended < self.n_clients || (store.count(it) as u64) < p.expected_blocks {
                return false;
            }
            p.fired = true;
            progress.remove(&it);
            // Completed iterations stay indexed for the retain window so a
            // late subscriber's snapshot catch-up cannot race collection;
            // with no serving tier the window is 0 and this degenerates to
            // the old remove-on-completion behavior.
            store.mark_complete(it);
            let blocks = store.snapshot(it);
            (blocks, store.gc_completed(self.retain_window))
        };
        drop(expired);
        self.fire_iteration(it, &blocks);
        // `blocks` dropped here: with retain 0 the shared memory is
        // reclaimed now; otherwise when the iteration leaves the window.
        true
    }
}

/// Run one dedicated core until the transport is closed and drained.
pub fn server_loop<C: EventConsumer<Event>>(shared: Arc<ServerShared>, mut events: C) {
    loop {
        let wait_start = Instant::now();
        let event = match events.recv() {
            Ok(ev) => ev,
            Err(_) => break, // closed and drained
        };
        shared
            .idle_nanos
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let busy_start = Instant::now();
        match event {
            Event::Write {
                variable,
                iteration,
                source,
                block,
            } => {
                shared.blocks_received.fetch_add(1, Ordering::Relaxed);
                shared
                    .bytes_received
                    .fetch_add(block.len() as u64, Ordering::Relaxed);
                shared.store.lock().insert(StoredBlock {
                    variable,
                    source,
                    iteration,
                    data: block,
                });
                shared.maybe_complete(iteration);
            }
            Event::EndIteration {
                source: _,
                iteration,
                writes,
                skipped,
            } => {
                {
                    let mut progress = shared.progress.lock();
                    let p = progress.entry(iteration).or_default();
                    p.ended += 1;
                    p.expected_blocks += writes;
                    if skipped {
                        shared
                            .skipped_client_iterations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                shared.maybe_complete(iteration);
            }
            Event::Signal {
                event,
                source,
                iteration,
            } => {
                shared.signals_delivered.fetch_add(1, Ordering::Relaxed);
                shared.fire_signal(event, source, iteration);
            }
            Event::ClientFinalize { .. } => {
                let mut n = shared.finalized.lock();
                *n += 1;
                if *n >= shared.n_clients {
                    shared.all_finalized.notify_all();
                }
            }
        }
        shared
            .busy_nanos
            .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::FnPlugin;
    use damaris_shm::transport::{EventChannel, EventProducer, ShardedChannel};
    use damaris_shm::{MessageQueue, SharedSegment};
    use std::sync::atomic::AtomicUsize;

    fn config(actions: &str) -> Arc<Configuration> {
        Arc::new(
            Configuration::from_str(&format!(
                r#"<simulation name="t">
                     <data>
                       <layout name="l" type="f64" dimensions="2"/>
                       <variable name="u" layout="l"/>
                     </data>
                     {actions}
                   </simulation>"#
            ))
            .unwrap(),
        )
    }

    fn write_event(seg: &SharedSegment, it: u64, source: usize) -> Event {
        let mut b = seg.allocate(16).unwrap();
        b.write_pod(&[source as f64, it as f64]);
        Event::Write {
            variable: damaris_xml::VarId::from_raw(0), // "u" in `config()`
            iteration: it,
            source,
            block: b.freeze(),
        }
    }

    /// Drive a server loop synchronously by closing the queue first.
    fn run_events(shared: &Arc<ServerShared>, events: Vec<Event>) {
        let queue = MessageQueue::bounded(events.len().max(1));
        for e in events {
            queue.send(e).unwrap();
        }
        queue.close();
        server_loop(shared.clone(), queue);
    }

    /// Same, but through the sharded transport (events keyed by source).
    fn run_events_sharded(shared: &Arc<ServerShared>, clients: usize, events: Vec<Event>) {
        let ch: ShardedChannel<Event> = ShardedChannel::new(clients, events.len().max(1));
        for e in events {
            let p = ch.producer(e.source());
            p.send(e).unwrap();
        }
        EventChannel::close(&ch);
        server_loop(shared.clone(), ch.consumer(0, 1));
    }

    #[test]
    fn iteration_fires_once_all_clients_and_blocks_arrive() {
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 2, std::env::temp_dir()));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("probe", move |ctx| {
                assert_eq!(ctx.blocks.len(), 2);
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })));
        let seg = SharedSegment::new(4096).unwrap();
        run_events(
            &shared,
            vec![
                write_event(&seg, 0, 0),
                Event::EndIteration {
                    source: 0,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
                write_event(&seg, 0, 1),
                Event::EndIteration {
                    source: 1,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
            ],
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(shared.iterations_completed.load(Ordering::Relaxed), 1);
        assert_eq!(seg.used_bytes(), 0, "iteration memory reclaimed");
    }

    #[test]
    fn out_of_order_block_after_end_iteration_still_completes() {
        // Mimics two dedicated cores racing: EndIteration processed before
        // the matching Write. The expected-block count holds firing back.
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 1, std::env::temp_dir()));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("probe", move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })));
        let seg = SharedSegment::new(4096).unwrap();
        run_events(
            &shared,
            vec![
                Event::EndIteration {
                    source: 0,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
                write_event(&seg, 0, 0),
            ],
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn action_frequency_respected() {
        let cfg = config(
            r#"<actions>
                 <action name="dump" plugin="probe" event="end-of-iteration" frequency="2"/>
               </actions>"#,
        );
        let shared = Arc::new(ServerShared::new(cfg, 0, 1, std::env::temp_dir()));
        let fired = Arc::new(Mutex::new(Vec::new()));
        let f = fired.clone();
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("probe", move |ctx| {
                f.lock().push(ctx.iteration);
                Ok(())
            })));
        let seg = SharedSegment::new(8192).unwrap();
        let mut events = Vec::new();
        for it in 0..5 {
            events.push(write_event(&seg, it, 0));
            events.push(Event::EndIteration {
                source: 0,
                iteration: it,
                writes: 1,
                skipped: false,
            });
        }
        run_events(&shared, events);
        assert_eq!(
            *fired.lock(),
            vec![0, 2, 4],
            "frequency=2 fires on even steps"
        );
        assert_eq!(shared.iterations_completed.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn signals_fire_matching_actions() {
        let cfg = config(
            r#"<actions>
                 <action name="snap" plugin="viz" event="user-snapshot"/>
                 <action name="other" plugin="someone-else" event="unrelated"/>
               </actions>"#,
        );
        let snapshot = cfg.registry().event_id("user-snapshot").unwrap();
        let unrelated = cfg.registry().event_id("unrelated").unwrap();
        let shared = Arc::new(ServerShared::new(cfg, 0, 1, std::env::temp_dir()));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        struct SignalProbe(Arc<AtomicUsize>);
        impl Plugin for SignalProbe {
            fn name(&self) -> &str {
                "viz"
            }
            fn on_signal(&self, ctx: &SignalCtx<'_>) -> Result<(), String> {
                assert_eq!(ctx.name, "user-snapshot");
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
        shared.plugins.write().push(Arc::new(SignalProbe(f)));
        run_events(
            &shared,
            vec![
                Event::Signal {
                    event: snapshot,
                    source: 0,
                    iteration: 0,
                },
                Event::Signal {
                    event: unrelated,
                    source: 0,
                    iteration: 0,
                },
            ],
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn plugin_errors_collected_not_fatal() {
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 1, std::env::temp_dir()));
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("bad", |_| Err("kaboom".into()))));
        let seg = SharedSegment::new(4096).unwrap();
        run_events(
            &shared,
            vec![
                write_event(&seg, 0, 0),
                Event::EndIteration {
                    source: 0,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
                write_event(&seg, 1, 0),
                Event::EndIteration {
                    source: 0,
                    iteration: 1,
                    writes: 1,
                    skipped: false,
                },
            ],
        );
        let errors = shared.errors.lock();
        assert_eq!(
            errors.len(),
            2,
            "one error per iteration, service kept going"
        );
        assert!(errors[0].contains("kaboom"));
    }

    #[test]
    fn skipped_iterations_fire_with_partial_blocks() {
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 2, std::env::temp_dir()));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("probe", move |ctx| {
                s.lock().push(ctx.blocks.len());
                Ok(())
            })));
        let seg = SharedSegment::new(4096).unwrap();
        run_events(
            &shared,
            vec![
                write_event(&seg, 0, 0),
                Event::EndIteration {
                    source: 0,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
                // Client 1 skipped the whole iteration.
                Event::EndIteration {
                    source: 1,
                    iteration: 0,
                    writes: 0,
                    skipped: true,
                },
            ],
        );
        assert_eq!(*seen.lock(), vec![1], "fires with one client's blocks");
        assert_eq!(shared.skipped_client_iterations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn iteration_completes_over_sharded_transport() {
        // The same completion logic must hold when events arrive through
        // per-client rings drained by a stealing consumer.
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 2, std::env::temp_dir()));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        shared
            .plugins
            .write()
            .push(Arc::new(FnPlugin::new("probe", move |ctx| {
                assert_eq!(ctx.blocks.len(), 2);
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })));
        let seg = SharedSegment::new(4096).unwrap();
        run_events_sharded(
            &shared,
            2,
            vec![
                write_event(&seg, 0, 0),
                Event::EndIteration {
                    source: 0,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
                write_event(&seg, 0, 1),
                Event::EndIteration {
                    source: 1,
                    iteration: 0,
                    writes: 1,
                    skipped: false,
                },
            ],
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(shared.iterations_completed.load(Ordering::Relaxed), 1);
        assert_eq!(seg.used_bytes(), 0, "iteration memory reclaimed");
    }

    #[test]
    fn finalize_notifies_waiters() {
        let cfg = config("");
        let shared = Arc::new(ServerShared::new(cfg, 0, 2, std::env::temp_dir()));
        let queue: MessageQueue<Event> = MessageQueue::bounded(8);
        let s2 = shared.clone();
        let q2 = queue.clone();
        let server = std::thread::spawn(move || server_loop(s2, q2));
        queue.send(Event::ClientFinalize { source: 0 }).unwrap();
        queue.send(Event::ClientFinalize { source: 1 }).unwrap();
        assert!(shared.wait_all_finalized(std::time::Duration::from_secs(5)));
        queue.close();
        server.join().unwrap();
        assert!(shared.idle_fraction() > 0.0);
    }
}
