//! Node lifecycle: wiring the segment, event transport, clients and
//! dedicated cores.
//!
//! The transport is selected at build time from the XML
//! `<queue kind="mutex|sharded">` attribute (see
//! [`damaris_xml::schema::QueueKind`]) or overridden programmatically via
//! [`NodeBuilder::transport`]; everything downstream is generic over
//! [`EventChannel`].

use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use damaris_shm::transport::{AnyTransport, EventChannel, TransportKind};
use damaris_shm::{SharedSegment, SlabCache};
use damaris_xml::schema::{AllocatorKind, Configuration, QueueKind};
use parking_lot::Mutex;

use crate::client::{DamarisClient, StatsRecorder};
use crate::error::{DamarisError, DamarisResult};
use crate::event::Event;
use crate::plugins::{CompressPlugin, H5Writer, Plugin, ServePlugin, StatsPlugin, StoragePlugin};
use crate::policy::SkipPolicy;
use crate::server::{server_loop, ServerShared};

/// Builder for a [`DamarisNode`].
pub struct NodeBuilder {
    cfg: Option<Configuration>,
    clients: Option<usize>,
    node_id: usize,
    output_dir: Option<PathBuf>,
    transport: Option<TransportKind>,
    allocator: Option<AllocatorKind>,
}

impl NodeBuilder {
    fn new() -> Self {
        NodeBuilder {
            cfg: None,
            clients: None,
            node_id: 0,
            output_dir: None,
            transport: None,
            allocator: None,
        }
    }

    /// Load configuration from XML text.
    pub fn config_str(mut self, xml: &str) -> DamarisResult<Self> {
        self.cfg = Some(Configuration::from_str(xml)?);
        Ok(self)
    }

    /// Load configuration from a file.
    pub fn config_file(mut self, path: impl AsRef<std::path::Path>) -> DamarisResult<Self> {
        self.cfg = Some(Configuration::from_file(path)?);
        Ok(self)
    }

    /// Use an already-built configuration.
    pub fn config(mut self, cfg: Configuration) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Number of simulation clients (compute cores) on this node
    /// (default: the XML `<clients count="…"/>` attribute).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = Some(n);
        self
    }

    /// This node's id (used in output file names).
    pub fn node_id(mut self, id: usize) -> Self {
        self.node_id = id;
        self
    }

    /// Directory plugins write into (default: a temp subdirectory).
    pub fn output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Override the event-transport kind (normally taken from the XML
    /// `<queue kind="…">` attribute).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Override the shared-memory allocator (normally taken from the XML
    /// `<buffer allocator="…">` attribute).
    pub fn allocator(mut self, kind: AllocatorKind) -> Self {
        self.allocator = Some(kind);
        self
    }

    /// Construct the node: allocate the segment and queue, spawn the
    /// dedicated-core threads, pre-create the client handles.
    pub fn build(self) -> DamarisResult<DamarisNode> {
        let cfg = Arc::new(self.cfg.ok_or_else(|| {
            DamarisError::InvalidState("NodeBuilder needs a configuration".into())
        })?);
        let n_clients = self.clients.unwrap_or(cfg.architecture.clients);
        if n_clients == 0 {
            return Err(DamarisError::InvalidState(
                "a node needs at least one client".into(),
            ));
        }
        if cfg.architecture.dedicated_cores == 0 {
            return Err(DamarisError::InvalidState(
                "dedicated cores = 0 selects the synchronous baselines; use damaris_core::baseline"
                    .into(),
            ));
        }
        let output_dir = self.output_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("damaris-{}-{}", cfg.name, std::process::id()))
        });
        // Size classes come from the declared variable layouts: the block
        // sizes every iteration reallocates. The buddy allocator keeps
        // those classes and adds per-order queues underneath, so
        // `dimensions="dynamic"` variables (whose sizes arrive per write)
        // stay off the first-fit mutex too. The default size-class choice
        // upgrades itself to buddy when any layout is dynamic — buddy is
        // a strict superset (classes still serve the fixed layouts), and
        // without it every variable-size write would silently take the
        // mutex. First-fit remains available as the measured baseline
        // (and must be selected explicitly to stay one).
        let allocator = match self.allocator.unwrap_or(cfg.architecture.allocator) {
            AllocatorKind::SizeClass if cfg.registry().any_dynamic() => AllocatorKind::Buddy,
            other => other,
        };
        let segment = match allocator {
            AllocatorKind::SizeClass => SharedSegment::with_classes(
                cfg.architecture.buffer_size,
                &cfg.registry().distinct_byte_sizes(),
            )?,
            AllocatorKind::Buddy => SharedSegment::with_buddy(
                cfg.architecture.buffer_size,
                &cfg.registry().distinct_byte_sizes(),
            )?,
            AllocatorKind::FirstFit => SharedSegment::new(cfg.architecture.buffer_size)?,
        };
        let kind = self.transport.unwrap_or(match cfg.architecture.queue_kind {
            QueueKind::Mutex => TransportKind::Mutex,
            QueueKind::Sharded => TransportKind::Sharded,
        });
        let transport: AnyTransport<Event> =
            AnyTransport::for_kind(kind, n_clients, cfg.architecture.queue_capacity);

        let shared = Arc::new(ServerShared::new(
            cfg.clone(),
            self.node_id,
            n_clients,
            output_dir.clone(),
        ));
        // Auto-register built-in plugins. A declared `<store>` drives the
        // storage pipeline regardless of `<action>` blocks (registered
        // first, so the action loop's existence check never duplicates
        // it); the others are pulled in by the actions referencing them.
        let mut storage: Option<Arc<StoragePlugin>> = None;
        let mut serve: Option<Arc<ServePlugin>> = None;
        {
            let mut plugins = shared.plugins.write();
            if cfg.architecture.store.is_some() {
                let plugin = Arc::new(
                    StoragePlugin::new(&cfg, self.node_id, &output_dir)
                        .map_err(DamarisError::InvalidState)?,
                );
                storage = Some(plugin.clone());
                plugins.push(plugin);
            }
            if cfg.architecture.serve.is_some() {
                let plugin = Arc::new(
                    ServePlugin::new(&cfg, &output_dir).map_err(DamarisError::InvalidState)?,
                );
                serve = Some(plugin.clone());
                plugins.push(plugin);
            }
            for action in &cfg.actions {
                let exists = plugins.iter().any(|p| p.name() == action.plugin);
                if exists {
                    continue;
                }
                let builtin: Option<Arc<dyn Plugin>> = match action.plugin.as_str() {
                    "hdf5" => Some(Arc::new(H5Writer::new())),
                    "compress" => Some(Arc::new(CompressPlugin::new())),
                    "stats" => Some(Arc::new(StatsPlugin::new())),
                    "storage" => Some(Arc::new(
                        StoragePlugin::new(&cfg, self.node_id, &output_dir)
                            .map_err(DamarisError::InvalidState)?,
                    )),
                    _ => None,
                };
                if let Some(p) = builtin {
                    plugins.push(p);
                }
            }
        }

        let n_cores = cfg.architecture.dedicated_cores;
        let mut server_handles = Vec::new();
        for core in 0..n_cores {
            let shared = shared.clone();
            // Each dedicated core gets its own consumer handle owning a
            // disjoint shard set (it steals from the rest when idle).
            let consumer = transport.consumer(core, n_cores);
            server_handles.push(
                std::thread::Builder::new()
                    .name(format!("damaris-dedicated-{core}"))
                    .spawn(move || server_loop(shared, consumer))
                    .expect("failed to spawn dedicated core"),
            );
        }

        let clients: Vec<DamarisClient> = (0..n_clients)
            .map(|id| DamarisClient {
                id,
                cfg: cfg.clone(),
                slab: Arc::new(SlabCache::new(&segment)),
                producer: transport.producer(id),
                policy: Arc::new(SkipPolicy::new(cfg.architecture.skip)),
                stats: Arc::new(StatsRecorder::new()),
                writes_this_iteration: Arc::new(AtomicU64::new(0)),
                finalized: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            })
            .collect();
        // Seed the slab caches (one reserved block per slot per size
        // class per client) so even iteration 0 allocates via a slot swap
        // instead of taking the first-fit mutex — the caches warmed
        // lazily before, leaving the very first write of every variable
        // serialized on one lock. All-or-nothing, and only when the
        // footprint is a small fraction of the segment: reservations
        // count as used bytes, so warming a tightly-sized segment would
        // start it near the occupancy watermark and distort the skip
        // policy (asymmetrically, if only some clients fit).
        let prewarm_total: usize = clients.iter().map(|c| c.slab.prewarm_bytes()).sum();
        if prewarm_total > 0 && prewarm_total * 8 <= segment.capacity() {
            for client in &clients {
                client.slab.prewarm();
            }
        }

        Ok(DamarisNode {
            cfg,
            segment,
            transport,
            shared,
            server_handles: Mutex::new(server_handles),
            clients,
            output_dir,
            storage,
            serve,
        })
    }
}

/// Summary returned by [`DamarisNode::shutdown`].
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Iterations whose actions fired.
    pub iterations_completed: u64,
    /// Client-iterations dropped by the skip policy.
    pub skipped_client_iterations: u64,
    /// User signals processed by the dedicated cores.
    pub signals_delivered: u64,
    /// Blocks the dedicated cores consumed.
    pub blocks_received: u64,
    /// Payload bytes of those blocks.
    pub bytes_received: u64,
    /// Plugin error messages collected during the run.
    pub plugin_errors: Vec<String>,
    /// Fraction of time the dedicated cores were idle (§IV.D).
    pub dedicated_idle_fraction: f64,
    /// Peak shared-memory occupancy in bytes.
    pub peak_segment_bytes: usize,
}

/// One SMP node running Damaris: `clients` compute cores plus
/// `dedicated_cores` data-management cores sharing a memory segment and an
/// event transport.
///
/// Generic over the transport `C` (default: the runtime-selected
/// [`AnyTransport`]); [`NodeBuilder::build`] always produces the default.
pub struct DamarisNode<C: EventChannel<Event> = AnyTransport<Event>> {
    cfg: Arc<Configuration>,
    segment: SharedSegment,
    transport: C,
    shared: Arc<ServerShared>,
    server_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    clients: Vec<DamarisClient<C>>,
    output_dir: PathBuf,
    /// The auto-registered storage plugin, when `<store>` is declared —
    /// kept so callers can observe the pipeline without digging through
    /// the plugin list.
    storage: Option<Arc<StoragePlugin>>,
    /// The auto-registered streaming server, when `<serve>` is declared.
    serve: Option<Arc<ServePlugin>>,
}

impl DamarisNode {
    /// Start building a node.
    pub fn builder() -> NodeBuilder {
        NodeBuilder::new()
    }
}

impl<C: EventChannel<Event>> DamarisNode<C> {
    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Directory plugins write into.
    pub fn output_dir(&self) -> &std::path::Path {
        &self.output_dir
    }

    /// Owned handles for every client, in id order (move each into its
    /// compute thread).
    pub fn clients(&self) -> impl Iterator<Item = DamarisClient<C>> + '_ {
        self.clients.iter().cloned()
    }

    /// Handle for one client.
    pub fn client(&self, id: usize) -> Option<DamarisClient<C>> {
        self.clients.get(id).cloned()
    }

    /// Register a data-management plugin (replaces a previous plugin with
    /// the same name, including auto-registered built-ins).
    pub fn register_plugin(&self, plugin: Arc<dyn Plugin>) {
        let mut plugins = self.shared.plugins.write();
        plugins.retain(|p| p.name() != plugin.name());
        plugins.push(plugin);
    }

    /// Current shared-segment occupancy in `[0, 1]`.
    pub fn segment_occupancy(&self) -> f64 {
        self.segment.occupancy()
    }

    /// Counter snapshot of the auto-registered storage pipeline — the
    /// per-stage timings ([`crate::plugins::StorageStats`]) that make the
    /// encode/write overlap observable. `None` when the configuration
    /// declares no `<store>`.
    pub fn storage_stats(&self) -> Option<crate::plugins::StorageStats> {
        self.storage.as_ref().map(|s| s.stats())
    }

    /// Counter snapshot of the auto-registered streaming server
    /// (subscribers, frames, lag events, publish-path timings). `None`
    /// when the configuration declares no `<serve>`.
    pub fn serve_stats(&self) -> Option<damaris_serve::ServeStats> {
        self.serve.as_ref().map(|s| s.stats())
    }

    /// Bound address of the streaming server (resolves an ephemeral
    /// `listen="…:0"` port). `None` without a `<serve>` element.
    pub fn serve_addr(&self) -> Option<std::net::SocketAddr> {
        self.serve.as_ref().map(|s| s.local_addr())
    }

    /// Lifetime counters of the shared segment (allocations, class hits,
    /// peak occupancy, …).
    pub fn segment_stats(&self) -> damaris_shm::SegmentStats {
        self.segment.stats()
    }

    /// Iterations whose end-of-iteration actions have fired so far — the
    /// dedicated cores' progress through the pipeline (useful for pacing
    /// producers against the analysis side without sampling occupancy).
    pub fn iterations_completed(&self) -> u64 {
        self.shared
            .iterations_completed
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Current event-transport pressure (aggregate occupancy) in `[0, 1]`.
    pub fn queue_pressure(&self) -> f64 {
        self.transport.pressure()
    }

    /// Fraction of time the dedicated cores have been idle so far.
    pub fn dedicated_idle_fraction(&self) -> f64 {
        self.shared.idle_fraction()
    }

    /// Wait for all clients to finalize, then stop the dedicated cores.
    pub fn shutdown(&self) -> DamarisResult<NodeReport> {
        let mut handles = self.server_handles.lock();
        if handles.is_empty() {
            return Err(DamarisError::InvalidState("node already shut down".into()));
        }
        if !self.shared.wait_all_finalized(Duration::from_secs(120)) {
            return Err(DamarisError::InvalidState(
                "timed out waiting for clients to finalize".into(),
            ));
        }
        self.transport.close();
        for h in handles.drain(..) {
            h.join()
                .map_err(|_| DamarisError::InvalidState("dedicated core thread panicked".into()))?;
        }
        // All clients finalized and all dedicated cores drained: return the
        // slab caches' reservations so occupancy reads 0 on an idle node.
        for client in &self.clients {
            client.slab.flush();
        }
        // Let plugins close their long-lived resources (the storage
        // pipeline finishes and syncs its per-node file here).
        for plugin in self.shared.plugins.read().iter() {
            if let Err(msg) = plugin.on_finalize() {
                self.shared
                    .errors
                    .lock()
                    .push(format!("plugin '{}' at finalize: {msg}", plugin.name()));
            }
        }
        Ok(NodeReport {
            iterations_completed: self
                .shared
                .iterations_completed
                .load(std::sync::atomic::Ordering::Relaxed),
            skipped_client_iterations: self
                .shared
                .skipped_client_iterations
                .load(std::sync::atomic::Ordering::Relaxed),
            signals_delivered: self
                .shared
                .signals_delivered
                .load(std::sync::atomic::Ordering::Relaxed),
            blocks_received: self
                .shared
                .blocks_received
                .load(std::sync::atomic::Ordering::Relaxed),
            bytes_received: self
                .shared
                .bytes_received
                .load(std::sync::atomic::Ordering::Relaxed),
            plugin_errors: self.shared.errors.lock().clone(),
            dedicated_idle_fraction: self.shared.idle_fraction(),
            peak_segment_bytes: self.segment.stats().peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WriteStatus;
    use crate::plugins::StatsPlugin;

    const XML: &str = r#"
      <simulation name="node-test">
        <architecture>
          <dedicated cores="1"/>
          <buffer size="262144"/>
          <queue capacity="64"/>
        </architecture>
        <data>
          <layout name="row" type="f64" dimensions="64"/>
          <variable name="u" layout="row"/>
          <variable name="v" layout="row"/>
        </data>
      </simulation>"#;

    fn run_session(clients: usize, iterations: u64) -> (NodeReport, Arc<StatsPlugin>) {
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(clients)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    for it in 0..iterations {
                        let data = vec![client.id() as f64; 64];
                        assert_eq!(client.write("u", it, &data).unwrap(), WriteStatus::Written);
                        assert_eq!(client.write("v", it, &data).unwrap(), WriteStatus::Written);
                        client.end_iteration(it).unwrap();
                    }
                    client.finalize().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = node.shutdown().unwrap();
        (report, stats)
    }

    #[test]
    fn end_to_end_session() {
        let (report, stats) = run_session(3, 5);
        assert_eq!(report.iterations_completed, 5);
        assert_eq!(report.skipped_client_iterations, 0);
        assert!(
            report.plugin_errors.is_empty(),
            "{:?}",
            report.plugin_errors
        );
        assert_eq!(stats.iterations_seen(), 5);
        // Variable u at iteration 4: 3 clients × 64 values of client-id.
        let s = stats.summary(4, "u").unwrap();
        assert_eq!(s.count, 192);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn memory_reclaimed_across_iterations() {
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(2)
            .build()
            .unwrap();
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    for it in 0..200 {
                        client.write("u", it, &vec![1.0f64; 64]).unwrap();
                        client.end_iteration(it).unwrap();
                    }
                    client.finalize().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 200);
        // 200 iterations × 2 clients × 512 B each is 204 KB if leaked. Live
        // blocks are bounded by the in-flight window the 64-slot event
        // queue admits (~33 KB), so any value far above that is a leak.
        assert!(
            report.peak_segment_bytes <= 100 * 1024,
            "peak {} suggests blocks leak",
            report.peak_segment_bytes
        );
        assert_eq!(node.segment_occupancy(), 0.0);
    }

    #[test]
    fn unknown_variable_and_layout_mismatch() {
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        let client = node.client(0).unwrap();
        assert!(matches!(
            client.write("nope", 0, &[0.0f64; 64]),
            Err(DamarisError::UnknownVariable(_))
        ));
        assert!(matches!(
            client.write("u", 0, &[0.0f64; 32]),
            Err(DamarisError::LayoutMismatch { .. })
        ));
        client.finalize().unwrap();
        node.shutdown().unwrap();
    }

    #[test]
    fn zero_copy_alloc_commit_path() {
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let client = node.client(0).unwrap();
        let mut w = client.alloc("u", 0).unwrap();
        assert!(!w.is_skipped());
        w.fill_pod(&[2.5f64; 64]);
        assert_eq!(w.commit().unwrap(), WriteStatus::Written);
        client.end_iteration(0).unwrap();
        client.finalize().unwrap();
        node.shutdown().unwrap();
        assert_eq!(stats.summary(0, "u").unwrap().mean, 2.5);
    }

    #[test]
    fn dynamic_layouts_upgrade_default_allocator_to_buddy() {
        // A configuration with a dynamic layout and the *default*
        // size-class allocator must still serve variable-size writes off
        // the mutex: the builder upgrades the segment to the buddy tier
        // (size-class would silently route every AMR write to first-fit).
        let xml = r#"
          <simulation name="amr-default">
            <architecture>
              <dedicated cores="1"/>
              <buffer size="1048576"/>
              <queue capacity="64"/>
            </architecture>
            <data>
              <layout name="row" type="f64" dimensions="64"/>
              <layout name="patch" type="f64" dimensions="dynamic" max_size="65536"/>
              <variable name="u" layout="row"/>
              <variable name="p" layout="patch"/>
            </data>
          </simulation>"#;
        let node = DamarisNode::builder()
            .config_str(xml)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        let client = node.client(0).unwrap();
        for it in 0..3 {
            // Fixed layout still hits its exact class...
            client.write("u", it, &[1.0f64; 64]).unwrap();
            // ...while per-write sizes go through the buddy orders.
            let cells = 100 + it as usize * 37;
            client.write("p", it, &vec![2.0f64; cells]).unwrap();
            client.end_iteration(it).unwrap();
        }
        client.finalize().unwrap();
        let stats = node.segment_stats();
        assert!(stats.class_hits > 0, "fixed layout served by its class");
        assert!(
            stats.buddy_hits > 0,
            "dynamic writes must hit the buddy tier under the default allocator"
        );
        node.shutdown().unwrap();
    }

    #[test]
    fn builder_validation() {
        assert!(DamarisNode::builder().build().is_err(), "missing config");
        assert!(
            DamarisNode::builder()
                .config_str(XML)
                .unwrap()
                .clients(0)
                .build()
                .is_err(),
            "zero clients"
        );
        let sync_xml = XML.replace("cores=\"1\"", "cores=\"0\"");
        assert!(
            DamarisNode::builder()
                .config_str(&sync_xml)
                .unwrap()
                .build()
                .is_err(),
            "dedicated=0 must point at baselines"
        );
    }

    #[test]
    fn double_shutdown_rejected() {
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        node.client(0).unwrap().finalize().unwrap();
        node.shutdown().unwrap();
        assert!(node.shutdown().is_err());
    }

    #[test]
    fn end_to_end_session_sharded_transport() {
        // The same end-to-end flow with <queue kind="sharded">: per-client
        // rings, one stealing consumer.
        let xml = XML.replace(
            "<queue capacity=\"64\"/>",
            "<queue capacity=\"64\" kind=\"sharded\"/>",
        );
        let node = DamarisNode::builder()
            .config_str(&xml)
            .unwrap()
            .clients(3)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    for it in 0..5 {
                        let data = vec![client.id() as f64; 64];
                        assert_eq!(client.write("u", it, &data).unwrap(), WriteStatus::Written);
                        assert_eq!(client.write("v", it, &data).unwrap(), WriteStatus::Written);
                        client.end_iteration(it).unwrap();
                    }
                    client.finalize().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 5);
        assert_eq!(report.skipped_client_iterations, 0);
        assert!(
            report.plugin_errors.is_empty(),
            "{:?}",
            report.plugin_errors
        );
        assert_eq!(stats.iterations_seen(), 5);
        let s = stats.summary(4, "u").unwrap();
        assert_eq!(s.count, 192);
    }

    #[test]
    fn builder_transport_override_beats_xml() {
        use damaris_shm::transport::TransportKind;
        // XML says mutex (default); the builder forces sharded. One
        // quick session proves the override path works end to end.
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(2)
            .transport(TransportKind::Sharded)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        for client in node.clients() {
            client.write("u", 0, &vec![1.0f64; 64]).unwrap();
            client.end_iteration(0).unwrap();
            client.finalize().unwrap();
        }
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 1);
        assert_eq!(stats.iterations_seen(), 1);
    }

    #[test]
    fn multiple_dedicated_cores_sharded_transport() {
        // 3 stealing consumers over 4 client shards; completion logic
        // must hold under cross-core racing and stealing.
        let xml = XML.replace("cores=\"1\"", "cores=\"3\"").replace(
            "<queue capacity=\"64\"/>",
            "<queue capacity=\"64\" kind=\"sharded\"/>",
        );
        let node = DamarisNode::builder()
            .config_str(&xml)
            .unwrap()
            .clients(4)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    for it in 0..20 {
                        client.write("u", it, &vec![1.0f64; 64]).unwrap();
                        client.end_iteration(it).unwrap();
                    }
                    client.finalize().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 20);
        assert_eq!(stats.iterations_seen(), 20);
    }

    #[test]
    fn multiple_dedicated_cores() {
        let xml = XML.replace("cores=\"1\"", "cores=\"3\"");
        let node = DamarisNode::builder()
            .config_str(&xml)
            .unwrap()
            .clients(4)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    for it in 0..20 {
                        client.write("u", it, &vec![1.0f64; 64]).unwrap();
                        client.end_iteration(it).unwrap();
                    }
                    client.finalize().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 20);
        assert_eq!(stats.iterations_seen(), 20);
    }

    #[test]
    fn user_signals_reach_matching_plugins() {
        use crate::plugins::{Plugin, SignalCtx};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let xml = XML.replace(
            "</simulation>",
            r#"<actions>
                 <action name="snap" plugin="snapshotter" event="take-snapshot"/>
               </actions></simulation>"#,
        );
        struct Snapshotter {
            hits: Arc<AtomicUsize>,
            blocks_seen: Arc<AtomicUsize>,
        }
        impl Plugin for Snapshotter {
            fn name(&self) -> &str {
                "snapshotter"
            }
            fn on_signal(&self, ctx: &SignalCtx<'_>) -> Result<(), String> {
                assert_eq!(ctx.name, "take-snapshot");
                self.hits.fetch_add(1, Ordering::SeqCst);
                self.blocks_seen
                    .fetch_add(ctx.blocks.len(), Ordering::SeqCst);
                Ok(())
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let blocks_seen = Arc::new(AtomicUsize::new(0));
        let node = DamarisNode::builder()
            .config_str(&xml)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        node.register_plugin(Arc::new(Snapshotter {
            hits: hits.clone(),
            blocks_seen: blocks_seen.clone(),
        }));
        let client = node.client(0).unwrap();
        // Publish a block, then raise the signal while the iteration is
        // still open: the plugin sees the in-flight data.
        client.write("u", 0, &[4.0f64; 64]).unwrap();
        client.signal("take-snapshot", 0).unwrap();
        client.signal("unrelated-event", 0).unwrap();
        client.end_iteration(0).unwrap();
        client.finalize().unwrap();
        node.shutdown().unwrap();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "only the matching event fires"
        );
        assert_eq!(
            blocks_seen.load(Ordering::SeqCst),
            1,
            "in-flight block visible"
        );
    }

    #[test]
    fn action_frequency_thins_plugin_invocations() {
        let xml = XML.replace(
            "</simulation>",
            r#"<actions>
                 <action name="s" plugin="stats" event="end-of-iteration" frequency="3"/>
               </actions></simulation>"#,
        );
        let node = DamarisNode::builder()
            .config_str(&xml)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        let stats = Arc::new(StatsPlugin::new());
        node.register_plugin(stats.clone());
        let client = node.client(0).unwrap();
        for it in 0..7 {
            client.write("u", it, &[1.0f64; 64]).unwrap();
            client.end_iteration(it).unwrap();
        }
        client.finalize().unwrap();
        let report = node.shutdown().unwrap();
        assert_eq!(report.iterations_completed, 7, "all iterations complete");
        assert_eq!(stats.iterations_seen(), 3, "plugin fired at 0, 3, 6 only");
        assert!(stats.summary(3, "u").is_some());
        assert!(stats.summary(4, "u").is_none());
    }

    #[test]
    fn register_plugin_replaces_same_name() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let node = DamarisNode::builder()
            .config_str(XML)
            .unwrap()
            .clients(1)
            .build()
            .unwrap();
        let first = Arc::new(AtomicUsize::new(0));
        let second = Arc::new(AtomicUsize::new(0));
        let f1 = first.clone();
        let f2 = second.clone();
        node.register_plugin(Arc::new(crate::plugins::FnPlugin::new(
            "probe",
            move |_| {
                f1.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )));
        node.register_plugin(Arc::new(crate::plugins::FnPlugin::new(
            "probe",
            move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )));
        let client = node.client(0).unwrap();
        client.write("u", 0, &[0.0f64; 64]).unwrap();
        client.end_iteration(0).unwrap();
        client.finalize().unwrap();
        node.shutdown().unwrap();
        assert_eq!(
            first.load(Ordering::SeqCst),
            0,
            "replaced plugin never fires"
        );
        assert_eq!(second.load(Ordering::SeqCst), 1);
    }
}
