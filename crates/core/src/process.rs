//! Process-mode Damaris: clients and the dedicated core as separate OS
//! **processes**, exactly like the original middleware's MPI ranks.
//!
//! The thread-mode [`crate::DamarisNode`] shares one address space, which
//! makes its shared segment and event queue trivially "shared". The paper's
//! architecture is stronger: every core of an SMP node is its own MPI
//! process, the segment is a POSIX shared-memory object all of them map,
//! and events travel through real IPC. This module reproduces that
//! boundary on top of two substrate pieces:
//!
//! * a [`mini_mpi`] **socket world** ([`mini_mpi::World::run_spawned`]) —
//!   one process per rank, envelopes over Unix-domain sockets;
//! * a [`damaris_shm::ShmFile`] — a `/dev/shm` file every rank maps, so
//!   block payloads move through genuine shared memory while only tiny
//!   *descriptors* (variable id, iteration, file offset, length) cross
//!   the socket.
//!
//! ## Roles and protocol
//!
//! Rank 0 is the dedicated core ([`ProcessServer`]); ranks 1.. are
//! clients ([`ProcessClient`]). The shared file is partitioned into one
//! slice per client; each client lays a private allocator
//! ([`damaris_shm::SharedSegment::over_mapping`]) over its slice, so
//! allocation never needs cross-process coordination. A write is: carve a
//! block, one memcpy into the mapping, send a descriptor (§IV.B's "the
//! time to write … is the time required to write in shared-memory").
//!
//! Flow control is iteration-grained: the server acknowledges an
//! iteration once every client has ended it and its blocks are consumed;
//! clients keep at most [`ACK_WINDOW`] iterations of blocks alive before
//! blocking on acknowledgements — the same bounded-buffer behaviour the
//! thread-mode segment enforces by occupancy, expressed over messages
//! (the server cannot free ranges in another process's allocator).

use std::collections::HashMap;
use std::sync::Arc;

use damaris_shm::{BlockRef, SharedSegment, ShmFile};
use damaris_xml::schema::{AllocatorKind, Configuration};
use damaris_xml::VarId;
use mini_mpi::{Comm, Source};

use crate::error::{DamarisError, DamarisResult};

/// World rank of the dedicated core.
pub const DEDICATED_RANK: usize = 0;

/// Iterations a client may keep un-acknowledged before `end_iteration`
/// blocks (bounded staging, like the thread-mode segment watermark).
pub const ACK_WINDOW: u64 = 2;

/// Client → server messages (tag [`TAG_MSG`]), `u64`-encoded with a
/// leading kind word.
const TAG_MSG: u32 = 1;
/// Server → client iteration acknowledgements (tag [`TAG_ACK`]).
const TAG_ACK: u32 = 2;

const KIND_WRITE: u64 = 1;
const KIND_END: u64 = 2;
const KIND_FIN: u64 = 3;

/// Where the node's segment file lives, given a directory every rank can
/// derive (e.g. [`mini_mpi::World::spawn_dir`]).
pub fn segment_path(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join("damaris-segment.shm")
}

fn slice_bytes(cfg: &Configuration, clients: usize) -> DamarisResult<usize> {
    let align = damaris_shm::segment::BLOCK_ALIGN;
    let slice = (cfg.architecture.buffer_size / clients.max(1)) / align * align;
    let largest = cfg
        .registry()
        .distinct_byte_sizes()
        .into_iter()
        .max()
        .unwrap_or(0);
    if slice < largest.max(align) {
        return Err(DamarisError::InvalidState(format!(
            "buffer of {} bytes over {clients} clients leaves {slice}-byte slices, \
             smaller than the largest declared layout ({largest} bytes)",
            cfg.architecture.buffer_size
        )));
    }
    Ok(slice)
}

/// What the dedicated core does with arriving blocks (the process-mode
/// analogue of a plugin).
pub trait ProcessSink {
    /// One block arrived: variable, iteration, writing client (1-based
    /// world rank), and the block's bytes viewed in place in the mapping.
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]);
    /// Every client ended `iteration` and all its blocks were delivered.
    fn on_iteration_complete(&mut self, iteration: u64) {
        let _ = iteration;
    }
}

/// A [`ProcessSink`] computing per-variable f64 statistics — enough for
/// the examples and tests to verify end-to-end data integrity.
#[derive(Debug, Default)]
pub struct StatsSink {
    /// `(iteration, var_index)` → (count, sum, min, max).
    per_var: HashMap<(u64, usize), (u64, f64, f64, f64)>,
    /// Iterations completed, in completion order.
    pub completed: Vec<u64>,
}

impl StatsSink {
    /// New, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(count, sum, min, max)` of a variable's f64 values at an iteration.
    pub fn summary(&self, iteration: u64, var: VarId) -> Option<(u64, f64, f64, f64)> {
        self.per_var.get(&(iteration, var.index())).copied()
    }
}

impl ProcessSink for StatsSink {
    fn on_block(&mut self, var: VarId, iteration: u64, _source: usize, data: &[u8]) {
        let entry = self.per_var.entry((iteration, var.index())).or_insert((
            0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ));
        for chunk in data.chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            entry.0 += 1;
            entry.1 += v;
            entry.2 = entry.2.min(v);
            entry.3 = entry.3.max(v);
        }
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        self.completed.push(iteration);
    }
}

/// Summary returned by [`ProcessServer::serve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Iterations fully completed (all clients, all blocks).
    pub iterations_completed: u64,
    /// Blocks consumed.
    pub blocks_received: u64,
    /// Payload bytes consumed out of the shared mapping.
    pub bytes_received: u64,
}

#[derive(Default)]
struct IterationState {
    ended_clients: usize,
    announced_writes: u64,
    received_writes: u64,
}

/// The dedicated-core role: owns the segment file, consumes descriptors,
/// reads blocks in place, acknowledges completed iterations.
pub struct ProcessServer {
    cfg: Arc<Configuration>,
    shm: Arc<ShmFile>,
}

impl ProcessServer {
    /// Create the segment file (sized from the configuration's buffer,
    /// one slice per client) and synchronize with the clients. Must be
    /// called by rank [`DEDICATED_RANK`] of `comm`; every rank must enter
    /// its constructor at the same time (internal barrier).
    pub fn new(comm: &Comm, cfg: Configuration, dir: &std::path::Path) -> DamarisResult<Self> {
        assert_eq!(comm.rank(), DEDICATED_RANK, "server must be rank 0");
        let clients = comm.size() - 1;
        if clients == 0 {
            return Err(DamarisError::InvalidState(
                "a process node needs at least one client rank".into(),
            ));
        }
        let slice = slice_bytes(&cfg, clients)?;
        let shm = ShmFile::create(segment_path(dir), slice * clients)?;
        comm.barrier(); // clients may open the file now
        Ok(ProcessServer {
            cfg: Arc::new(cfg),
            shm: Arc::new(shm),
        })
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Serve until every client finalizes; blocks are handed to `sink`
    /// as views into the shared mapping (no copies).
    pub fn serve(&self, comm: &Comm, sink: &mut dyn ProcessSink) -> DamarisResult<ServeReport> {
        let clients = comm.size() - 1;
        let mut report = ServeReport::default();
        let mut iterations: HashMap<u64, IterationState> = HashMap::new();
        let mut finalized = 0usize;
        while finalized < clients {
            let (msg, source) = comm.recv_with_source::<u64>(Source::Any, TAG_MSG);
            match msg.first().copied() {
                Some(KIND_WRITE) => {
                    let [_, var_raw, iteration, offset, len] = msg[..] else {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed write descriptor from rank {source}: {msg:?}"
                        )));
                    };
                    let var = VarId::from_raw(var_raw as u32);
                    self.shm.with_bytes(offset as usize, len as usize, |bytes| {
                        sink.on_block(var, iteration, source, bytes)
                    });
                    report.blocks_received += 1;
                    report.bytes_received += len;
                    iterations.entry(iteration).or_default().received_writes += 1;
                }
                Some(KIND_END) => {
                    let [_, iteration, writes] = msg[..] else {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed end-of-iteration from rank {source}: {msg:?}"
                        )));
                    };
                    let state = iterations.entry(iteration).or_default();
                    state.ended_clients += 1;
                    state.announced_writes += writes;
                    if state.ended_clients == clients {
                        // FIFO per (source, tag) guarantees each client's
                        // writes precede its END, so everything announced
                        // has been consumed; this is a pure sanity check.
                        debug_assert_eq!(state.received_writes, state.announced_writes);
                        iterations.remove(&iteration);
                        sink.on_iteration_complete(iteration);
                        report.iterations_completed += 1;
                        for client in 1..=clients {
                            comm.send(client, TAG_ACK, &[iteration]);
                        }
                    }
                }
                Some(KIND_FIN) => finalized += 1,
                other => {
                    return Err(DamarisError::InvalidState(format!(
                        "unknown process-mode message kind {other:?} from rank {source}"
                    )));
                }
            }
        }
        Ok(report)
    }
}

/// The client role: a private allocator over this rank's slice of the
/// shared file, plus the descriptor protocol to the dedicated core.
pub struct ProcessClient {
    cfg: Arc<Configuration>,
    seg: SharedSegment,
    /// File offset of this client's slice inside the mapping.
    base: usize,
    /// Blocks alive until the server acknowledges their iteration.
    pending: HashMap<u64, Vec<BlockRef>>,
    /// Writes published for the currently open iteration.
    writes_this_iteration: u64,
    /// Highest iteration acknowledged by the server (None before any).
    acked: Option<u64>,
}

impl ProcessClient {
    /// Join the node as client rank `comm.rank()` (≥ 1): wait for the
    /// server to create the segment file, map it, and carve this rank's
    /// slice. Every rank must enter its constructor at the same time
    /// (internal barrier).
    pub fn new(comm: &Comm, cfg: Configuration, dir: &std::path::Path) -> DamarisResult<Self> {
        assert_ne!(comm.rank(), DEDICATED_RANK, "rank 0 is the dedicated core");
        let clients = comm.size() - 1;
        let slice = slice_bytes(&cfg, clients)?;
        comm.barrier(); // server created the file before this returns
        let shm = Arc::new(ShmFile::open(segment_path(dir))?);
        let base = (comm.rank() - 1) * slice;
        let classes = match cfg.architecture.allocator {
            AllocatorKind::SizeClass => cfg.registry().distinct_byte_sizes(),
            AllocatorKind::FirstFit => Vec::new(),
        };
        let seg = SharedSegment::over_mapping(&shm, base, slice, &classes)?;
        Ok(ProcessClient {
            cfg: Arc::new(cfg),
            seg,
            base,
            pending: HashMap::new(),
            writes_this_iteration: 0,
            acked: None,
        })
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Occupancy of this client's slice in `[0, 1]`.
    pub fn slice_occupancy(&self) -> f64 {
        self.seg.occupancy()
    }

    /// Lifetime allocator counters of this client's slice.
    pub fn slice_stats(&self) -> damaris_shm::SegmentStats {
        self.seg.stats()
    }

    /// Publish one variable for one iteration: allocate in the shared
    /// mapping, one memcpy, one descriptor message.
    pub fn write<T: damaris_shm::Pod>(
        &mut self,
        comm: &Comm,
        variable: &str,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<()> {
        let var = self
            .cfg
            .registry()
            .var_id(variable)
            .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))?;
        let expected = self.cfg.registry().byte_size(var);
        let bytes = std::mem::size_of_val(data);
        if bytes != expected {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected,
                got: bytes,
            });
        }
        // Opportunistically retire acknowledged iterations so the slice
        // recycles without blocking.
        self.drain_acks(comm);
        // On exhaustion, wait on *acknowledgements*, not on the segment
        // condvar: in process mode every free of this slice happens on
        // this very thread (ack retirement), so blocking inside the
        // allocator could never be woken — the ack message is the real
        // "space freed" signal here.
        let mut block = loop {
            match self.seg.allocate(bytes) {
                Ok(b) => break b,
                Err(damaris_shm::ShmError::OutOfMemory { .. }) => {
                    // Acks only ever retire iterations whose END was sent;
                    // if nothing older than the current iteration is
                    // staged, no ack can come and the slice genuinely
                    // cannot hold this iteration's working set.
                    if !self.pending.keys().any(|&k| k != iteration) {
                        return Err(DamarisError::InvalidState(format!(
                            "client slice of {} bytes cannot hold one iteration's blocks \
                             (writing '{variable}', {bytes} bytes): grow <buffer size> or \
                             reduce per-iteration data",
                            self.seg.capacity()
                        )));
                    }
                    self.wait_ack(comm);
                }
                Err(e) => return Err(e.into()),
            }
        };
        block.write_pod(data);
        let offset = (self.base + block.offset()) as u64;
        let frozen = block.freeze();
        comm.send(
            DEDICATED_RANK,
            TAG_MSG,
            &[
                KIND_WRITE,
                u64::from(var.raw()),
                iteration,
                offset,
                bytes as u64,
            ],
        );
        self.pending.entry(iteration).or_default().push(frozen);
        self.writes_this_iteration += 1;
        Ok(())
    }

    /// Mark `iteration` finished. Blocks while more than [`ACK_WINDOW`]
    /// iterations are staged un-acknowledged.
    pub fn end_iteration(&mut self, comm: &Comm, iteration: u64) -> DamarisResult<()> {
        comm.send(
            DEDICATED_RANK,
            TAG_MSG,
            &[KIND_END, iteration, self.writes_this_iteration],
        );
        self.writes_this_iteration = 0;
        self.drain_acks(comm);
        while self.pending.len() as u64 > ACK_WINDOW {
            self.wait_ack(comm);
        }
        Ok(())
    }

    /// Announce that this client is done, then wait for every staged
    /// iteration to be acknowledged (so the slice reads empty).
    pub fn finalize(mut self, comm: &Comm) -> DamarisResult<()> {
        while !self.pending.is_empty() {
            self.wait_ack(comm);
        }
        comm.send(DEDICATED_RANK, TAG_MSG, &[KIND_FIN]);
        Ok(())
    }

    fn retire(&mut self, iteration: u64) {
        self.acked = Some(self.acked.map_or(iteration, |a| a.max(iteration)));
        // Dropping the BlockRefs frees the ranges back into this slice's
        // allocator (class queues first — the zero-lock recycle path).
        self.pending.remove(&iteration);
    }

    fn drain_acks(&mut self, comm: &Comm) {
        while let Some((ack, _)) = comm.try_recv::<u64>(Source::Rank(DEDICATED_RANK), TAG_ACK) {
            self.retire(ack[0]);
        }
    }

    fn wait_ack(&mut self, comm: &Comm) {
        let ack = comm.recv::<u64>(Source::Rank(DEDICATED_RANK), TAG_ACK);
        self.retire(ack[0]);
    }
}

impl std::fmt::Debug for ProcessClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessClient")
            .field("base", &self.base)
            .field("pending_iterations", &self.pending.len())
            .field("acked", &self.acked)
            .finish()
    }
}
