//! Process-mode Damaris: clients and the dedicated core as separate OS
//! **processes**, exactly like the original middleware's MPI ranks.
//!
//! The thread-mode [`crate::DamarisNode`] shares one address space, which
//! makes its shared segment and event queue trivially "shared". The paper's
//! architecture is stronger: every core of an SMP node is its own MPI
//! process, the segment is a POSIX shared-memory object all of them map,
//! and events travel through real IPC. This module reproduces that
//! boundary on top of two substrate pieces:
//!
//! * a [`mini_mpi`] **socket world** ([`mini_mpi::World::run_spawned`]) —
//!   one process per rank, envelopes over Unix-domain sockets;
//! * a [`damaris_shm::ShmFile`] — a `/dev/shm` file every rank maps, so
//!   block payloads move through genuine shared memory while only tiny
//!   *descriptors* (variable id, iteration, file offset, length) cross
//!   the socket.
//!
//! ## Roles and protocol
//!
//! Rank 0 is the dedicated core ([`ProcessServer`]); ranks 1.. are
//! clients ([`ProcessClient`]). The shared file is partitioned into one
//! slice per client; each client lays a private allocator
//! ([`damaris_shm::SharedSegment::over_mapping`]) over its slice, so
//! allocation never needs cross-process coordination. A write is: carve a
//! block, one memcpy into the mapping, append a 3-word descriptor to the
//! iteration's envelope (§IV.B's "the time to write … is the time
//! required to write in shared-memory"). Descriptors are **coalesced**:
//! `end_iteration` flushes the whole client-iteration — every write
//! descriptor plus the end marker — as one framed message, so the socket
//! carries one envelope per client per iteration instead of one message
//! per block.
//!
//! Flow control is iteration-grained: the server acknowledges an
//! iteration once every client has ended it and its blocks are consumed;
//! clients keep at most [`ACK_WINDOW`] iterations of blocks alive before
//! blocking on acknowledgements — the same bounded-buffer behaviour the
//! thread-mode segment enforces by occupancy, expressed over messages
//! (the server cannot free ranges in another process's allocator).
//!
//! ## API parity with thread mode
//!
//! The client implements the full paper surface at parity with
//! [`crate::DamarisClient`]: `write`/`write_id` returning
//! [`WriteStatus`], zero-copy [`ProcessClient::alloc`] →
//! [`ProcessClient::commit`] over the shared mapping, user
//! [`ProcessClient::signal`]s delivered to the dedicated core
//! (`KIND_SIGNAL` descriptors → [`ProcessSink::on_signal`]),
//! [`SkipMode::DropIteration`] admission/exhaustion semantics, and the
//! lock-free latency histogram behind [`ProcessClient::stats`]. The
//! recommended way to consume all of it is through the unified
//! [`crate::facade::SimHandle`] facade: [`ProcessHandle`] bundles a
//! client with its communicator so simulation code never threads a
//! [`Comm`] through every call.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use damaris_shm::{Block, BlockRef, SharedSegment, ShmFile};
use damaris_xml::schema::{AllocatorKind, Configuration, SkipMode};
use damaris_xml::{EventId, VarId};
use mini_mpi::{Comm, Source};

use crate::client::{ClientStats, StatsRecorder, WriteStatus};
use crate::error::{DamarisError, DamarisResult};
use crate::facade::{block_digest, check_layout, resolve_var, SimHandle, SimWriter};
use crate::policy::SkipPolicy;

/// World rank of the dedicated core.
pub const DEDICATED_RANK: usize = 0;

/// Iterations a client may keep un-acknowledged before `end_iteration`
/// blocks (bounded staging, like the thread-mode segment watermark).
pub const ACK_WINDOW: u64 = 2;

/// Client → server messages (tag [`TAG_MSG`]), `u64`-encoded with a
/// leading kind word.
const TAG_MSG: u32 = 1;
/// Server → client iteration acknowledgements (tag [`TAG_ACK`]).
const TAG_ACK: u32 = 2;

const KIND_WRITE: u64 = 1;
const KIND_END: u64 = 2;
const KIND_FIN: u64 = 3;
/// A user signal: `[KIND_SIGNAL, event_id, iteration]` — the process-mode
/// `damaris_signal`, firing [`ProcessSink::on_signal`] on the dedicated
/// core. Signals stay their own immediate messages (they are
/// order-independent with respect to writes), everything else coalesces
/// into the iteration envelope.
const KIND_SIGNAL: u64 = 4;
/// One client-iteration coalesced into a single framed envelope:
/// `[KIND_BATCH, iteration, writes, skipped, (var, offset, len) × writes]`
/// — flushed on `end_iteration`, replacing `writes` individual
/// [`KIND_WRITE`] descriptors plus the [`KIND_END`] marker with **one
/// message per client per iteration**. The server still understands the
/// unbatched kinds, so both framings interoperate.
const KIND_BATCH: u64 = 5;

/// Words of the [`KIND_BATCH`] envelope header preceding the descriptor
/// triples.
const BATCH_HEADER: usize = 4;

/// Where the node's segment file lives, given a directory every rank can
/// derive (e.g. [`mini_mpi::World::spawn_dir`]).
pub fn segment_path(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join("damaris-segment.shm")
}

fn slice_bytes(cfg: &Configuration, clients: usize) -> DamarisResult<usize> {
    let align = damaris_shm::segment::BLOCK_ALIGN;
    let slice = (cfg.architecture.buffer_size / clients.max(1)) / align * align;
    // Fixed layouts bound themselves; dynamic layouts count through
    // their declared `max_size` (an unbounded dynamic layout is checked
    // per write against the live slice instead).
    let largest = cfg
        .registry()
        .vars()
        .filter_map(|(_, e)| e.layout.max_byte_size())
        .max()
        .unwrap_or(0);
    if slice < largest.max(align) {
        return Err(DamarisError::InvalidState(format!(
            "buffer of {} bytes over {clients} clients leaves {slice}-byte slices, \
             smaller than the largest declared layout ({largest} bytes)",
            cfg.architecture.buffer_size
        )));
    }
    Ok(slice)
}

/// What the dedicated core does with arriving blocks and signals (the
/// process-mode analogue of a plugin).
pub trait ProcessSink {
    /// One block arrived: variable, iteration, writing client (1-based
    /// world rank), and the block's bytes viewed in place in the mapping.
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]);
    /// Every client ended `iteration` and all its blocks were delivered.
    fn on_iteration_complete(&mut self, iteration: u64) {
        let _ = iteration;
    }
    /// A client raised a user event (the process-mode analogue of a
    /// signal-triggered action; undeclared names never reach here — they
    /// are filtered at the client edge, as in thread mode).
    fn on_signal(&mut self, event: EventId, iteration: u64, source: usize) {
        let _ = (event, iteration, source);
    }
}

/// A [`ProcessSink`] computing per-variable f64 statistics — enough for
/// the examples and tests to verify end-to-end data integrity.
#[derive(Debug, Default)]
pub struct StatsSink {
    /// `(iteration, var_index)` → (count, sum, min, max).
    per_var: HashMap<(u64, usize), (u64, f64, f64, f64)>,
    /// Iterations completed, in completion order.
    pub completed: Vec<u64>,
    /// `(event_index, iteration, source)` of every delivered signal.
    pub signals: Vec<(usize, u64, usize)>,
}

impl StatsSink {
    /// New, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(count, sum, min, max)` of a variable's f64 values at an iteration.
    pub fn summary(&self, iteration: u64, var: VarId) -> Option<(u64, f64, f64, f64)> {
        self.per_var.get(&(iteration, var.index())).copied()
    }
}

impl ProcessSink for StatsSink {
    fn on_block(&mut self, var: VarId, iteration: u64, _source: usize, data: &[u8]) {
        let entry = self.per_var.entry((iteration, var.index())).or_insert((
            0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ));
        for chunk in data.chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            entry.0 += 1;
            entry.1 += v;
            entry.2 = entry.2.min(v);
            entry.3 = entry.3.max(v);
        }
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        self.completed.push(iteration);
    }

    fn on_signal(&mut self, event: EventId, iteration: u64, source: usize) {
        self.signals.push((event.index(), iteration, source));
    }
}

/// A [`ProcessSink`] folding consumed blocks into the world-independent
/// digest [`crate::facade::SimReport`] reports. Blocks are staged per
/// iteration and folded in only when the iteration *completes* — the
/// thread-mode launcher computes its digest in an end-of-iteration
/// plugin, so blocks of never-completed iterations must not count on
/// either backend or the two worlds' digests would diverge.
#[derive(Debug, Default)]
pub struct DigestSink {
    digest: u64,
    staged: HashMap<u64, u64>,
}

impl DigestSink {
    /// The accumulated order-independent digest (completed iterations).
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl ProcessSink for DigestSink {
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]) {
        // `source` is a 1-based world rank; the digest uses 0-based
        // client indices so it matches the thread-mode plugin.
        let sum = self.staged.entry(iteration).or_default();
        *sum = sum.wrapping_add(block_digest(
            var.index() as u64,
            iteration,
            (source - 1) as u64,
            data,
        ));
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        if let Some(sum) = self.staged.remove(&iteration) {
            self.digest = self.digest.wrapping_add(sum);
        }
    }
}

/// Summary returned by [`ProcessServer::serve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Iterations fully completed (all clients, all blocks).
    pub iterations_completed: u64,
    /// Blocks consumed.
    pub blocks_received: u64,
    /// Payload bytes consumed out of the shared mapping.
    pub bytes_received: u64,
    /// Client-iterations the skip policy dropped (announced by clients
    /// in their end-of-iteration descriptors).
    pub skipped_client_iterations: u64,
    /// User signals delivered to the sink.
    pub signals_delivered: u64,
    /// World ranks of clients that died mid-run (reliable heartbeat mesh
    /// only — see [`mini_mpi::SpawnOptions::heartbeat_ms`]); ascending.
    pub dead_ranks: Vec<usize>,
    /// Whether the serve ran in degraded mode: at least one client died
    /// and its staged iterations were closed without it (a dead client
    /// counts as "ended" for every iteration, so survivors keep
    /// completing instead of wedging the node).
    pub degraded: bool,
}

#[derive(Default)]
struct IterationState {
    /// World ranks (1-based clients) that ended this iteration.
    ended: std::collections::BTreeSet<usize>,
    announced_writes: u64,
    received_writes: u64,
}

/// Complete `iteration` if every client has either ended it or died:
/// fire the sink callback, count it, and acknowledge the survivors.
fn try_complete_iteration(
    comm: &Comm,
    clients: usize,
    dead: &std::collections::BTreeSet<usize>,
    iterations: &mut HashMap<u64, IterationState>,
    report: &mut ServeReport,
    sink: &mut dyn ProcessSink,
    iteration: u64,
) {
    let Some(state) = iterations.get(&iteration) else {
        return;
    };
    if !(1..=clients).all(|c| state.ended.contains(&c) || dead.contains(&c)) {
        return;
    }
    if dead.is_empty() {
        // A dead client may have announced writes whose unbatched
        // descriptors never arrived; only the fault-free path promises
        // announced == received.
        debug_assert_eq!(state.received_writes, state.announced_writes);
    }
    iterations.remove(&iteration);
    sink.on_iteration_complete(iteration);
    report.iterations_completed += 1;
    for client in 1..=clients {
        if !dead.contains(&client) {
            comm.send(client, TAG_ACK, &[iteration]);
        }
    }
}

/// The dedicated-core role: owns the segment file, consumes descriptors,
/// reads blocks in place, acknowledges completed iterations.
pub struct ProcessServer {
    cfg: Arc<Configuration>,
    shm: Arc<ShmFile>,
}

impl ProcessServer {
    /// Create the segment file (sized from the configuration's buffer,
    /// one slice per client) and synchronize with the clients. Must be
    /// called by rank [`DEDICATED_RANK`] of `comm`; every rank must enter
    /// its constructor at the same time (internal barrier).
    pub fn new(comm: &Comm, cfg: Configuration, dir: &std::path::Path) -> DamarisResult<Self> {
        assert_eq!(comm.rank(), DEDICATED_RANK, "server must be rank 0");
        let clients = comm.size() - 1;
        if clients == 0 {
            return Err(DamarisError::InvalidState(
                "a process node needs at least one client rank".into(),
            ));
        }
        let slice = slice_bytes(&cfg, clients)?;
        let shm = ShmFile::create(segment_path(dir), slice * clients)?;
        comm.barrier(); // clients may open the file now
        Ok(ProcessServer {
            cfg: Arc::new(cfg),
            shm: Arc::new(shm),
        })
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Serve until every client finalizes **or dies**; blocks are handed
    /// to `sink` as views into the shared mapping (no copies).
    ///
    /// With the reliable heartbeat mesh, a client crash does not wedge
    /// the node: the dead rank is recorded in
    /// [`ServeReport::dead_ranks`], it counts as "ended" for every
    /// staged and future iteration, and the survivors' iterations keep
    /// completing ([`ServeReport::degraded`]). In the legacy EOF-only
    /// mesh a death still poisons the mailbox and this call panics, as
    /// before.
    pub fn serve(&self, comm: &Comm, sink: &mut dyn ProcessSink) -> DamarisResult<ServeReport> {
        let clients = comm.size() - 1;
        let mut report = ServeReport::default();
        let mut iterations: HashMap<u64, IterationState> = HashMap::new();
        let mut finalized: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut dead: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        // One client finished `iteration` (announcing `writes` blocks,
        // `skipped != 0` when its skip policy dropped the iteration).
        let note_end = |iterations: &mut HashMap<u64, IterationState>,
                        report: &mut ServeReport,
                        iteration: u64,
                        writes: u64,
                        skipped: u64,
                        source: usize| {
            if skipped != 0 {
                report.skipped_client_iterations += 1;
            }
            let state = iterations.entry(iteration).or_default();
            state.ended.insert(source);
            state.announced_writes += writes;
        };
        while (1..=clients).any(|c| !finalized.contains(&c) && !dead.contains(&c)) {
            let known_dead: Vec<usize> = dead.iter().copied().collect();
            let (msg, source) = match comm.recv_any_or_death::<u64>(TAG_MSG, &known_dead) {
                Ok(pair) => pair,
                Err(newly_dead) => {
                    // Degraded mode: close the dead ranks' staged
                    // iterations and keep serving the survivors.
                    for rank in newly_dead {
                        if rank != DEDICATED_RANK && rank <= clients {
                            dead.insert(rank);
                        }
                    }
                    report.degraded = true;
                    let staged: Vec<u64> = iterations.keys().copied().collect();
                    for iteration in staged {
                        try_complete_iteration(
                            comm,
                            clients,
                            &dead,
                            &mut iterations,
                            &mut report,
                            sink,
                            iteration,
                        );
                    }
                    continue;
                }
            };
            match msg.first().copied() {
                Some(KIND_WRITE) => {
                    let [_, var_raw, iteration, offset, len] = msg[..] else {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed write descriptor from rank {source}: {msg:?}"
                        )));
                    };
                    let var = VarId::from_raw(var_raw as u32);
                    self.shm.with_bytes(offset as usize, len as usize, |bytes| {
                        sink.on_block(var, iteration, source, bytes)
                    });
                    report.blocks_received += 1;
                    report.bytes_received += len;
                    iterations.entry(iteration).or_default().received_writes += 1;
                }
                Some(KIND_BATCH) => {
                    // The whole client-iteration in one envelope: header
                    // plus 3-word write descriptors, consumed in the
                    // client's publish order before the END effect.
                    let ok = msg.len() >= BATCH_HEADER
                        && (msg.len() - BATCH_HEADER) as u64 == msg[2].saturating_mul(3);
                    if !ok {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed iteration envelope from rank {source}: \
                             {} words announcing {:?} writes",
                            msg.len(),
                            msg.get(2),
                        )));
                    }
                    let (iteration, writes, skipped) = (msg[1], msg[2], msg[3]);
                    for desc in msg[BATCH_HEADER..].chunks_exact(3) {
                        let (var_raw, offset, len) = (desc[0], desc[1], desc[2]);
                        let var = VarId::from_raw(var_raw as u32);
                        self.shm.with_bytes(offset as usize, len as usize, |bytes| {
                            sink.on_block(var, iteration, source, bytes)
                        });
                        report.blocks_received += 1;
                        report.bytes_received += len;
                        iterations.entry(iteration).or_default().received_writes += 1;
                    }
                    note_end(
                        &mut iterations,
                        &mut report,
                        iteration,
                        writes,
                        skipped,
                        source,
                    );
                    try_complete_iteration(
                        comm,
                        clients,
                        &dead,
                        &mut iterations,
                        &mut report,
                        sink,
                        iteration,
                    );
                }
                Some(KIND_END) => {
                    let [_, iteration, writes, skipped] = msg[..] else {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed end-of-iteration from rank {source}: {msg:?}"
                        )));
                    };
                    // FIFO per (source, tag) guarantees each client's
                    // unbatched writes precede its END, so everything
                    // announced has been consumed by the completion check.
                    note_end(
                        &mut iterations,
                        &mut report,
                        iteration,
                        writes,
                        skipped,
                        source,
                    );
                    try_complete_iteration(
                        comm,
                        clients,
                        &dead,
                        &mut iterations,
                        &mut report,
                        sink,
                        iteration,
                    );
                }
                Some(KIND_SIGNAL) => {
                    let [_, event_raw, iteration] = msg[..] else {
                        return Err(DamarisError::InvalidState(format!(
                            "malformed signal from rank {source}: {msg:?}"
                        )));
                    };
                    sink.on_signal(EventId::from_raw(event_raw as u32), iteration, source);
                    report.signals_delivered += 1;
                }
                Some(KIND_FIN) => {
                    finalized.insert(source);
                }
                other => {
                    return Err(DamarisError::InvalidState(format!(
                        "unknown process-mode message kind {other:?} from rank {source}"
                    )));
                }
            }
        }
        report.dead_ranks = dead.into_iter().collect();
        report.degraded = !report.dead_ranks.is_empty();
        Ok(report)
    }
}

/// An in-place block being filled by the simulation in process mode (the
/// zero-copy path over the shared mapping). Obtained from
/// [`ProcessClient::alloc`], published with [`ProcessClient::commit`].
pub struct ProcessBlockWriter {
    var: VarId,
    iteration: u64,
    /// `None` when the skip policy dropped the iteration.
    block: Option<Block>,
    /// Started at [`ProcessClient::alloc`], so the recorded write time
    /// covers allocation and in-place fill — same clock placement as the
    /// thread-mode [`crate::client::BlockWriter`].
    t0: Instant,
}

impl SimWriter for ProcessBlockWriter {
    fn is_skipped(&self) -> bool {
        self.block.is_none()
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.block {
            Some(b) => b.as_mut_slice(),
            None => &mut [],
        }
    }

    fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]) {
        if let Some(b) = &mut self.block {
            b.write_pod(data);
        }
    }
}

/// The client role: a private allocator over this rank's slice of the
/// shared file, plus the descriptor protocol to the dedicated core.
///
/// This raw layer threads the [`Comm`] through every call; use
/// [`ProcessHandle`] (or [`crate::Damaris`]) for the paper-shaped
/// comm-free surface.
pub struct ProcessClient {
    cfg: Arc<Configuration>,
    seg: SharedSegment,
    /// File offset of this client's slice inside the mapping.
    base: usize,
    /// Blocks alive until the server acknowledges their iteration.
    pending: HashMap<u64, Vec<BlockRef>>,
    /// The open iteration's coalesced [`KIND_BATCH`] envelope:
    /// [`BATCH_HEADER`] placeholder words followed by one `(var, offset,
    /// len)` triple per publish, flushed by `end_iteration` as a single
    /// message. Cleared but never shrunk, so steady-state publishing
    /// stops allocating once it reaches the working-set size.
    batch: Vec<u64>,
    /// Writes published for the currently open iteration.
    writes_this_iteration: u64,
    /// Highest iteration acknowledged by the server (None before any).
    acked: Option<u64>,
    /// Backpressure admission, identical policy engine to thread mode.
    policy: SkipPolicy,
    /// Lock-free write-latency recorder, identical to thread mode.
    stats: StatsRecorder,
    /// Whether `finalize` already ran (it is idempotent).
    finalized: bool,
}

impl ProcessClient {
    /// Join the node as client rank `comm.rank()` (≥ 1): wait for the
    /// server to create the segment file, map it, and carve this rank's
    /// slice. Every rank must enter its constructor at the same time
    /// (internal barrier).
    pub fn new(comm: &Comm, cfg: Configuration, dir: &std::path::Path) -> DamarisResult<Self> {
        assert_ne!(comm.rank(), DEDICATED_RANK, "rank 0 is the dedicated core");
        let clients = comm.size() - 1;
        let slice = slice_bytes(&cfg, clients)?;
        comm.barrier(); // server created the file before this returns
        let shm = Arc::new(ShmFile::open(segment_path(dir))?);
        let base = (comm.rank() - 1) * slice;
        let classes = cfg.registry().distinct_byte_sizes();
        // Same dynamic-aware default as `NodeBuilder`: size-class
        // upgrades to buddy when any layout is dynamic, so variable-size
        // writes never silently serialize on the slice's first-fit list.
        let allocator = match cfg.architecture.allocator {
            AllocatorKind::SizeClass if cfg.registry().any_dynamic() => AllocatorKind::Buddy,
            other => other,
        };
        let seg = match allocator {
            AllocatorKind::SizeClass => SharedSegment::over_mapping(&shm, base, slice, &classes)?,
            AllocatorKind::Buddy => {
                SharedSegment::over_mapping_with_buddy(&shm, base, slice, &classes)?
            }
            AllocatorKind::FirstFit => SharedSegment::over_mapping(&shm, base, slice, &[])?,
        };
        let policy = SkipPolicy::new(cfg.architecture.skip);
        Ok(ProcessClient {
            cfg: Arc::new(cfg),
            seg,
            base,
            pending: HashMap::new(),
            batch: Vec::new(),
            writes_this_iteration: 0,
            acked: None,
            policy,
            stats: StatsRecorder::new(),
            finalized: false,
        })
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Occupancy of this client's slice in `[0, 1]`.
    pub fn slice_occupancy(&self) -> f64 {
        self.seg.occupancy()
    }

    /// Lifetime allocator counters of this client's slice.
    pub fn slice_stats(&self) -> damaris_shm::SegmentStats {
        self.seg.stats()
    }

    /// Resolve a variable name to its interned id (shared validation
    /// with thread mode).
    pub fn var_id(&self, variable: &str) -> DamarisResult<VarId> {
        resolve_var(&self.cfg, variable)
    }

    /// Snapshot of this client's timing statistics — the same lock-free
    /// histogram thread mode reports, so per-rank instrumentation is
    /// uniform regardless of backend.
    pub fn stats(&self) -> ClientStats {
        self.stats.snapshot()
    }

    /// Iterations dropped by the skip policy so far.
    pub fn skipped_iterations(&self) -> u64 {
        self.policy.dropped_iterations()
    }

    /// Publish one variable for one iteration: allocate in the shared
    /// mapping, one memcpy, one descriptor message. Under
    /// [`SkipMode::DropIteration`] an iteration starting above the
    /// high-watermark (or exhausting the slice mid-iteration) is dropped
    /// and reported as [`WriteStatus::Skipped`] instead of stalling or
    /// erroring.
    pub fn write<T: damaris_shm::Pod>(
        &mut self,
        comm: &Comm,
        variable: &str,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let var = self.var_id(variable)?;
        self.write_id(comm, var, iteration, data)
    }

    /// [`ProcessClient::write`] with a pre-resolved [`VarId`].
    pub fn write_id<T: damaris_shm::Pod>(
        &mut self,
        comm: &Comm,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let t0 = Instant::now();
        let bytes = std::mem::size_of_val(data);
        check_layout(&self.cfg, var, bytes)?;
        let Some(mut block) = self.acquire(comm, var, iteration, bytes)? else {
            return Ok(WriteStatus::Skipped);
        };
        block.write_pod(data);
        self.publish(var, iteration, block);
        self.stats
            .record_write(t0.elapsed().as_nanos() as u64, bytes as u64);
        Ok(WriteStatus::Written)
    }

    /// Zero-copy variant: allocate the block in the shared mapping, let
    /// the caller fill it in place, then [`ProcessClient::commit`] it.
    /// The write-timing clock starts here (allocation + fill counted),
    /// matching thread mode.
    ///
    /// Variables on a `dimensions="dynamic"` layout have no fixed size —
    /// use [`ProcessClient::alloc_sized`] with this write's byte count.
    pub fn alloc(
        &mut self,
        comm: &Comm,
        variable: &str,
        iteration: u64,
    ) -> DamarisResult<ProcessBlockWriter> {
        let t0 = Instant::now();
        let var = self.var_id(variable)?;
        if self.cfg.registry().is_dynamic(var) {
            return Err(DamarisError::InvalidState(format!(
                "variable '{variable}' has a dynamic layout; use alloc_sized with this \
                 write's byte count"
            )));
        }
        let bytes = self.cfg.registry().byte_size(var);
        let block = self.acquire(comm, var, iteration, bytes)?;
        Ok(ProcessBlockWriter {
            var,
            iteration,
            block,
            t0,
        })
    }

    /// [`ProcessClient::alloc`] with a caller-supplied block length —
    /// variable-size (AMR) zero-copy writes over the shared mapping,
    /// same contract as the thread-mode `alloc_sized`.
    pub fn alloc_sized(
        &mut self,
        comm: &Comm,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<ProcessBlockWriter> {
        let t0 = Instant::now();
        let var = self.var_id(variable)?;
        check_layout(&self.cfg, var, bytes)?;
        let block = self.acquire(comm, var, iteration, bytes)?;
        Ok(ProcessBlockWriter {
            var,
            iteration,
            block,
            t0,
        })
    }

    /// Publish a block obtained from [`ProcessClient::alloc`]. The
    /// descriptor joins the iteration's coalesced envelope (no message
    /// until `end_iteration`); the communicator is kept in the signature
    /// for surface stability.
    pub fn commit(
        &mut self,
        _comm: &Comm,
        writer: ProcessBlockWriter,
    ) -> DamarisResult<WriteStatus> {
        match writer.block {
            None => Ok(WriteStatus::Skipped),
            Some(block) => {
                let bytes = block.len();
                self.publish(writer.var, writer.iteration, block);
                self.stats
                    .record_write(writer.t0.elapsed().as_nanos() as u64, bytes as u64);
                Ok(WriteStatus::Written)
            }
        }
    }

    /// Raise a user event on the dedicated core
    /// ([`ProcessSink::on_signal`]). Names no `<action>` declares are
    /// silently dropped at this edge, exactly like thread mode.
    pub fn signal(&mut self, comm: &Comm, name: &str, iteration: u64) -> DamarisResult<()> {
        let Some(event) = self.cfg.registry().event_id(name) else {
            return Ok(());
        };
        comm.send(
            DEDICATED_RANK,
            TAG_MSG,
            &[KIND_SIGNAL, u64::from(event.raw()), iteration],
        );
        Ok(())
    }

    /// Mark `iteration` finished: flush the iteration's coalesced batch
    /// envelope (all of its write descriptors plus the end-of-iteration
    /// marker in one message). Blocks while more than `ACK_WINDOW`
    /// iterations are staged un-acknowledged.
    pub fn end_iteration(&mut self, comm: &Comm, iteration: u64) -> DamarisResult<()> {
        let skipped = self.policy.was_dropped(iteration);
        if self.batch.is_empty() {
            self.batch.resize(BATCH_HEADER, 0);
        }
        self.batch[..BATCH_HEADER].copy_from_slice(&[
            KIND_BATCH,
            iteration,
            self.writes_this_iteration,
            u64::from(skipped),
        ]);
        comm.send(DEDICATED_RANK, TAG_MSG, &self.batch);
        self.batch.clear();
        self.writes_this_iteration = 0;
        self.drain_acks(comm);
        while self.pending.len() as u64 > ACK_WINDOW {
            self.wait_ack(comm);
        }
        Ok(())
    }

    /// Announce that this client is done, then wait for every staged
    /// iteration to be acknowledged (so the slice reads empty).
    /// Idempotent: repeated calls after the first are no-ops.
    pub fn finalize(&mut self, comm: &Comm) -> DamarisResult<()> {
        if self.finalized {
            return Ok(());
        }
        while !self.pending.is_empty() {
            self.wait_ack(comm);
        }
        comm.send(DEDICATED_RANK, TAG_MSG, &[KIND_FIN]);
        self.finalized = true;
        Ok(())
    }

    /// Admission plus allocation: `None` means the skip policy dropped
    /// the iteration (either at its first write or on mid-iteration
    /// slice exhaustion in drop mode).
    fn acquire(
        &mut self,
        comm: &Comm,
        var: VarId,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<Option<Block>> {
        // Opportunistically retire acknowledged iterations so the slice
        // recycles without blocking.
        self.drain_acks(comm);
        // Transport-pressure analogue: how full the bounded staging
        // window is (the slice occupancy itself is the segment signal).
        let staged = self.pending.len() as f64 / (ACK_WINDOW + 1) as f64;
        if !self.policy.admit(iteration, &self.seg, || staged) {
            self.stats.record_skip();
            return Ok(None);
        }
        loop {
            match self.seg.allocate(bytes) {
                Ok(b) => return Ok(Some(b)),
                Err(damaris_shm::ShmError::OutOfMemory { .. }) => {
                    if self.policy.mode() == SkipMode::DropIteration {
                        // §V.C.1: never stall the simulation. One
                        // non-blocking ack drain; if it retired a staged
                        // iteration, retry — otherwise lose this
                        // iteration's remaining data, exactly like the
                        // thread-mode client on segment exhaustion.
                        let before = self.pending.len();
                        self.drain_acks(comm);
                        if self.pending.len() < before {
                            continue;
                        }
                        self.policy.drop_current(iteration);
                        self.stats.record_skip();
                        return Ok(None);
                    }
                    // Block mode waits on *acknowledgements*, not on the
                    // segment condvar: in process mode every free of this
                    // slice happens on this very thread (ack retirement),
                    // so blocking inside the allocator could never be
                    // woken. Acks only ever retire iterations whose END
                    // was sent; if nothing older than the current
                    // iteration is staged, no ack can come and the slice
                    // genuinely cannot hold this iteration's working set.
                    if !self.pending.keys().any(|&k| k != iteration) {
                        return Err(DamarisError::InvalidState(format!(
                            "client slice of {} bytes cannot hold one iteration's blocks \
                             (writing '{}', {bytes} bytes): grow <buffer size> or \
                             reduce per-iteration data",
                            self.seg.capacity(),
                            self.cfg.var_name(var),
                        )));
                    }
                    self.wait_ack(comm);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn publish(&mut self, var: VarId, iteration: u64, block: Block) {
        let offset = (self.base + block.offset()) as u64;
        let bytes = block.len() as u64;
        let frozen = block.freeze();
        // No message yet: the descriptor joins the iteration's envelope,
        // sent once by `end_iteration`.
        if self.batch.is_empty() {
            self.batch.resize(BATCH_HEADER, 0);
        }
        self.batch
            .extend_from_slice(&[u64::from(var.raw()), offset, bytes]);
        self.pending.entry(iteration).or_default().push(frozen);
        self.writes_this_iteration += 1;
    }

    fn retire(&mut self, iteration: u64) {
        self.acked = Some(self.acked.map_or(iteration, |a| a.max(iteration)));
        // Dropping the BlockRefs frees the ranges back into this slice's
        // allocator (class queues first — the zero-lock recycle path).
        self.pending.remove(&iteration);
    }

    fn drain_acks(&mut self, comm: &Comm) {
        while let Some((ack, _)) = comm.try_recv::<u64>(Source::Rank(DEDICATED_RANK), TAG_ACK) {
            self.retire(ack[0]);
        }
    }

    fn wait_ack(&mut self, comm: &Comm) {
        let ack = comm.recv::<u64>(Source::Rank(DEDICATED_RANK), TAG_ACK);
        self.retire(ack[0]);
    }
}

impl std::fmt::Debug for ProcessClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessClient")
            .field("base", &self.base)
            .field("pending_iterations", &self.pending.len())
            .field("acked", &self.acked)
            .finish()
    }
}

/// A [`ProcessClient`] bundled with its communicator: the process-mode
/// implementation of [`SimHandle`], so simulation code carries one handle
/// instead of threading a [`Comm`] through every call.
pub struct ProcessHandle<'a> {
    client: ProcessClient,
    comm: &'a Comm,
}

impl<'a> ProcessHandle<'a> {
    /// Join the node as a client rank (see [`ProcessClient::new`]) and
    /// bundle the communicator.
    pub fn new(comm: &'a Comm, cfg: Configuration, dir: &std::path::Path) -> DamarisResult<Self> {
        Ok(ProcessHandle {
            client: ProcessClient::new(comm, cfg, dir)?,
            comm,
        })
    }

    /// The wrapped raw client.
    pub fn client(&self) -> &ProcessClient {
        &self.client
    }

    /// The wrapped raw client, mutably.
    pub fn client_mut(&mut self) -> &mut ProcessClient {
        &mut self.client
    }

    /// The bundled communicator.
    pub fn comm(&self) -> &Comm {
        self.comm
    }
}

impl SimHandle for ProcessHandle<'_> {
    type Writer = ProcessBlockWriter;

    fn id(&self) -> usize {
        self.comm.rank() - 1
    }

    fn config(&self) -> &Configuration {
        self.client.config()
    }

    fn var_id(&self, variable: &str) -> DamarisResult<VarId> {
        self.client.var_id(variable)
    }

    fn write_id<T: damaris_shm::segment::Pod>(
        &mut self,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        self.client.write_id(self.comm, var, iteration, data)
    }

    fn alloc(&mut self, variable: &str, iteration: u64) -> DamarisResult<Self::Writer> {
        self.client.alloc(self.comm, variable, iteration)
    }

    fn alloc_sized(
        &mut self,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<Self::Writer> {
        self.client
            .alloc_sized(self.comm, variable, iteration, bytes)
    }

    fn commit(&mut self, writer: Self::Writer) -> DamarisResult<WriteStatus> {
        self.client.commit(self.comm, writer)
    }

    fn signal(&mut self, name: &str, iteration: u64) -> DamarisResult<()> {
        self.client.signal(self.comm, name, iteration)
    }

    fn end_iteration(&mut self, iteration: u64) -> DamarisResult<()> {
        self.client.end_iteration(self.comm, iteration)
    }

    fn finalize(&mut self) -> DamarisResult<()> {
        self.client.finalize(self.comm)
    }

    fn stats(&self) -> ClientStats {
        self.client.stats()
    }

    fn skipped_iterations(&self) -> u64 {
        self.client.skipped_iterations()
    }
}
