//! Backpressure: what happens when data is produced faster than the
//! dedicated cores can drain it.
//!
//! Paper §V.C.1: "A challenging problem arises when the analysis tasks take
//! more than the duration of a simulation's time step to complete. In this
//! case it may happen that the shared memory becomes full and blocks the
//! simulation. Discussions with visualization specialists led us to the
//! choice of accepting potential loss of data rather than blocking the
//! simulation. We thus implemented in Damaris a way to automatically skip
//! some iterations of data in order to keep up with the simulation's output
//! rate."

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use damaris_shm::SharedSegment;
use damaris_xml::schema::{SkipConfig, SkipMode};
use parking_lot::Mutex;

/// Dropped iterations older than this many steps behind the newest drop
/// are pruned from the log (bounds memory over arbitrarily long runs;
/// `end_iteration` never lags the write front anywhere near this far).
const DROP_LOG_HORIZON: u64 = 1024;

/// Per-client skip-policy engine.
///
/// At the first write of each iteration the policy inspects segment
/// occupancy and event-transport pressure; in [`SkipMode::DropIteration`]
/// mode an iteration that begins above the high-watermark is dropped
/// *wholesale* (partial iterations would be useless to plugins).
/// [`SkipMode::Block`] preserves every iteration at the cost of stalling
/// the simulation.
///
/// The transport signal arrives as a plain occupancy fraction
/// ([`damaris_shm::EventProducer::pressure`]) so the policy works
/// unchanged over any [`damaris_shm::EventChannel`] implementation — for
/// the sharded transport that number is the *aggregate* occupancy across
/// every client's shard, not just this client's.
#[derive(Debug)]
pub struct SkipPolicy {
    cfg: SkipConfig,
    /// Iteration currently being evaluated (u64::MAX = none yet).
    current_iteration: AtomicU64,
    /// Whether `current_iteration` was dropped.
    current_dropped: std::sync::atomic::AtomicBool,
    /// Total iterations dropped by this client.
    dropped_total: AtomicU64,
    /// Every dropped iteration within [`DROP_LOG_HORIZON`], so
    /// [`SkipPolicy::was_dropped`] stays correct for pipelined apps that
    /// open iteration N+1 before ending iteration N (the current-slot
    /// atomics alone would forget N's verdict at N+1's first write).
    /// Touched only on drops and end-of-iteration — never on the
    /// admitted write fast path.
    dropped_log: Mutex<BTreeSet<u64>>,
}

impl SkipPolicy {
    /// Create the engine for one client.
    pub fn new(cfg: SkipConfig) -> Self {
        SkipPolicy {
            cfg,
            current_iteration: AtomicU64::new(u64::MAX),
            current_dropped: std::sync::atomic::AtomicBool::new(false),
            dropped_total: AtomicU64::new(0),
            dropped_log: Mutex::new(BTreeSet::new()),
        }
    }

    fn note_drop(&self, iteration: u64) {
        let mut log = self.dropped_log.lock();
        log.insert(iteration);
        let horizon = iteration.saturating_sub(DROP_LOG_HORIZON);
        while let Some(&oldest) = log.iter().next() {
            if oldest >= horizon {
                break;
            }
            log.remove(&oldest);
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> SkipMode {
        self.cfg.mode
    }

    /// Decide whether a write belonging to `iteration` may proceed.
    ///
    /// `transport_pressure` yields the event-transport occupancy in
    /// `[0, 1]`; it is taken lazily because computing it costs a scan over
    /// every shard's hot counters on the sharded transport, and the value
    /// only matters at the first write of a new iteration in drop mode.
    /// Returns `true` if the write should be published, `false` if the
    /// whole iteration is being dropped. The decision is made once per
    /// iteration (at its first write) and then sticks.
    pub fn admit(
        &self,
        iteration: u64,
        segment: &SharedSegment,
        transport_pressure: impl FnOnce() -> f64,
    ) -> bool {
        if self.cfg.mode == SkipMode::Block {
            return true;
        }
        let prev = self.current_iteration.swap(iteration, Ordering::AcqRel);
        if prev != iteration {
            // First write of a new iteration: evaluate pressure now.
            let pressured = segment.occupancy() >= self.cfg.high_watermark
                || transport_pressure() >= self.cfg.high_watermark;
            self.current_dropped.store(pressured, Ordering::Release);
            if pressured {
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
                self.note_drop(iteration);
            }
        }
        !self.current_dropped.load(Ordering::Acquire)
    }

    /// Force-drop `iteration` after it was already admitted — the
    /// mid-iteration escape hatch for allocation exhaustion in drop mode
    /// (process-mode slices can run out *after* admission, since admission
    /// samples occupancy only at the iteration's first write). Subsequent
    /// writes of the iteration are skipped; no-op in [`SkipMode::Block`].
    pub fn drop_current(&self, iteration: u64) {
        if self.cfg.mode == SkipMode::Block {
            return;
        }
        let prev = self.current_iteration.swap(iteration, Ordering::AcqRel);
        let already = prev == iteration && self.current_dropped.load(Ordering::Acquire);
        self.current_dropped.store(true, Ordering::Release);
        if !already {
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
        }
        self.note_drop(iteration);
    }

    /// Whether the given iteration was dropped. Correct even for
    /// pipelined apps that have already opened a later iteration by the
    /// time they end this one (within `DROP_LOG_HORIZON` = 1024 steps).
    pub fn was_dropped(&self, iteration: u64) -> bool {
        self.dropped_log.lock().contains(&iteration)
    }

    /// Total iterations dropped so far.
    pub fn dropped_iterations(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_xml::schema::{SkipConfig, SkipMode};

    fn setup(hw: f64, mode: SkipMode) -> (SkipPolicy, SharedSegment) {
        let policy = SkipPolicy::new(SkipConfig {
            mode,
            high_watermark: hw,
        });
        let seg = SharedSegment::new(1024).unwrap();
        (policy, seg)
    }

    #[test]
    fn block_mode_always_admits() {
        let (policy, seg) = setup(0.5, SkipMode::Block);
        let _hog = seg.allocate(1024).unwrap(); // 100 % occupancy
        assert!(policy.admit(0, &seg, || 0.0));
        assert_eq!(policy.dropped_iterations(), 0);
    }

    #[test]
    fn drop_mode_admits_when_quiet() {
        let (policy, seg) = setup(0.5, SkipMode::DropIteration);
        assert!(policy.admit(0, &seg, || 0.0));
        assert!(
            policy.admit(0, &seg, || 0.0),
            "same iteration stays admitted"
        );
        assert!(!policy.was_dropped(0));
    }

    #[test]
    fn drop_mode_drops_whole_iteration_under_pressure() {
        let (policy, seg) = setup(0.5, SkipMode::DropIteration);
        let hog = seg.allocate(768).unwrap(); // 75 % occupancy
        assert!(!policy.admit(1, &seg, || 0.0), "first write rejected");
        assert!(
            !policy.admit(1, &seg, || 0.0),
            "whole iteration stays rejected"
        );
        assert!(policy.was_dropped(1));
        assert_eq!(policy.dropped_iterations(), 1);
        // Pressure recedes: the *next* iteration is admitted again.
        drop(hog);
        assert!(policy.admit(2, &seg, || 0.0));
        assert_eq!(policy.dropped_iterations(), 1);
    }

    #[test]
    fn decision_sticks_even_if_pressure_changes_mid_iteration() {
        let (policy, seg) = setup(0.5, SkipMode::DropIteration);
        assert!(policy.admit(3, &seg, || 0.0), "admitted while quiet");
        let _hog = seg.allocate(1024).unwrap();
        assert!(
            policy.admit(3, &seg, || 0.0),
            "iteration already admitted; later writes of it pass too"
        );
    }

    #[test]
    fn drop_current_rejects_rest_of_iteration_once() {
        let (policy, seg) = setup(0.9, SkipMode::DropIteration);
        assert!(policy.admit(0, &seg, || 0.0), "quiet iteration admitted");
        policy.drop_current(0);
        assert!(!policy.admit(0, &seg, || 0.0), "later writes now rejected");
        assert!(policy.was_dropped(0));
        policy.drop_current(0); // idempotent
        assert_eq!(policy.dropped_iterations(), 1);
        // Block mode ignores the escape hatch entirely.
        let (policy, seg) = setup(0.9, SkipMode::Block);
        policy.drop_current(0);
        assert!(policy.admit(0, &seg, || 1.0));
        assert_eq!(policy.dropped_iterations(), 0);
    }

    #[test]
    fn dropped_verdict_survives_opening_the_next_iteration() {
        // Pipelined apps open iteration N+1 before ending N; the END of a
        // dropped N must still carry skipped=true.
        let (policy, seg) = setup(0.5, SkipMode::DropIteration);
        let hog = seg.allocate(768).unwrap(); // 75 % occupancy
        assert!(!policy.admit(5, &seg, || 0.0), "iteration 5 dropped");
        drop(hog);
        assert!(policy.admit(6, &seg, || 0.0), "iteration 6 admitted");
        assert!(policy.was_dropped(5), "5's verdict not forgotten");
        assert!(!policy.was_dropped(6));
        assert_eq!(policy.dropped_iterations(), 1);
    }

    #[test]
    fn transport_pressure_also_triggers() {
        let (policy, seg) = setup(0.5, SkipMode::DropIteration);
        assert!(
            !policy.admit(0, &seg, || 1.0),
            "full transport counts as pressure"
        );
        assert!(policy.admit(1, &seg, || 0.49), "below the watermark admits");
    }
}
