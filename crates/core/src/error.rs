//! Middleware error type.

use std::fmt;

/// Result alias for middleware operations.
pub type DamarisResult<T> = Result<T, DamarisError>;

/// Failures surfaced by the Damaris middleware.
#[derive(Debug)]
pub enum DamarisError {
    /// Configuration file/parse/validation problem.
    Config(damaris_xml::XmlError),
    /// Shared-memory segment failure.
    Shm(damaris_shm::ShmError),
    /// A write referenced a variable absent from the configuration.
    UnknownVariable(String),
    /// The written data does not match the variable's layout.
    LayoutMismatch {
        /// Variable being written.
        variable: String,
        /// Bytes the layout requires.
        expected: usize,
        /// Bytes the caller supplied.
        got: usize,
    },
    /// The event queue was closed (node shut down) mid-operation.
    QueueClosed,
    /// Storage backend failure.
    Storage(h5lite::H5Error),
    /// A plugin reported a failure.
    Plugin {
        /// Plugin name.
        plugin: String,
        /// What it reported.
        message: String,
    },
    /// Node lifecycle misuse (double shutdown, missing clients, …).
    InvalidState(String),
}

impl fmt::Display for DamarisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DamarisError::Config(e) => write!(f, "configuration: {e}"),
            DamarisError::Shm(e) => write!(f, "shared memory: {e}"),
            DamarisError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            DamarisError::LayoutMismatch { variable, expected: 0, got } => write!(
                f,
                "layout mismatch writing '{variable}': {got} bytes is not a valid size for its dynamic layout"
            ),
            DamarisError::LayoutMismatch { variable, expected, got } => write!(
                f,
                "layout mismatch writing '{variable}': layout holds {expected} bytes, caller provided {got}"
            ),
            DamarisError::QueueClosed => write!(f, "event queue closed (node shut down)"),
            DamarisError::Storage(e) => write!(f, "storage: {e}"),
            DamarisError::Plugin { plugin, message } => write!(f, "plugin '{plugin}': {message}"),
            DamarisError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for DamarisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DamarisError::Config(e) => Some(e),
            DamarisError::Shm(e) => Some(e),
            DamarisError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<damaris_xml::XmlError> for DamarisError {
    fn from(e: damaris_xml::XmlError) -> Self {
        DamarisError::Config(e)
    }
}

impl From<damaris_shm::ShmError> for DamarisError {
    fn from(e: damaris_shm::ShmError) -> Self {
        DamarisError::Shm(e)
    }
}

impl From<h5lite::H5Error> for DamarisError {
    fn from(e: h5lite::H5Error) -> Self {
        DamarisError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DamarisError::LayoutMismatch {
            variable: "u".into(),
            expected: 64,
            got: 32,
        };
        assert!(e.to_string().contains("'u'"));
        assert!(DamarisError::UnknownVariable("qv".into())
            .to_string()
            .contains("qv"));
        assert!(DamarisError::QueueClosed.to_string().contains("closed"));
    }

    #[test]
    fn conversions() {
        let e: DamarisError = damaris_shm::ShmError::ZeroSize.into();
        assert!(matches!(e, DamarisError::Shm(_)));
    }
}
