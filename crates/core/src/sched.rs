//! I/O scheduling strategies for dedicated cores.
//!
//! Paper §IV.D: "We also implemented a better I/O scheduling schema to
//! further increase the throughput, achieving up to 12.7 GB/s of aggregate
//! throughput on Kraken." The gain comes from *coordinating* when each
//! node's dedicated core starts its file write, so the storage targets see
//! an even, near-knee load instead of synchronized bursts.
//!
//! A scheduler is a pure planning function — given when each node's data
//! became available and an estimate of one node's write duration, it
//! returns when each node may start. Both the real middleware (delaying
//! the HDF5 plugin) and the cluster-scale simulator consume the same plan,
//! so the laptop-scale and Kraken-scale code paths cannot drift apart.

/// A strategy deciding when each node's dedicated core starts writing.
pub trait IoScheduler: Send + Sync {
    /// Human-readable strategy name (appears in benchmark tables).
    fn name(&self) -> &'static str;

    /// Plan start times.
    ///
    /// * `ready[i]` — when node `i`'s data is fully staged in shared memory.
    /// * `est_write_s` — estimated seconds one node needs to write its file.
    ///
    /// Returns `start[i] ≥ ready[i]` for every node.
    fn plan_starts(&self, ready: &[f64], est_write_s: f64) -> Vec<f64>;
}

/// Write as soon as the data is staged (the baseline Damaris behaviour that
/// reaches ~10 GB/s on Kraken).
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl IoScheduler for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan_starts(&self, ready: &[f64], _est_write_s: f64) -> Vec<f64> {
        ready.to_vec()
    }
}

/// Split nodes into `groups` waves; wave `g` starts after `g` estimated
/// write durations. Evens out storage-target load without any runtime
/// coordination (the wave index is derived from the node id).
#[derive(Debug, Clone, Copy)]
pub struct Staggered {
    /// Number of waves.
    pub groups: usize,
}

impl IoScheduler for Staggered {
    fn name(&self) -> &'static str {
        "staggered"
    }

    fn plan_starts(&self, ready: &[f64], est_write_s: f64) -> Vec<f64> {
        let groups = self.groups.max(1);
        let wave_len = est_write_s / groups as f64;
        ready
            .iter()
            .enumerate()
            .map(|(node, &r)| r + (node % groups) as f64 * wave_len)
            .collect()
    }
}

/// Global admission control: at most `concurrent` nodes write at once;
/// the next node starts when a token frees up (earliest-ready first).
/// This is the strategy that reaches the paper's 12.7 GB/s.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    /// Maximum simultaneous writers.
    pub concurrent: usize,
}

impl IoScheduler for TokenBucket {
    fn name(&self) -> &'static str {
        "token-bucket"
    }

    fn plan_starts(&self, ready: &[f64], est_write_s: f64) -> Vec<f64> {
        let k = self.concurrent.max(1);
        // Earliest-ready-first admission.
        let mut order: Vec<usize> = (0..ready.len()).collect();
        order.sort_by(|&a, &b| ready[a].partial_cmp(&ready[b]).expect("finite"));
        // Token availability times (min-heap behaviour over a small vec).
        let mut tokens = vec![0.0f64; k.min(ready.len().max(1))];
        let mut starts = vec![0.0f64; ready.len()];
        for &i in &order {
            // Earliest-free token.
            let (t_idx, &t_free) = tokens
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("at least one token");
            let start = ready[i].max(t_free);
            starts[i] = start;
            tokens[t_idx] = start + est_write_s;
        }
        starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_after_ready(ready: &[f64], starts: &[f64]) {
        for (r, s) in ready.iter().zip(starts) {
            assert!(s >= r, "start {s} before ready {r}");
        }
    }

    #[test]
    fn greedy_is_identity() {
        let ready = vec![0.0, 1.5, 3.0];
        let starts = Greedy.plan_starts(&ready, 10.0);
        assert_eq!(starts, ready);
    }

    #[test]
    fn staggered_spreads_waves() {
        let ready = vec![0.0; 8];
        let starts = Staggered { groups: 4 }.plan_starts(&ready, 8.0);
        assert_after_ready(&ready, &starts);
        // Wave offsets: 0, 2, 4, 6 repeating.
        assert_eq!(starts, vec![0.0, 2.0, 4.0, 6.0, 0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn staggered_single_group_degenerates_to_greedy() {
        let ready = vec![1.0, 2.0];
        assert_eq!(Staggered { groups: 1 }.plan_starts(&ready, 5.0), ready);
    }

    #[test]
    fn token_bucket_caps_concurrency() {
        let ready = vec![0.0; 6];
        let est = 10.0;
        let starts = TokenBucket { concurrent: 2 }.plan_starts(&ready, est);
        assert_after_ready(&ready, &starts);
        // With 2 tokens and 6 equal jobs: pairs start at 0, 10, 20.
        let mut sorted = starts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![0.0, 0.0, 10.0, 10.0, 20.0, 20.0]);
        // Verify the invariant directly: overlap never exceeds 2.
        for &t in &starts {
            let overlapping = starts.iter().filter(|&&s| s <= t && t < s + est).count();
            assert!(overlapping <= 2, "{overlapping} writers at t={t}");
        }
    }

    #[test]
    fn token_bucket_respects_staggered_readiness() {
        let ready = vec![0.0, 100.0];
        let starts = TokenBucket { concurrent: 1 }.plan_starts(&ready, 5.0);
        assert_eq!(
            starts,
            vec![0.0, 100.0],
            "no artificial delay when load is light"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Greedy.name(), "greedy");
        assert_eq!(Staggered { groups: 2 }.name(), "staggered");
        assert_eq!(TokenBucket { concurrent: 4 }.name(), "token-bucket");
    }
}
