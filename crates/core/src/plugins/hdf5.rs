//! The HDF5-forwarding plugin: one file per node per dump.
//!
//! §IV.B: "Damaris is able to group the output of multiple processes into
//! bigger files without the communication overhead of a collective I/O
//! approach. Thus the output of dedicated cores can be easily
//! post-processed by analysis tools."

use std::path::PathBuf;

use h5lite::FileWriter;
use parking_lot::Mutex;

use super::{elem_dtype, IterationCtx, Plugin};

/// Record of one file written by the plugin.
#[derive(Debug, Clone)]
pub struct WrittenFile {
    /// Iteration the file holds.
    pub iteration: u64,
    /// Path on disk.
    pub path: PathBuf,
    /// Logical bytes (before compression).
    pub logical_bytes: u64,
    /// Stored bytes (after compression).
    pub stored_bytes: u64,
    /// Number of datasets (blocks) in the file.
    pub datasets: usize,
}

/// Aggregates all client blocks of a completed iteration into a single
/// h5lite file named `{sim}_node{id}_it{iteration:06}.dh5`.
///
/// Action parameters:
/// * `codec` — a [`codec::Pipeline`] spec applied to every dataset
///   (e.g. `"xor-delta8,shuffle8,rle,lzss"`); omitted = uncompressed;
/// * `chunk_rows` — rows per storage chunk along the slowest dimension.
#[derive(Debug, Default)]
pub struct H5Writer {
    written: Mutex<Vec<WrittenFile>>,
}

impl H5Writer {
    /// New writer with an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Files written so far (clone of the history).
    pub fn written(&self) -> Vec<WrittenFile> {
        self.written.lock().clone()
    }

    /// Total logical and stored bytes across all files.
    pub fn totals(&self) -> (u64, u64) {
        let w = self.written.lock();
        (
            w.iter().map(|f| f.logical_bytes).sum(),
            w.iter().map(|f| f.stored_bytes).sum(),
        )
    }
}

impl Plugin for H5Writer {
    fn name(&self) -> &str {
        "hdf5"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        if ctx.blocks.is_empty() {
            return Ok(()); // skipped iteration: nothing to store
        }
        let file_name = format!(
            "{}_node{}_it{:06}.dh5",
            ctx.simulation, ctx.node_id, ctx.iteration
        );
        let path = ctx.output_dir.join(file_name);
        std::fs::create_dir_all(ctx.output_dir)
            .map_err(|e| format!("creating {:?}: {e}", ctx.output_dir))?;
        let mut w = FileWriter::create(&path).map_err(|e| format!("creating {path:?}: {e}"))?;

        let codec = ctx.action.param("codec");
        let chunk_rows = match ctx.action.param("chunk_rows") {
            Some(s) => Some(
                s.parse::<u64>()
                    .map_err(|_| format!("bad chunk_rows '{s}'"))?,
            ),
            None => None,
        };

        for block in ctx.blocks {
            let layout = ctx.config.layout_of_id(block.variable);
            let var_cfg = ctx.config.variable_by_id(block.variable);
            if !var_cfg.store {
                continue;
            }
            let shape: Vec<u64> = layout.dimensions.iter().map(|&d| d as u64).collect();
            let ds_path = format!(
                "{}/rank{}",
                ctx.config.var_name(block.variable),
                block.source
            );
            let mut b = w
                .dataset(&ds_path, elem_dtype(layout.elem_type), &shape)
                .map_err(|e| format!("dataset {ds_path}: {e}"))?;
            if let Some(spec) = codec {
                b = b
                    .with_codec(spec)
                    .map_err(|e| format!("codec {spec}: {e}"))?;
            }
            if let Some(rows) = chunk_rows {
                b = b.chunked(rows).map_err(|e| e.to_string())?;
            }
            b.write_bytes(block.data.as_slice())
                .map_err(|e| format!("writing {ds_path}: {e}"))?;
            if let Some(unit) = &var_cfg.unit {
                w.set_attr(&ds_path, "unit", unit.as_str())
                    .map_err(|e| e.to_string())?;
            }
        }
        w.set_attr("", "iteration", ctx.iteration as i64)
            .map_err(|e| e.to_string())?;
        w.set_attr("", "node", ctx.node_id as i64)
            .map_err(|e| e.to_string())?;
        w.set_attr("", "simulation", ctx.simulation)
            .map_err(|e| e.to_string())?;
        let stats = w.finish().map_err(|e| format!("finishing {path:?}: {e}"))?;
        self.written.lock().push(WrittenFile {
            iteration: ctx.iteration,
            path,
            logical_bytes: stats.logical_bytes,
            stored_bytes: stats.stored_bytes,
            datasets: stats.datasets,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredBlock;
    use damaris_shm::SharedSegment;
    use damaris_xml::schema::{Action, Configuration, Trigger};

    fn test_config() -> Configuration {
        Configuration::from_str(
            r#"<simulation name="t">
                 <data>
                   <layout name="l" type="f64" dimensions="2,3"/>
                   <variable name="u" layout="l" unit="m/s"/>
                   <variable name="hidden" layout="l" store="false"/>
                 </data>
               </simulation>"#,
        )
        .unwrap()
    }

    fn blocks(
        seg: &SharedSegment,
        cfg: &Configuration,
        cfg_vars: &[(&str, usize)],
    ) -> Vec<StoredBlock> {
        cfg_vars
            .iter()
            .map(|&(var, source)| {
                let mut b = seg.allocate(48).unwrap();
                b.write_pod(&[source as f64; 6]);
                StoredBlock {
                    variable: cfg.registry().var_id(var).unwrap(),
                    source,
                    iteration: 7,
                    data: b.freeze(),
                }
            })
            .collect()
    }

    fn action(params: Vec<(&str, &str)>) -> Action {
        Action {
            name: "dump".into(),
            plugin: "hdf5".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("damaris-h5w-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_one_file_per_iteration_with_all_ranks() {
        let cfg = test_config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let blocks = blocks(&seg, &cfg, &[("u", 0), ("u", 1), ("u", 2)]);
        let dir = tmpdir("multi");
        let plugin = H5Writer::new();
        let act = action(vec![]);
        let ctx = IterationCtx {
            iteration: 7,
            node_id: 3,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        let written = plugin.written();
        assert_eq!(written.len(), 1);
        assert_eq!(written[0].datasets, 3);
        let mut r = h5lite::FileReader::open(&written[0].path).unwrap();
        assert_eq!(r.read_pod::<f64>("u/rank2").unwrap(), vec![2.0; 6]);
        assert_eq!(r.attr("", "iteration").unwrap().as_i64(), Some(7));
        assert_eq!(r.attr("u/rank0", "unit").unwrap().as_str(), Some("m/s"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_param_compresses() {
        let cfg = test_config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let blocks = blocks(&seg, &cfg, &[("u", 0)]);
        let dir = tmpdir("codec");
        let plugin = H5Writer::new();
        let act = action(vec![("codec", "xor-delta8,rle")]);
        let ctx = IterationCtx {
            iteration: 7,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        let (logical, stored) = plugin.totals();
        assert_eq!(logical, 48);
        assert!(stored < logical, "constant block must compress");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_false_variables_are_skipped() {
        let cfg = test_config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let blocks = blocks(&seg, &cfg, &[("u", 0), ("hidden", 0)]);
        let dir = tmpdir("hidden");
        let plugin = H5Writer::new();
        let act = action(vec![]);
        let ctx = IterationCtx {
            iteration: 7,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        assert_eq!(
            plugin.written()[0].datasets,
            1,
            "hidden variable not stored"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_iteration_writes_nothing() {
        let cfg = test_config();
        let dir = tmpdir("empty");
        let plugin = H5Writer::new();
        let act = action(vec![]);
        let ctx = IterationCtx {
            iteration: 0,
            node_id: 0,
            simulation: "t",
            blocks: &[],
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        assert!(plugin.written().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_chunk_rows_reported() {
        let cfg = test_config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let blocks = blocks(&seg, &cfg, &[("u", 0)]);
        let dir = tmpdir("badparam");
        let plugin = H5Writer::new();
        let act = action(vec![("chunk_rows", "many")]);
        let ctx = IterationCtx {
            iteration: 0,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        assert!(plugin.on_iteration(&ctx).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
