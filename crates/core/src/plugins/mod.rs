//! The plugin system.
//!
//! Paper §III.A: "The second strength of Damaris consists in a plugin
//! system which makes the design of custom data management services
//! straightforward. Plugins can be written in C or C++ as dynamic
//! libraries, or even in Python scripts […] This plugin system may simply
//! be used to forward I/O operations to the HDF5 library, but it can also
//! be (and has been) used to integrate statistical analysis […] and
//! visualization tasks."
//!
//! In this Rust reproduction a plugin is any `Send + Sync` implementor of
//! [`Plugin`]; closures are supported through [`FnPlugin`]. Built-ins:
//!
//! * [`H5Writer`] (`plugin="hdf5"`) — aggregates every client's blocks into
//!   **one file per node per dump**, the aggregation-without-communication
//!   at the heart of §IV.C;
//! * [`CompressPlugin`] (`plugin="compress"`) — runs a [`codec::Pipeline`]
//!   over blocks in the dedicated core's spare time (§IV.D's 600 %);
//! * [`StatsPlugin`] (`plugin="stats"`) — streaming min/max/mean/σ per
//!   variable, the "statistical analysis" plugin class;
//! * [`StoragePlugin`] (`plugin="storage"`) — the real storage pipeline
//!   behind `<store type="h5lite">`: per-variable codec compression into
//!   one chunked h5lite file per node, fsync'd off the hot path (see
//!   [`storage`](self::StorageEngine));
//! * [`ServePlugin`] (`plugin="serve"`) — the subscriber streaming tier
//!   behind `<serve listen="…">`: every completed iteration is published
//!   to concurrent TCP subscribers with bounded per-subscriber queues
//!   (see `damaris_serve`).

mod compress;
mod hdf5;
mod serve;
mod stats;
mod storage;

pub use compress::CompressPlugin;
pub use hdf5::H5Writer;
pub use serve::{ServePlugin, ServeSink};
pub use stats::{StatsPlugin, VariableSummary};
pub use storage::{StorageEngine, StoragePlugin, StorageSink, StorageStats};

use std::path::Path;

use damaris_xml::schema::{Action, Configuration};

use crate::store::StoredBlock;

/// Map a configuration element type onto its h5lite on-disk dtype.
pub(crate) fn elem_dtype(t: damaris_xml::schema::ElemType) -> h5lite::Dtype {
    use damaris_xml::schema::ElemType as E;
    use h5lite::Dtype;
    match t {
        E::I8 => Dtype::I8,
        E::I16 => Dtype::I16,
        E::I32 => Dtype::I32,
        E::I64 => Dtype::I64,
        E::U8 => Dtype::U8,
        E::U16 => Dtype::U16,
        E::U32 => Dtype::U32,
        E::U64 => Dtype::U64,
        E::F32 => Dtype::F32,
        E::F64 => Dtype::F64,
    }
}

/// Everything a plugin sees when an iteration completes on this node.
pub struct IterationCtx<'a> {
    /// The completed simulation time step.
    pub iteration: u64,
    /// This node's id.
    pub node_id: usize,
    /// Simulation name from the configuration.
    pub simulation: &'a str,
    /// Every block published for this iteration (all variables, all
    /// clients), ordered by `(variable, source)`. Zero-copy views into
    /// shared memory; resolve names and layouts through
    /// [`Configuration::var_name`] / [`Configuration::layout_of_id`].
    pub blocks: &'a [StoredBlock],
    /// The full data description.
    pub config: &'a Configuration,
    /// Directory plugins should write artifacts into.
    pub output_dir: &'a Path,
    /// The action that triggered this invocation (parameters live here).
    pub action: &'a Action,
}

/// Context for a user signal ([`crate::client::DamarisClient::signal`]).
pub struct SignalCtx<'a> {
    /// Signal name.
    pub name: &'a str,
    /// Client that raised it.
    pub source: usize,
    /// Iteration during which it was raised.
    pub iteration: u64,
    /// Blocks currently indexed for that iteration (possibly incomplete).
    pub blocks: &'a [StoredBlock],
    /// The full data description.
    pub config: &'a Configuration,
    /// Directory plugins should write artifacts into.
    pub output_dir: &'a Path,
    /// The action that triggered this invocation.
    pub action: &'a Action,
}

/// A data-management service running on the dedicated cores.
pub trait Plugin: Send + Sync {
    /// Identifier matched against `<action plugin="…">`.
    fn name(&self) -> &str;

    /// Called when every client of the node has finished an iteration and
    /// all of its blocks are indexed.
    fn on_iteration(&self, _ctx: &IterationCtx<'_>) -> Result<(), String> {
        Ok(())
    }

    /// Called when a client raises a matching user event.
    fn on_signal(&self, _ctx: &SignalCtx<'_>) -> Result<(), String> {
        Ok(())
    }

    /// Called once at node shutdown, after every client finalized and the
    /// dedicated cores drained — the place to close files and release
    /// long-lived resources (the storage pipeline finishes and syncs its
    /// per-node file here). Errors are collected into the node report's
    /// plugin errors, never fatal.
    fn on_finalize(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A plugin defined by a closure — the Rust equivalent of the paper's
/// "Python script" plugins: one-liner custom services.
///
/// ```
/// use damaris_core::plugins::{FnPlugin, Plugin};
/// let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
/// let c2 = count.clone();
/// let plugin = FnPlugin::new("counter", move |ctx| {
///     c2.fetch_add(ctx.blocks.len() as u64, std::sync::atomic::Ordering::Relaxed);
///     Ok(())
/// });
/// assert_eq!(plugin.name(), "counter");
/// ```
pub struct FnPlugin<F> {
    name: String,
    f: F,
}

impl<F> FnPlugin<F>
where
    F: Fn(&IterationCtx<'_>) -> Result<(), String> + Send + Sync,
{
    /// Wrap a closure as an end-of-iteration plugin.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnPlugin {
            name: name.into(),
            f,
        }
    }
}

impl<F> Plugin for FnPlugin<F>
where
    F: Fn(&IterationCtx<'_>) -> Result<(), String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        (self.f)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_xml::schema::Trigger;

    #[test]
    fn fn_plugin_invokes_closure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let p = FnPlugin::new("probe", move |ctx| {
            h.fetch_add(ctx.iteration, Ordering::Relaxed);
            Ok(())
        });
        let cfg = Configuration::default();
        let action = Action {
            name: "probe".into(),
            plugin: "probe".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        };
        let ctx = IterationCtx {
            iteration: 5,
            node_id: 0,
            simulation: "t",
            blocks: &[],
            config: &cfg,
            output_dir: Path::new("/tmp"),
            action: &action,
        };
        p.on_iteration(&ctx).unwrap();
        p.on_iteration(&ctx).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        // Default signal handler is a no-op.
        let sctx = SignalCtx {
            name: "s",
            source: 0,
            iteration: 0,
            blocks: &[],
            config: &cfg,
            output_dir: Path::new("/tmp"),
            action: &action,
        };
        p.on_signal(&sctx).unwrap();
    }
}
