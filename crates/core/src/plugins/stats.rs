//! Streaming statistics plugin — the "statistical analysis using Python
//! scripts" class of services from §III.A, in Rust.

use std::collections::BTreeMap;

use damaris_xml::schema::ElemType;
use parking_lot::Mutex;

use super::{IterationCtx, Plugin};

/// Summary of one variable at one iteration (across all of the node's
/// clients).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariableSummary {
    /// Number of elements aggregated.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl VariableSummary {
    fn from_values(values: impl Iterator<Item = f64>) -> Option<Self> {
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for v in values {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sumsq += v * v;
        }
        if count == 0 {
            return None;
        }
        let mean = sum / count as f64;
        let var = (sumsq / count as f64 - mean * mean).max(0.0);
        Some(VariableSummary {
            count,
            min,
            max,
            mean,
            stddev: var.sqrt(),
        })
    }
}

/// Computes min/max/mean/σ for every floating-point variable at every
/// completed iteration. Integer variables are counted but not summarized.
#[derive(Debug, Default)]
pub struct StatsPlugin {
    /// iteration → variable → summary.
    results: Mutex<BTreeMap<u64, BTreeMap<String, VariableSummary>>>,
}

impl StatsPlugin {
    /// New plugin with empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of iterations summarized so far.
    pub fn iterations_seen(&self) -> u64 {
        self.results.lock().len() as u64
    }

    /// Summary for a variable at an iteration, if computed.
    pub fn summary(&self, iteration: u64, variable: &str) -> Option<VariableSummary> {
        self.results
            .lock()
            .get(&iteration)
            .and_then(|m| m.get(variable))
            .copied()
    }

    /// All results (clone).
    pub fn all(&self) -> BTreeMap<u64, BTreeMap<String, VariableSummary>> {
        self.results.lock().clone()
    }
}

impl Plugin for StatsPlugin {
    fn name(&self) -> &str {
        "stats"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        let mut per_var: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for block in ctx.blocks {
            let layout = ctx.config.layout_of_id(block.variable);
            let values: Vec<f64> = match layout.elem_type {
                ElemType::F64 => block.data.as_pod::<f64>().to_vec(),
                ElemType::F32 => block
                    .data
                    .as_pod::<f32>()
                    .iter()
                    .map(|&v| v as f64)
                    .collect(),
                _ => continue,
            };
            per_var
                .entry(ctx.config.var_name(block.variable).to_string())
                .or_default()
                .extend(values);
        }
        let mut summaries = BTreeMap::new();
        for (var, values) in per_var {
            if let Some(s) = VariableSummary::from_values(values.into_iter()) {
                summaries.insert(var, s);
            }
        }
        self.results.lock().insert(ctx.iteration, summaries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredBlock;
    use damaris_shm::SharedSegment;
    use damaris_xml::schema::{Action, Configuration, Trigger};

    fn config() -> Configuration {
        Configuration::from_str(
            r#"<simulation name="t"><data>
                 <layout name="l64" type="f64" dimensions="4"/>
                 <layout name="l32" type="f32" dimensions="4"/>
                 <layout name="li" type="i32" dimensions="4"/>
                 <variable name="a" layout="l64"/>
                 <variable name="b" layout="l32"/>
                 <variable name="c" layout="li"/>
               </data></simulation>"#,
        )
        .unwrap()
    }

    fn action() -> Action {
        Action {
            name: "stats".into(),
            plugin: "stats".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        }
    }

    #[test]
    fn summaries_across_sources() {
        let cfg = config();
        let seg = SharedSegment::new(1 << 12).unwrap();
        let mut blocks = Vec::new();
        // Variable "a" written by two clients: [0,1,2,3] and [4,5,6,7].
        for src in 0..2usize {
            let mut b = seg.allocate(32).unwrap();
            let vals: Vec<f64> = (0..4).map(|i| (src * 4 + i) as f64).collect();
            b.write_pod(&vals);
            blocks.push(StoredBlock {
                variable: cfg.registry().var_id("a").unwrap(),
                source: src,
                iteration: 2,
                data: b.freeze(),
            });
        }
        // f32 variable.
        let mut b = seg.allocate(16).unwrap();
        b.write_pod(&[1.0f32, 1.0, 1.0, 1.0]);
        blocks.push(StoredBlock {
            variable: cfg.registry().var_id("b").unwrap(),
            source: 0,
            iteration: 2,
            data: b.freeze(),
        });
        // Integer variable: skipped by the summarizer.
        let mut b = seg.allocate(16).unwrap();
        b.write_pod(&[5i32, 5, 5, 5]);
        blocks.push(StoredBlock {
            variable: cfg.registry().var_id("c").unwrap(),
            source: 0,
            iteration: 2,
            data: b.freeze(),
        });

        let plugin = StatsPlugin::new();
        let act = action();
        let ctx = IterationCtx {
            iteration: 2,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: std::path::Path::new("/tmp"),
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();

        let a = plugin.summary(2, "a").unwrap();
        assert_eq!(a.count, 8);
        assert_eq!(a.min, 0.0);
        assert_eq!(a.max, 7.0);
        assert!((a.mean - 3.5).abs() < 1e-12);
        assert!((a.stddev - 2.29128784747792).abs() < 1e-9);

        let b = plugin.summary(2, "b").unwrap();
        assert_eq!(b.stddev, 0.0);
        assert!(plugin.summary(2, "c").is_none(), "integers not summarized");
        assert_eq!(plugin.iterations_seen(), 1);
    }

    #[test]
    fn empty_iteration_counted() {
        let cfg = config();
        let plugin = StatsPlugin::new();
        let act = action();
        let ctx = IterationCtx {
            iteration: 0,
            node_id: 0,
            simulation: "t",
            blocks: &[],
            config: &cfg,
            output_dir: std::path::Path::new("/tmp"),
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        assert_eq!(plugin.iterations_seen(), 1);
        assert!(plugin.summary(0, "a").is_none());
    }
}
