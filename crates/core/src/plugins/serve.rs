//! The serving-tier glue: one `damaris_serve::StreamServer` wired into
//! both worlds behind the plugin/sink seam.
//!
//! * [`ServePlugin`] — thread world. Runs on the dedicated core at
//!   iteration completion and publishes [`Payload::Shm`] clones of the
//!   completed blocks: the bytes never leave the shared segment until the
//!   poll thread writes the last subscriber frame referencing them.
//! * [`ServeSink`] — process mode. The socket-world sink only ever sees
//!   borrowed `&[u8]` views of the shm mapping, so blocks are staged as
//!   owned copies (exactly like the storage sink) and published at the
//!   iteration boundary; world ranks are converted to the same 0-based
//!   client ids the thread world uses, so DATA frames are byte-identical
//!   across worlds.
//!
//! Both are auto-registered from `<serve listen="addr:port" …/>` — see
//! `NodeBuilder::build` and `Damaris::launch`.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use damaris_serve::{Payload, PublishBlock, ServeOptions, ServeStats, StreamServer};
use damaris_xml::schema::Configuration;
use damaris_xml::VarId;

use damaris_xml::EventId;

use super::{IterationCtx, Plugin};
use crate::process::ProcessSink;

/// How long shutdown lets the poll thread flush queued frames before
/// force-closing slow subscribers.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

fn bind_from_config(cfg: &Configuration, output_dir: &Path) -> Result<StreamServer, String> {
    let sc = cfg.architecture.serve.clone().unwrap_or_default();
    let addr_file = sc.addr_file.map(|p| {
        let p = PathBuf::from(p);
        if p.is_absolute() {
            p
        } else {
            output_dir.join(p)
        }
    });
    StreamServer::bind(ServeOptions {
        listen: sc.listen.clone(),
        queue_frames: sc.queue_frames as usize,
        simulation: cfg.name.clone(),
        addr_file,
    })
    .map_err(|e| format!("serve: cannot bind '{}': {e}", sc.listen))
}

/// Thread-world serving plugin (`plugin="serve"`), auto-registered when
/// the configuration has a `<serve>` element.
pub struct ServePlugin {
    server: StreamServer,
}

impl ServePlugin {
    /// Bind the streaming server per the `<serve>` element (relative
    /// `addr_file` resolves against `output_dir`).
    pub fn new(cfg: &Configuration, output_dir: &Path) -> Result<Self, String> {
        Ok(ServePlugin {
            server: bind_from_config(cfg, output_dir)?,
        })
    }

    /// The bound address (resolves an ephemeral `listen="…:0"` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Serving counters.
    pub fn stats(&self) -> ServeStats {
        self.server.stats()
    }
}

impl Plugin for ServePlugin {
    fn name(&self) -> &str {
        "serve"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        let blocks = ctx
            .blocks
            .iter()
            .map(|b| PublishBlock {
                variable: ctx.config.var_name(b.variable).to_string(),
                source: b.source as u64,
                // Zero-copy: the frame holds the shm block alive until
                // the last subscriber write completes.
                payload: Payload::Shm(b.data.clone()),
            })
            .collect();
        self.server.publish(ctx.iteration, blocks);
        Ok(())
    }

    fn on_finalize(&self) -> Result<(), String> {
        self.server.shutdown(DRAIN_TIMEOUT);
        Ok(())
    }
}

/// One staged block: `(variable, 0-based client, owned bytes)`.
type StagedBlock = (VarId, u64, Arc<Vec<u8>>);

/// Process-mode serving sink, run by the dedicated rank beside the
/// storage sink.
pub struct ServeSink {
    server: StreamServer,
    cfg: Arc<Configuration>,
    /// Blocks staged per in-flight iteration — process-mode callbacks
    /// only borrow the mapping, so the copy happens here.
    staged: BTreeMap<u64, Vec<StagedBlock>>,
}

impl ServeSink {
    /// Bind the streaming server per the `<serve>` element.
    pub fn new(cfg: &Configuration, output_dir: &Path) -> Result<Self, String> {
        let server = bind_from_config(cfg, output_dir)?;
        Ok(ServeSink {
            server,
            cfg: Arc::new(cfg.clone()),
            staged: BTreeMap::new(),
        })
    }

    /// The bound address (resolves an ephemeral `listen="…:0"` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Serving counters.
    pub fn stats(&self) -> ServeStats {
        self.server.stats()
    }

    /// Flush subscribers and stop serving (called after the world
    /// drains).
    pub fn finish(&mut self) {
        self.server.shutdown(DRAIN_TIMEOUT);
    }
}

impl ProcessSink for ServeSink {
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]) {
        // World rank → 0-based client id, the thread world's numbering.
        let client = source.saturating_sub(1) as u64;
        self.staged
            .entry(iteration)
            .or_default()
            .push((var, client, Arc::new(data.to_vec())));
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        let mut blocks = self.staged.remove(&iteration).unwrap_or_default();
        // Match the thread world's (variable, source) publication order
        // so DATA frames are byte-for-byte identical across worlds.
        blocks.sort_by_key(|(var, client, _)| (var.raw(), *client));
        let publish = blocks
            .into_iter()
            .map(|(var, client, bytes)| PublishBlock {
                variable: self.cfg.var_name(var).to_string(),
                source: client,
                payload: Payload::Owned(bytes),
            })
            .collect();
        self.server.publish(iteration, publish);
    }

    fn on_signal(&mut self, _event: EventId, _iteration: u64, _source: usize) {}
}
