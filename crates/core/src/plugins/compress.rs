//! In-spare-time compression (paper §IV.D).
//!
//! "Since Damaris uses dedicated cores for I/O and achieves a very high
//! throughput, these cores remain idle most of the time. […] In our
//! previous work we used this spare time to add data compression in files,
//! and achieved a 600 % compression ratio without any overhead on the
//! simulation."

use codec::{Codec, Pipeline};
use parking_lot::Mutex;

use super::{IterationCtx, Plugin};

/// Per-iteration compression record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionRecord {
    /// Iteration compressed.
    pub iteration: u64,
    /// Input bytes.
    pub raw_bytes: u64,
    /// Output bytes.
    pub compressed_bytes: u64,
    /// Seconds the dedicated core spent compressing.
    pub seconds: f64,
}

impl CompressionRecord {
    /// Paper-style ratio (600 % ⇔ 6.0).
    pub fn ratio(&self) -> f64 {
        codec::compression_ratio(self.raw_bytes as usize, self.compressed_bytes as usize)
    }
}

/// Compresses every block of a completed iteration with a configurable
/// pipeline, recording ratio and time. Runs entirely on the dedicated core:
/// the simulation never sees any of this cost.
///
/// Action parameter `pipeline` selects the codec chain (default:
/// [`Pipeline::default_f64`]'s spec).
pub struct CompressPlugin {
    records: Mutex<Vec<CompressionRecord>>,
}

impl Default for CompressPlugin {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressPlugin {
    /// New plugin with empty history.
    pub fn new() -> Self {
        CompressPlugin {
            records: Mutex::new(Vec::new()),
        }
    }

    /// History of compression work (clone).
    pub fn records(&self) -> Vec<CompressionRecord> {
        self.records.lock().clone()
    }

    /// Aggregate ratio over all work so far.
    pub fn overall_ratio(&self) -> f64 {
        let records = self.records.lock();
        let raw: u64 = records.iter().map(|r| r.raw_bytes).sum();
        let packed: u64 = records.iter().map(|r| r.compressed_bytes).sum();
        codec::compression_ratio(raw as usize, packed as usize)
    }
}

impl Plugin for CompressPlugin {
    fn name(&self) -> &str {
        "compress"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        if ctx.blocks.is_empty() {
            return Ok(());
        }
        let spec = ctx
            .action
            .param("pipeline")
            .unwrap_or("xor-delta8,shuffle8,rle,lzss");
        let pipeline = Pipeline::from_spec(spec).map_err(|e| e.to_string())?;
        let t0 = std::time::Instant::now();
        let mut raw = 0u64;
        let mut packed = 0u64;
        for block in ctx.blocks {
            let input = block.data.as_slice();
            let out = pipeline.encode(input);
            raw += input.len() as u64;
            packed += out.len() as u64;
        }
        self.records.lock().push(CompressionRecord {
            iteration: ctx.iteration,
            raw_bytes: raw,
            compressed_bytes: packed,
            seconds: t0.elapsed().as_secs_f64(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredBlock;
    use damaris_shm::SharedSegment;
    use damaris_xml::schema::{Action, Configuration, Trigger};

    fn ctx_with_blocks<'a>(
        blocks: &'a [StoredBlock],
        cfg: &'a Configuration,
        action: &'a Action,
    ) -> IterationCtx<'a> {
        IterationCtx {
            iteration: 1,
            node_id: 0,
            simulation: "t",
            blocks,
            config: cfg,
            output_dir: std::path::Path::new("/tmp"),
            action,
        }
    }

    #[test]
    fn compresses_and_records_ratio() {
        let seg = SharedSegment::new(1 << 20).unwrap();
        // CM1-like block: constant base state.
        let mut b = seg.allocate(8 * 4096).unwrap();
        b.write_pod(&[300.0f64; 4096]);
        let blocks = vec![StoredBlock {
            variable: damaris_xml::VarId::from_raw(0),
            source: 0,
            iteration: 1,
            data: b.freeze(),
        }];
        let cfg = Configuration::default();
        let action = Action {
            name: "pack".into(),
            plugin: "compress".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        };
        let plugin = CompressPlugin::new();
        plugin
            .on_iteration(&ctx_with_blocks(&blocks, &cfg, &action))
            .unwrap();
        let records = plugin.records();
        assert_eq!(records.len(), 1);
        assert!(records[0].ratio() > 6.0, "got {}", records[0].ratio());
        assert!(plugin.overall_ratio() > 6.0);
        assert!(records[0].seconds >= 0.0);
    }

    #[test]
    fn pipeline_param_respected_and_validated() {
        let seg = SharedSegment::new(1 << 12).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_pod(&[0u8; 64]);
        let blocks = vec![StoredBlock {
            variable: damaris_xml::VarId::from_raw(0),
            source: 0,
            iteration: 1,
            data: b.freeze(),
        }];
        let cfg = Configuration::default();
        let mut action = Action {
            name: "pack".into(),
            plugin: "compress".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: vec![("pipeline".into(), "rle".into())],
        };
        let plugin = CompressPlugin::new();
        plugin
            .on_iteration(&ctx_with_blocks(&blocks, &cfg, &action))
            .unwrap();
        assert_eq!(plugin.records().len(), 1);

        action.params[0].1 = "no-such-codec".into();
        assert!(plugin
            .on_iteration(&ctx_with_blocks(&blocks, &cfg, &action))
            .is_err());
    }

    #[test]
    fn empty_iteration_ignored() {
        let cfg = Configuration::default();
        let action = Action {
            name: "pack".into(),
            plugin: "compress".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        };
        let plugin = CompressPlugin::new();
        plugin
            .on_iteration(&ctx_with_blocks(&[], &cfg, &action))
            .unwrap();
        assert!(plugin.records().is_empty());
    }
}
