//! The real storage pipeline on the dedicated core: compression →
//! h5lite → one file per node, at zero simulation overhead.
//!
//! §IV.D: the dedicated core absorbs compression and I/O in its spare
//! time — "we leveraged the idle time of dedicated cores to compress the
//! data prior to writing it" (~600 % compression on CM1 data) — while the
//! client-visible write cost stays the shared-memory copy alone. This
//! module is that path made real, parallel and overlapped:
//!
//! * [`StorageEngine`] — the shared implementation. Every handed-off
//!   iteration runs each variable's [`codec::Pipeline`] over the
//!   iteration's blocks, then appends chunked datasets to **one h5lite
//!   file per node** (`{simulation}_node{id}.dh5`, datasets at
//!   `it{iteration:06}/{variable}/rank{client}`).
//! * **Encode workers** (`<store workers="N">`, default = available
//!   cores − clients, min 1): with N ≥ 2 a fixed pool of worker threads
//!   fans the iteration's `(variable, source)` blocks out for chunked
//!   encoding, each worker owning its own [`EncodeScratch`] out of a
//!   [`codec::ScratchPool`] (steady-state encodes stay allocation-free
//!   per worker). Results are reassembled in block order before the
//!   append, so the file is **byte-identical** to the serial engine's.
//! * **Double-buffered staging**: [`StoragePlugin`] / [`StorageSink`]
//!   hand the drained block set to the engine's stager thread through a
//!   rendezvous channel and return immediately — iteration N encodes and
//!   writes while the simulation fills N+1. The rendezvous bounds the
//!   overlap to one in-flight iteration: handing off N+1 blocks until N
//!   finished, so shared-memory blocks are released at most one
//!   iteration later than the serial engine released them.
//! * Durability is split off the write path: the writing thread only
//!   flushes its userspace buffer; a background **flusher thread**
//!   `fsync`s through a duplicated file handle
//!   ([`h5lite::FileWriter::sync_data`] semantics, coalescing a backlog
//!   of requests into one sync). [`StorageEngine::finish`] closes the
//!   file with [`h5lite::FileWriter::finish_synced`] when
//!   `<store sync="true">` (the default).
//! * [`StorageStats`] carries per-stage timings (drain / encode / append
//!   / sync nanoseconds, worker busy time) so the overlap is observable,
//!   not asserted.
//!
//! Configured from the XML surface:
//!
//! ```xml
//! <architecture>
//!   <store type="h5lite" path="out" sync="true" chunk_rows="64" workers="4"/>
//! </architecture>
//! <data>
//!   <variable name="u" layout="row" codec="xor-delta8,shuffle8,rle"/>
//! </data>
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use codec::pipeline::{EncodeScratch, ScratchPool};
use codec::Pipeline;
use damaris_shm::BlockRef;
use damaris_xml::schema::Configuration;
use damaris_xml::VarId;
use h5lite::{FileStats, FileWriter};
use parking_lot::Mutex;

use super::{elem_dtype, IterationCtx, Plugin};
use crate::process::ProcessSink;

/// Lifetime counters of one [`StorageEngine`].
///
/// `scratch_grows` is the zero-allocation witness: every codec encode
/// that had to grow a scratch buffer counts once, so a warmed pipeline
/// holds it constant while `encodes` keeps climbing. The `*_ns` fields
/// time the pipeline stages, making the overlap measurable: a healthy
/// hand-off path shows `drain_ns` (the dedicated core's event-path cost)
/// far below `encode_ns + append_ns` (the work the stager absorbed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Iterations stored (at least one dataset appended).
    pub iterations: u64,
    /// Iterations handed to the engine that stored nothing (no blocks,
    /// or only `store="false"` variables). No file is created for them.
    pub skipped_iterations: u64,
    /// Datasets appended (one per stored block).
    pub datasets: u64,
    /// Logical payload bytes consumed out of shared memory.
    pub raw_bytes: u64,
    /// Codec encode calls (one per stored chunk of a codec'd variable).
    pub encodes: u64,
    /// Encodes that grew a scratch buffer — constant after warm-up when
    /// the steady-state codec path is allocation-free.
    pub scratch_grows: u64,
    /// Flush requests handed to the background flusher.
    pub flush_requests: u64,
    /// `fsync`s the flusher completed (≤ `flush_requests`: a backlog is
    /// coalesced into one sync).
    pub syncs: u64,
    /// Nanoseconds the event path (plugin/sink) spent handing iterations
    /// to the stager — includes the backpressure wait when the previous
    /// iteration is still in flight.
    pub drain_ns: u64,
    /// Nanoseconds of the encode stage (fan-out + collect, wall time).
    pub encode_ns: u64,
    /// Nanoseconds of the append stage (dataset appends + userspace
    /// flush).
    pub append_ns: u64,
    /// Nanoseconds the flusher spent in `fsync`.
    pub sync_ns: u64,
    /// Summed nanoseconds encode workers (or the inline encoder when
    /// `workers == 1`) spent busy on chunks.
    pub worker_busy_ns: u64,
    /// Effective encode worker count.
    pub workers: u64,
}

impl StorageStats {
    /// Fraction of the encode stage's wall time the workers were busy,
    /// averaged over the pool — 1.0 means perfect utilisation, 1/N means
    /// the fan-out degenerated to one worker. 0.0 before any encode ran.
    pub fn worker_busy_frac(&self) -> f64 {
        let denom = self.encode_ns.saturating_mul(self.workers.max(1));
        if denom == 0 {
            return 0.0;
        }
        self.worker_busy_ns as f64 / denom as f64
    }
}

/// Per-variable state resolved once at engine construction, so the
/// steady-state write loop never parses a codec spec or re-derives a
/// layout.
struct VarState {
    /// Fully qualified variable name (dataset path component).
    name: String,
    dtype: h5lite::Dtype,
    /// Declared extents; empty for dynamic layouts (shape derived from
    /// each write's byte count).
    shape: Vec<u64>,
    elem_bytes: usize,
    /// Whether storage persists this variable (`store="false"` opts out).
    store: bool,
    /// Pre-built compression pipeline, shared with every dataset builder
    /// (no per-dataset spec re-parse).
    pipeline: Option<Arc<Pipeline>>,
    /// Reused encode scratch for the inline (`workers == 1`) path — the
    /// no-steady-state-allocation guarantee.
    scratch: EncodeScratch,
}

impl VarState {
    /// The dataset shape for a write of `len` bytes: the declared extents,
    /// or a 1-D shape derived from the byte count for dynamic layouts.
    fn shape_for<'a>(&'a self, len: usize, dyn_shape: &'a mut [u64; 1]) -> &'a [u64] {
        if self.shape.is_empty() {
            dyn_shape[0] = (len / self.elem_bytes.max(1)) as u64;
            dyn_shape
        } else {
            &self.shape
        }
    }

    /// Bytes per chunk under `chunk_rows`-row chunking — the same
    /// boundary [`h5lite`]'s `DatasetBuilder` derives, so pre-encoded
    /// chunks line up with the inline path byte for byte.
    fn chunk_bytes_for(&self, shape: &[u64], chunk_rows: u64) -> usize {
        let row_bytes = shape[1..].iter().product::<u64>() as usize * self.dtype.size_bytes();
        (chunk_rows as usize)
            .saturating_mul(row_bytes.max(1))
            .max(1)
    }
}

/// Background fsync thread over a duplicated file handle. The writing
/// thread stays on its buffered writer; requests arriving while a sync is
/// in flight coalesce into the next one.
struct Flusher {
    tx: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn(file: File, syncs: Arc<AtomicU64>, sync_ns: Arc<AtomicU64>) -> std::io::Result<Self> {
        let (tx, rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("damaris-storage-flusher".into())
            .spawn(move || {
                while rx.recv().is_ok() {
                    // Coalesce the backlog into one fsync.
                    while rx.try_recv().is_ok() {}
                    let t0 = Instant::now();
                    if file.sync_data().is_ok() {
                        syncs.fetch_add(1, Ordering::Relaxed);
                        sync_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                }
            })?;
        Ok(Flusher {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    fn request(&self) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(());
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        // Closing the channel ends the thread's loop; joining guarantees
        // any in-flight fsync finished before the writer is closed.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One block's encoded chunks, concatenated — pooled and reused across
/// iterations so the parallel encode stage stops allocating once buffers
/// reach the working-set size.
#[derive(Default)]
struct EncodedChunks {
    buf: Vec<u8>,
    lens: Vec<usize>,
}

impl EncodedChunks {
    fn clear(&mut self) {
        self.buf.clear();
        self.lens.clear();
    }

    fn push_chunk(&mut self, enc: &[u8]) {
        self.buf.extend_from_slice(enc);
        self.lens.push(enc.len());
    }

    fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.lens.iter().scan(0usize, |pos, &len| {
            let chunk = &self.buf[*pos..*pos + len];
            *pos += len;
            Some(chunk)
        })
    }
}

/// A raw input view shipped to an encode worker. Not a self-contained
/// owner — see the safety contract on [`EngineCore::process_iteration`]:
/// the dispatcher keeps the bytes alive until every dispatched task's
/// result (or the pool's shutdown) has been observed.
struct SendSlice {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the pointee is plain bytes; the dispatch protocol above
// guarantees the pointee outlives every access from the worker.
unsafe impl Send for SendSlice {}

struct EncodeTask {
    /// Index into the dispatching iteration's block list, for in-order
    /// reassembly.
    seq: u32,
    pipeline: Arc<Pipeline>,
    input: SendSlice,
    chunk_bytes: usize,
    /// Pooled output buffer, carried with the task so workers never
    /// allocate on the steady-state path.
    out: EncodedChunks,
}

struct EncodeDone {
    seq: u32,
    out: EncodedChunks,
    busy_ns: u64,
    encodes: u64,
    grows: u64,
}

/// Fixed pool of encode worker threads. Tasks are dealt round-robin over
/// per-worker channels; results funnel back over one channel and are
/// reassembled by `seq`. Each worker checks one [`EncodeScratch`] out of
/// a shared [`ScratchPool`] for its lifetime.
struct EncodePool {
    task_txs: Vec<mpsc::Sender<EncodeTask>>,
    done_rx: Mutex<mpsc::Receiver<EncodeDone>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl EncodePool {
    fn spawn(n: usize) -> std::io::Result<Self> {
        let (done_tx, done_rx) = mpsc::channel::<EncodeDone>();
        let scratches = Arc::new(Mutex::new(ScratchPool::with_capacity(n)));
        let mut task_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<EncodeTask>();
            let done_tx = done_tx.clone();
            let scratches = scratches.clone();
            let handle = std::thread::Builder::new()
                .name(format!("damaris-encode-{i}"))
                .spawn(move || {
                    let mut scratch = scratches.lock().take();
                    while let Ok(mut task) = rx.recv() {
                        let t0 = Instant::now();
                        let (e0, g0) = (scratch.encodes(), scratch.grows());
                        // SAFETY: per the dispatch protocol the input
                        // outlives this task; it is only read here,
                        // before the EncodeDone send.
                        let data =
                            unsafe { std::slice::from_raw_parts(task.input.ptr, task.input.len) };
                        task.out.clear();
                        for chunk in data.chunks(task.chunk_bytes) {
                            let enc = task.pipeline.encode_with(chunk, &mut scratch);
                            task.out.push_chunk(enc);
                        }
                        let msg = EncodeDone {
                            seq: task.seq,
                            out: std::mem::take(&mut task.out),
                            busy_ns: t0.elapsed().as_nanos() as u64,
                            encodes: scratch.encodes() - e0,
                            grows: scratch.grows() - g0,
                        };
                        drop(task); // drop the input view before signalling
                        if done_tx.send(msg).is_err() {
                            break;
                        }
                    }
                    scratches.lock().put(scratch);
                })?;
            task_txs.push(tx);
            handles.push(handle);
        }
        Ok(EncodePool {
            task_txs,
            done_rx: Mutex::new(done_rx),
            handles: Mutex::new(handles),
        })
    }
}

impl Drop for EncodePool {
    fn drop(&mut self) {
        // Closing the task channels ends the worker loops.
        self.task_txs.clear();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A staged block's payload: a zero-copy shared-memory reference in
/// thread mode, an owned copy in process mode (the socket server only
/// borrows its mapping during `on_block`).
pub enum StagedData {
    /// Shared-segment view; dropping it after the append releases the
    /// block back to the allocator.
    Shm(BlockRef),
    /// Owned copy, recycled through the engine's buffer pool.
    Owned(Vec<u8>),
}

impl StagedData {
    fn as_slice(&self) -> &[u8] {
        match self {
            StagedData::Shm(b) => b.as_slice(),
            StagedData::Owned(v) => v,
        }
    }
}

impl std::fmt::Debug for StagedData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagedData::Shm(b) => write!(f, "Shm({} bytes)", b.len()),
            StagedData::Owned(v) => write!(f, "Owned({} bytes)", v.len()),
        }
    }
}

/// One iteration's drained blocks, ordered by `(variable, source)`.
type StagedSet = Vec<(VarId, usize, StagedData)>;

struct StagedIteration {
    iteration: u64,
    blocks: StagedSet,
}

/// The stager thread handle: a rendezvous channel (capacity 0) plus the
/// join handle. The zero capacity is the backpressure bound — a send
/// only completes when the stager is ready, so at most one iteration is
/// ever in flight.
struct Stager {
    tx: Option<mpsc::SyncSender<StagedIteration>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Stager {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Writer-side state shared between the synchronous path and the stager
/// thread.
struct EngineCore {
    root: PathBuf,
    sync: bool,
    chunk_rows: u64,
    node_id: usize,
    simulation: String,
    vars: Vec<VarState>,
    /// Opened lazily on the first stored iteration, so an all-skipped run
    /// leaves no file — matching the HDF5 plugin's behaviour.
    writer: Option<FileWriter<BufWriter<File>>>,
    flusher: Option<Flusher>,
    syncs: Arc<AtomicU64>,
    sync_ns: Arc<AtomicU64>,
    iterations: u64,
    skipped_iterations: u64,
    datasets: u64,
    raw_bytes: u64,
    flush_requests: u64,
    encode_ns: u64,
    append_ns: u64,
    worker_busy_ns: u64,
    /// Encode/grow counts reported back by pool workers (worker scratches
    /// are not visible here, so deltas ride on each result).
    pool_encodes: u64,
    pool_grows: u64,
    /// Recycled parallel-encode output buffers.
    chunk_bufs: Vec<EncodedChunks>,
    file_stats: Option<FileStats>,
}

impl EngineCore {
    fn file_path(&self) -> PathBuf {
        self.root
            .join(format!("{}_node{}.dh5", self.simulation, self.node_id))
    }

    fn open_writer(&mut self) -> Result<(), String> {
        if self.writer.is_some() {
            return Ok(());
        }
        let path = self.file_path();
        std::fs::create_dir_all(&self.root)
            .map_err(|e| format!("creating {:?}: {e}", self.root))?;
        let file = File::create(&path).map_err(|e| format!("creating {path:?}: {e}"))?;
        if self.sync {
            let dup = file
                .try_clone()
                .map_err(|e| format!("duplicating handle of {path:?}: {e}"))?;
            self.flusher = Some(
                Flusher::spawn(dup, self.syncs.clone(), self.sync_ns.clone())
                    .map_err(|e| format!("spawning storage flusher: {e}"))?,
            );
        }
        let mut w =
            FileWriter::new(BufWriter::new(file)).map_err(|e| format!("opening {path:?}: {e}"))?;
        w.set_attr("", "simulation", self.simulation.as_str())
            .map_err(|e| e.to_string())?;
        w.set_attr("", "node", self.node_id as i64)
            .map_err(|e| e.to_string())?;
        self.writer = Some(w);
        Ok(())
    }

    /// Store one iteration's blocks (ordered by `(variable, source)`),
    /// two-phase: encode every codec'd block's chunks (fanned out to
    /// `pool` when present, inline otherwise), then append everything in
    /// block order so the file bytes never depend on the worker count.
    ///
    /// Safety contract of the fan-out: tasks carry raw views of
    /// `blocks`' payloads, so this function never returns between
    /// dispatching a task and observing its result (or the closure of
    /// the result channel, which proves every worker — and thus every
    /// queued task holding a view — is gone).
    fn process_iteration(
        &mut self,
        pool: Option<&EncodePool>,
        iteration: u64,
        blocks: &[(VarId, usize, &[u8])],
    ) -> Result<(), String> {
        let stored = |vars: &[VarState], var: VarId| -> bool {
            vars.get(var.index()).is_some_and(|v| v.store)
        };
        if !blocks.iter().any(|&(var, _, _)| stored(&self.vars, var)) {
            // Nothing to persist: count the skip, create no file.
            self.skipped_iterations += 1;
            return Ok(());
        }
        self.open_writer()?;

        // Phase A: encode. `encoded[i]` holds block i's chunks when block
        // i is a stored, codec'd variable.
        let t_enc = Instant::now();
        let mut encoded: Vec<Option<EncodedChunks>> = Vec::with_capacity(blocks.len());
        encoded.resize_with(blocks.len(), || None);
        match pool {
            Some(pool) => {
                let n = pool.task_txs.len();
                let mut dispatched = 0usize;
                let mut send_failed = false;
                for (i, &(var, _, data)) in blocks.iter().enumerate() {
                    let Some(v) = self.vars.get(var.index()) else {
                        continue;
                    };
                    let Some(p) = (if v.store { v.pipeline.clone() } else { None }) else {
                        continue;
                    };
                    let mut dyn_shape = [0u64; 1];
                    let chunk_bytes =
                        v.chunk_bytes_for(v.shape_for(data.len(), &mut dyn_shape), self.chunk_rows);
                    let mut out = self.chunk_bufs.pop().unwrap_or_default();
                    out.clear();
                    let task = EncodeTask {
                        seq: i as u32,
                        pipeline: p,
                        input: SendSlice {
                            ptr: data.as_ptr(),
                            len: data.len(),
                        },
                        chunk_bytes,
                        out,
                    };
                    if pool.task_txs[dispatched % n].send(task).is_err() {
                        send_failed = true;
                        break;
                    }
                    dispatched += 1;
                }
                // Collect every dispatched result before any fallible
                // step — the tasks borrow `blocks`' bytes.
                let rx = pool.done_rx.lock();
                let mut recv_failed = false;
                for _ in 0..dispatched {
                    match rx.recv() {
                        Ok(done) => {
                            self.worker_busy_ns += done.busy_ns;
                            self.pool_encodes += done.encodes;
                            self.pool_grows += done.grows;
                            encoded[done.seq as usize] = Some(done.out);
                        }
                        Err(_) => {
                            recv_failed = true;
                            break;
                        }
                    }
                }
                drop(rx);
                if send_failed || recv_failed {
                    // The result channel only closes when every worker
                    // exited, which also dropped any still-queued tasks.
                    return Err("storage encode worker pool shut down unexpectedly".into());
                }
            }
            None => {
                for (i, &(var, _, data)) in blocks.iter().enumerate() {
                    let Some(v) = self.vars.get_mut(var.index()) else {
                        continue;
                    };
                    let Some(p) = (if v.store { v.pipeline.clone() } else { None }) else {
                        continue;
                    };
                    let t0 = Instant::now();
                    let mut dyn_shape = [0u64; 1];
                    let chunk_bytes =
                        v.chunk_bytes_for(v.shape_for(data.len(), &mut dyn_shape), self.chunk_rows);
                    let mut out = self.chunk_bufs.pop().unwrap_or_default();
                    out.clear();
                    for chunk in data.chunks(chunk_bytes) {
                        let enc = p.encode_with(chunk, &mut v.scratch);
                        out.push_chunk(enc);
                    }
                    self.worker_busy_ns += t0.elapsed().as_nanos() as u64;
                    encoded[i] = Some(out);
                }
            }
        }
        self.encode_ns += t_enc.elapsed().as_nanos() as u64;

        // Phase B: append in block order — codec'd blocks from their
        // pre-encoded chunks, raw blocks straight from the payload.
        let t_app = Instant::now();
        for (i, &(var, source, data)) in blocks.iter().enumerate() {
            if !stored(&self.vars, var) {
                continue;
            }
            let vs = &mut self.vars[var.index()];
            let mut dyn_shape = [0u64; 1];
            let shape = vs.shape_for(data.len(), &mut dyn_shape);
            let ds_path = format!("it{iteration:06}/{}/rank{source}", vs.name);
            let w = self.writer.as_mut().expect("writer opened above");
            let mut b = w
                .dataset(&ds_path, vs.dtype, shape)
                .map_err(|e| format!("dataset {ds_path}: {e}"))?
                .chunked(self.chunk_rows)
                .map_err(|e| e.to_string())?;
            if let Some(p) = &vs.pipeline {
                b = b.with_pipeline(p.clone());
            }
            match encoded[i].take() {
                Some(out) => {
                    b.write_encoded_chunks(data.len() as u64, out.iter())
                        .map_err(|e| format!("writing {ds_path}: {e}"))?;
                    self.chunk_bufs.push(out);
                }
                None => b
                    .write_bytes_with(data, &mut vs.scratch)
                    .map_err(|e| format!("writing {ds_path}: {e}"))?,
            }
            self.datasets += 1;
            self.raw_bytes += data.len() as u64;
        }
        self.iterations += 1;
        // Cheap half on this thread: push userspace buffers to the OS.
        // The expensive fsync runs on the flusher.
        let w = self.writer.as_mut().expect("writer opened above");
        w.flush().map_err(|e| e.to_string())?;
        if let Some(f) = &self.flusher {
            f.request();
            self.flush_requests += 1;
        }
        self.append_ns += t_app.elapsed().as_nanos() as u64;
        Ok(())
    }

    fn stats_locked(&self, workers: usize, drain_ns: u64) -> StorageStats {
        let (mut encodes, mut scratch_grows) = (self.pool_encodes, self.pool_grows);
        for v in &self.vars {
            encodes += v.scratch.encodes();
            scratch_grows += v.scratch.grows();
        }
        StorageStats {
            iterations: self.iterations,
            skipped_iterations: self.skipped_iterations,
            datasets: self.datasets,
            raw_bytes: self.raw_bytes,
            encodes,
            scratch_grows,
            flush_requests: self.flush_requests,
            syncs: self.syncs.load(Ordering::Relaxed),
            drain_ns,
            encode_ns: self.encode_ns,
            append_ns: self.append_ns,
            sync_ns: self.sync_ns.load(Ordering::Relaxed),
            worker_busy_ns: self.worker_busy_ns,
            workers: workers as u64,
        }
    }

    fn finish(&mut self) -> Result<Option<FileStats>, String> {
        // Join the flusher first so no fsync races the footer write.
        self.flusher.take();
        let Some(mut w) = self.writer.take() else {
            return Ok(self.file_stats);
        };
        let stats = if self.sync {
            w.finish_synced()
        } else {
            w.finish()
        }
        .map_err(|e| format!("finishing {:?}: {e}", self.file_path()))?;
        self.file_stats = Some(stats);
        Ok(Some(stats))
    }
}

impl Drop for EngineCore {
    fn drop(&mut self) {
        // Best-effort close so a dropped engine still leaves a readable
        // file; explicit `finish` is the checked path.
        let _ = self.finish();
    }
}

/// The shared storage implementation behind [`StoragePlugin`] (thread
/// world) and [`StorageSink`] (process world). See the module docs for
/// the pipeline it realizes.
pub struct StorageEngine {
    core: Arc<Mutex<EngineCore>>,
    pool: Option<Arc<EncodePool>>,
    workers: usize,
    drain_ns: Arc<AtomicU64>,
    stage_errors: Arc<Mutex<Vec<String>>>,
    /// Recycled process-mode staging buffers ([`StagedData::Owned`]).
    spare_bufs: Arc<Mutex<Vec<Vec<u8>>>>,
    /// Recycled staged-set vectors.
    spare_sets: Arc<Mutex<Vec<StagedSet>>>,
    stager: Option<Stager>,
}

impl StorageEngine {
    /// Build the engine from a configuration's `<store>` block (defaults
    /// apply when absent) and the per-variable `codec` attributes.
    ///
    /// `fallback_dir` hosts the per-node file when `<store>` declares no
    /// `path`. The worker count comes from `<store workers="N">`, or
    /// defaults to the cores the dedicated-core placement leaves idle
    /// (available cores − clients, min 1); with one worker encoding runs
    /// inline on the storing thread and no pool is spawned. Codec specs
    /// were validated at configuration load, so a failure here means the
    /// configuration bypassed validation.
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        let store = cfg.architecture.store.clone().unwrap_or_default();
        let root = store
            .path
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(|| fallback_dir.to_path_buf());
        let mut vars = Vec::with_capacity(cfg.registry().len());
        for (_, e) in cfg.registry().vars() {
            let pipeline = match &e.codec {
                Some(spec) => Some(Arc::new(Pipeline::from_spec(spec).map_err(|err| {
                    format!("variable '{}': invalid codec pipeline: {err}", e.name)
                })?)),
                None => None,
            };
            let shape: Vec<u64> = if e.layout.is_dynamic() {
                Vec::new()
            } else {
                e.layout.dimensions.iter().map(|&d| d as u64).collect()
            };
            vars.push(VarState {
                name: e.name.clone(),
                dtype: elem_dtype(e.elem_type),
                shape,
                elem_bytes: e.elem_type.size_bytes(),
                store: e.store,
                pipeline,
                scratch: EncodeScratch::new(),
            });
        }
        let workers = match store.workers {
            Some(n) => n as usize,
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(cfg.architecture.clients)
                .max(1),
        };
        let pool = if workers >= 2 {
            Some(Arc::new(EncodePool::spawn(workers).map_err(|e| {
                format!("spawning {workers} storage encode workers: {e}")
            })?))
        } else {
            None
        };
        Ok(StorageEngine {
            core: Arc::new(Mutex::new(EngineCore {
                root,
                sync: store.sync,
                chunk_rows: store.chunk_rows,
                node_id,
                simulation: cfg.name.clone(),
                vars,
                writer: None,
                flusher: None,
                syncs: Arc::new(AtomicU64::new(0)),
                sync_ns: Arc::new(AtomicU64::new(0)),
                iterations: 0,
                skipped_iterations: 0,
                datasets: 0,
                raw_bytes: 0,
                flush_requests: 0,
                encode_ns: 0,
                append_ns: 0,
                worker_busy_ns: 0,
                pool_encodes: 0,
                pool_grows: 0,
                chunk_bufs: Vec::new(),
                file_stats: None,
            })),
            pool,
            workers,
            drain_ns: Arc::new(AtomicU64::new(0)),
            stage_errors: Arc::new(Mutex::new(Vec::new())),
            spare_bufs: Arc::new(Mutex::new(Vec::new())),
            spare_sets: Arc::new(Mutex::new(Vec::new())),
            stager: None,
        })
    }

    /// Path of this node's file (created lazily on the first stored
    /// iteration).
    pub fn file_path(&self) -> PathBuf {
        self.core.lock().file_path()
    }

    /// Effective encode worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Counter snapshot (scratch counters summed over all variables and
    /// pool workers).
    pub fn stats(&self) -> StorageStats {
        self.core
            .lock()
            .stats_locked(self.workers, self.drain_ns.load(Ordering::Relaxed))
    }

    /// File summary from [`StorageEngine::finish`], if it ran and a file
    /// was written.
    pub fn file_stats(&self) -> Option<FileStats> {
        self.core.lock().file_stats
    }

    /// Store one completed iteration synchronously: `blocks` yields
    /// `(variable, 0-based client, payload)` views, **ordered by
    /// `(variable, client)`** for cross-world file equivalence. Encoding
    /// still fans out to the worker pool; the call returns after the
    /// append. The overlapped path is [`StorageEngine::submit_iteration`].
    pub fn store_iteration<'b, I>(&mut self, iteration: u64, blocks: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (VarId, usize, &'b [u8])>,
    {
        let views: Vec<(VarId, usize, &[u8])> = blocks.into_iter().collect();
        self.core
            .lock()
            .process_iteration(self.pool.as_deref(), iteration, &views)
    }

    /// Hand one completed iteration to the stager thread and return as
    /// soon as it accepts — the double-buffered path. The rendezvous
    /// hand-off blocks only while the *previous* iteration is still
    /// encoding/writing, bounding the pipeline to one in-flight
    /// iteration. Blocks must be ordered by `(variable, client)`.
    ///
    /// Errors from previously staged iterations surface on the next
    /// submit (or at [`StorageEngine::finish`]).
    pub fn submit_iteration(&mut self, iteration: u64, blocks: StagedSet) -> Result<(), String> {
        let t0 = Instant::now();
        self.ensure_stager();
        let tx = self
            .stager
            .as_ref()
            .and_then(|s| s.tx.as_ref())
            .expect("stager running");
        tx.send(StagedIteration { iteration, blocks })
            .map_err(|_| "storage stager thread exited".to_string())?;
        self.drain_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut errs = self.stage_errors.lock();
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.drain(..).collect::<Vec<_>>().join("; "))
        }
    }

    fn ensure_stager(&mut self) {
        if self.stager.is_some() {
            return;
        }
        let (tx, rx) = mpsc::sync_channel::<StagedIteration>(0);
        let core = self.core.clone();
        let pool = self.pool.clone();
        let errors = self.stage_errors.clone();
        let spare_bufs = self.spare_bufs.clone();
        let spare_sets = self.spare_sets.clone();
        let handle = std::thread::Builder::new()
            .name("damaris-storage-stager".into())
            .spawn(move || {
                while let Ok(mut staged) = rx.recv() {
                    let views: Vec<(VarId, usize, &[u8])> = staged
                        .blocks
                        .iter()
                        .map(|(var, source, data)| (*var, *source, data.as_slice()))
                        .collect();
                    let res =
                        core.lock()
                            .process_iteration(pool.as_deref(), staged.iteration, &views);
                    drop(views);
                    if let Err(e) = res {
                        errors
                            .lock()
                            .push(format!("iteration {}: {e}", staged.iteration));
                    }
                    // Recycle: owned buffers back to the pool, shm refs
                    // dropped (releasing the blocks — at most one
                    // iteration after the serial engine would have).
                    for (_, _, data) in staged.blocks.drain(..) {
                        if let StagedData::Owned(buf) = data {
                            spare_bufs.lock().push(buf);
                        }
                    }
                    spare_sets.lock().push(staged.blocks);
                }
            })
            .expect("spawning storage stager thread");
        self.stager = Some(Stager {
            tx: Some(tx),
            handle: Some(handle),
        });
    }

    /// A recycled staged-set vector (empty), for building the next
    /// iteration's hand-off without allocating.
    fn take_staging_set(&self) -> StagedSet {
        self.spare_sets.lock().pop().unwrap_or_default()
    }

    /// A recycled staging byte buffer (cleared), for process-mode block
    /// copies.
    fn take_staging_buf(&self) -> Vec<u8> {
        let mut buf = self.spare_bufs.lock().pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Close the per-node file: drain the stager, stop the flusher, write
    /// the footer and — when `<store sync>` holds (the default) — `fsync`
    /// everything ([`h5lite::FileWriter::finish_synced`]). Idempotent;
    /// returns `None` when no iteration ever stored data. Errors queued
    /// by staged iterations surface here.
    pub fn finish(&mut self) -> Result<Option<FileStats>, String> {
        // Joining the stager drains any in-flight iteration first.
        self.stager.take();
        let errs: Vec<String> = self.stage_errors.lock().drain(..).collect();
        if !errs.is_empty() {
            return Err(errs.join("; "));
        }
        self.core.lock().finish()
    }
}

impl Drop for StorageEngine {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

impl std::fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEngine")
            .field("file", &self.file_path())
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Thread-mode face of the storage pipeline: a [`Plugin`] named
/// `storage`, fired at every iteration completion on the dedicated core
/// and finished (footer + fsync) at node shutdown via
/// [`Plugin::on_finalize`].
///
/// `on_iteration` only *hands off* the iteration (cloning the blocks'
/// shared-memory refs and passing them to the stager), so the dedicated
/// core's event loop is back to draining queues while the engine encodes
/// and writes — the overlap [`StorageStats::drain_ns`] versus
/// [`StorageStats::encode_ns`]`+`[`StorageStats::append_ns`] makes
/// visible.
///
/// [`crate::NodeBuilder`] registers one automatically when the
/// configuration declares `<store>`; an `<action plugin="storage">` can
/// thin its firing frequency like any other plugin.
#[derive(Debug)]
pub struct StoragePlugin {
    engine: Mutex<StorageEngine>,
}

impl StoragePlugin {
    /// Build over a fresh [`StorageEngine`] (see [`StorageEngine::new`]).
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        Ok(StoragePlugin {
            engine: Mutex::new(StorageEngine::new(cfg, node_id, fallback_dir)?),
        })
    }

    /// Counter snapshot of the underlying engine.
    pub fn stats(&self) -> StorageStats {
        self.engine.lock().stats()
    }

    /// File summary once finished (see [`StorageEngine::file_stats`]).
    pub fn file_stats(&self) -> Option<FileStats> {
        self.engine.lock().file_stats()
    }

    /// Path of this node's file.
    pub fn file_path(&self) -> PathBuf {
        self.engine.lock().file_path()
    }
}

impl Plugin for StoragePlugin {
    fn name(&self) -> &str {
        "storage"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        // ctx.blocks is ordered by (variable, source); cloning a BlockRef
        // is one atomic increment, so the drain is a constant-time pass
        // before the rendezvous hand-off. Empty iterations still go
        // through so the engine's skip counter stays consistent across
        // worlds.
        let mut engine = self.engine.lock();
        let mut set = engine.take_staging_set();
        set.extend(
            ctx.blocks
                .iter()
                .map(|b| (b.variable, b.source, StagedData::Shm(b.data.clone()))),
        );
        engine.submit_iteration(ctx.iteration, set)
    }

    fn on_finalize(&self) -> Result<(), String> {
        self.engine.lock().finish().map(|_| ())
    }
}

/// Process-mode face of the storage pipeline: a [`ProcessSink`] staging
/// each iteration's blocks (copies — the shared mapping is only borrowed
/// during [`ProcessSink::on_block`]) and handing them to the shared
/// [`StorageEngine`]'s stager when the iteration completes, sorted by
/// `(variable, client)` so the file matches the thread world's.
///
/// Staging buffers are pooled and reused across iterations; the
/// one-in-flight bound keeps the pool at roughly two iterations' worth.
/// Errors are collected ([`StorageSink::errors`]) rather than panicking
/// the dedicated-core process mid-serve. Call [`StorageSink::finish`]
/// after [`crate::ProcessServer::serve`] returns.
pub struct StorageSink {
    engine: StorageEngine,
    staged: BTreeMap<u64, StagedSet>,
    errors: Vec<String>,
}

impl StorageSink {
    /// Build over a fresh [`StorageEngine`] (see [`StorageEngine::new`]).
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        Ok(StorageSink {
            engine: StorageEngine::new(cfg, node_id, fallback_dir)?,
            staged: BTreeMap::new(),
            errors: Vec::new(),
        })
    }

    /// Counter snapshot of the underlying engine.
    pub fn stats(&self) -> StorageStats {
        self.engine.stats()
    }

    /// Path of this node's file.
    pub fn file_path(&self) -> PathBuf {
        self.engine.file_path()
    }

    /// Errors collected while serving (empty on a clean run).
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Close the per-node file (see [`StorageEngine::finish`]).
    pub fn finish(&mut self) -> Result<Option<FileStats>, String> {
        match self.engine.finish() {
            Ok(stats) => Ok(stats),
            Err(e) => {
                self.errors.push(e.clone());
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for StorageSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageSink")
            .field("engine", &self.engine)
            .field("staged_iterations", &self.staged.len())
            .field("errors", &self.errors.len())
            .finish()
    }
}

impl ProcessSink for StorageSink {
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]) {
        let mut buf = self.engine.take_staging_buf();
        buf.extend_from_slice(data);
        let set = self
            .staged
            .entry(iteration)
            .or_insert_with(|| self.engine.take_staging_set());
        // 1-based world ranks become 0-based client indices, so dataset
        // names match thread mode.
        set.push((var, source.saturating_sub(1), StagedData::Owned(buf)));
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        let mut blocks = self
            .staged
            .remove(&iteration)
            .unwrap_or_else(|| self.engine.take_staging_set());
        blocks.sort_by_key(|&(var, source, _)| (var.raw(), source));
        if let Err(msg) = self.engine.submit_iteration(iteration, blocks) {
            self.errors.push(format!("iteration {iteration}: {msg}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredBlock;
    use damaris_shm::SharedSegment;

    fn config(extra_arch: &str, extra_vars: &str) -> Configuration {
        Configuration::from_str(&format!(
            r#"<simulation name="sp">
                 <architecture>{extra_arch}</architecture>
                 <data>
                   <layout name="l" type="f64" dimensions="4,8"/>
                   <variable name="u" layout="l" codec="xor-delta8,shuffle8,rle"/>
                   <variable name="raw" layout="l"/>
                   {extra_vars}
                 </data>
               </simulation>"#
        ))
        .unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("damaris-storage-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn field(seed: f64) -> Vec<f64> {
        (0..32).map(|i| 300.0 + seed + (i % 5) as f64).collect()
    }

    fn bytes_of(v: &[f64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn engine_writes_one_file_decodable_across_iterations() {
        let cfg = config(r#"<store type="h5lite" chunk_rows="2"/>"#, "");
        let dir = tmpdir("engine");
        let mut engine = StorageEngine::new(&cfg, 3, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();
        for it in 0..4u64 {
            let a = bytes_of(&field(it as f64));
            let b = bytes_of(&field(it as f64 * 10.0));
            engine
                .store_iteration(it, [(u, 0usize, a.as_slice()), (raw, 1usize, b.as_slice())])
                .unwrap();
        }
        let stats = engine.finish().unwrap().unwrap();
        assert_eq!(stats.datasets, 8);
        assert!(
            stats.stored_bytes < stats.logical_bytes,
            "codec'd variable must shrink the file"
        );
        // finish is idempotent and keeps the stats.
        assert_eq!(engine.finish().unwrap().unwrap(), stats);
        let mut r = h5lite::FileReader::open(engine.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000002/u/rank0").unwrap(), field(2.0));
        assert_eq!(
            r.read_pod::<f64>("it000003/raw/rank1").unwrap(),
            field(30.0)
        );
        assert_eq!(r.attr("", "node").unwrap().as_i64(), Some(3));
        let counters = engine.stats();
        assert_eq!(counters.iterations, 4);
        assert_eq!(counters.datasets, 8);
        assert_eq!(counters.raw_bytes, 8 * 256);
        assert!(
            counters.encodes > 0,
            "codec'd variable went through scratch"
        );
        assert!(counters.encode_ns > 0, "encode stage timed");
        assert!(counters.append_ns > 0, "append stage timed");
        assert!(counters.workers >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_scratch_stops_growing_after_warmup() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("scratch");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let bytes = bytes_of(&field(1.0));
        engine
            .store_iteration(0, [(u, 0usize, bytes.as_slice())])
            .unwrap();
        let warm = engine.stats();
        for it in 1..50u64 {
            engine
                .store_iteration(it, [(u, 0usize, bytes.as_slice())])
                .unwrap();
        }
        let done = engine.stats();
        assert_eq!(
            done.scratch_grows, warm.scratch_grows,
            "steady-state codec path must not grow scratch buffers"
        );
        assert!(done.encodes > warm.encodes, "encodes kept running");
        engine.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_handles_dynamic_layouts_and_store_false() {
        let cfg = Configuration::from_str(
            r#"<simulation name="dynsp">
                 <architecture>
                   <buffer size="1048576" allocator="buddy"/>
                   <store type="h5lite" sync="false"/>
                 </architecture>
                 <data>
                   <layout name="patch" type="f64" dimensions="dynamic" max_size="8192"/>
                   <layout name="l" type="f64" dimensions="8"/>
                   <variable name="amr" layout="patch" codec="xor-delta8,rle"/>
                   <variable name="hidden" layout="l" store="false"/>
                 </data>
               </simulation>"#,
        )
        .unwrap();
        let dir = tmpdir("dyn");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        let amr = cfg.registry().var_id("amr").unwrap();
        let hidden = cfg.registry().var_id("hidden").unwrap();
        let cells: Vec<f64> = (0..37).map(|i| i as f64).collect();
        let cb = bytes_of(&cells);
        let hb = [0u8; 64];
        engine
            .store_iteration(5, [(amr, 2usize, cb.as_slice()), (hidden, 0usize, &hb[..])])
            .unwrap();
        let stats = engine.finish().unwrap().unwrap();
        assert_eq!(stats.datasets, 1, "store=false variable skipped");
        let mut r = h5lite::FileReader::open(engine.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000005/amr/rank2").unwrap(), cells);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_all_skipped_iterations_count_skips_and_leave_no_file() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("empty");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        // A fully empty iteration…
        engine
            .store_iteration(0, std::iter::empty::<(VarId, usize, &[u8])>())
            .unwrap();
        let s = engine.stats();
        assert_eq!(s.iterations, 0, "empty iteration must not count as stored");
        assert_eq!(s.skipped_iterations, 1);
        // …and the same through the asynchronous hand-off path.
        engine.submit_iteration(1, Vec::new()).unwrap();
        engine.finish().unwrap();
        let s = engine.stats();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.skipped_iterations, 2);
        assert!(!engine.file_path().exists(), "skips create no file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_store_false_iteration_is_a_skip_not_a_store() {
        // Regression guard: an iteration whose every block is
        // store="false" must bump the skip counter, not `iterations`,
        // and must not create the file.
        let cfg = config(
            r#"<store type="h5lite"/>"#,
            r#"<variable name="ghost" layout="l" store="false"/>"#,
        );
        let dir = tmpdir("allskip");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        let ghost = cfg.registry().var_id("ghost").unwrap();
        let bytes = bytes_of(&field(0.0));
        engine
            .store_iteration(0, [(ghost, 0usize, bytes.as_slice())])
            .unwrap();
        let s = engine.stats();
        assert_eq!((s.iterations, s.skipped_iterations, s.datasets), (0, 1, 0));
        assert_eq!(engine.finish().unwrap(), None);
        assert!(!engine.file_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submitted_iterations_match_synchronous_store_byte_for_byte() {
        // The overlapped hand-off path must write the same file the
        // synchronous path writes, and recycle its staged sets.
        let cfg = config(r#"<store type="h5lite" chunk_rows="2"/>"#, "");
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();

        let dir_sync = tmpdir("submit-sync");
        let mut sync_engine = StorageEngine::new(&cfg, 0, &dir_sync).unwrap();
        let dir_sub = tmpdir("submit-async");
        let mut sub_engine = StorageEngine::new(&cfg, 0, &dir_sub).unwrap();
        for it in 0..6u64 {
            let a = bytes_of(&field(it as f64));
            let b = bytes_of(&field(it as f64 + 0.5));
            sync_engine
                .store_iteration(it, [(u, 0usize, a.as_slice()), (raw, 1usize, b.as_slice())])
                .unwrap();
            let mut set = sub_engine.take_staging_set();
            set.push((u, 0, StagedData::Owned(a)));
            set.push((raw, 1, StagedData::Owned(b)));
            sub_engine.submit_iteration(it, set).unwrap();
        }
        sync_engine.finish().unwrap().unwrap();
        sub_engine.finish().unwrap().unwrap();
        let sync_bytes = std::fs::read(sync_engine.file_path()).unwrap();
        let sub_bytes = std::fs::read(sub_engine.file_path()).unwrap();
        assert_eq!(
            sync_bytes, sub_bytes,
            "hand-off path must be byte-identical"
        );
        let s = sub_engine.stats();
        assert_eq!(s.iterations, 6);
        assert!(s.drain_ns > 0, "hand-off path was timed");
        std::fs::remove_dir_all(&dir_sync).ok();
        std::fs::remove_dir_all(&dir_sub).ok();
    }

    #[test]
    fn parallel_workers_write_byte_identical_files() {
        // workers=1 (inline) vs workers=3 (pool) over a mix of codec'd,
        // raw and dynamic blocks: files must match byte for byte.
        let arch = |workers: &str| {
            format!(
                r#"<buffer size="1048576" allocator="buddy"/>
                   <store type="h5lite" chunk_rows="2"{workers}/>"#
            )
        };
        let vars = r#"<layout name="patch" type="f64" dimensions="dynamic" max_size="8192"/>
                      <variable name="amr" layout="patch" codec="xor-delta8,rle"/>"#;
        let make = |workers: &str, tag: &str| {
            let cfg = config(&arch(workers), vars);
            let dir = tmpdir(tag);
            (StorageEngine::new(&cfg, 0, &dir).unwrap(), cfg, dir)
        };
        let (mut serial, cfg, dir_a) = make(r#" workers="1""#, "wrk1");
        let (mut parallel, _, dir_b) = make(r#" workers="3""#, "wrk3");
        assert_eq!(serial.workers(), 1);
        assert_eq!(parallel.workers(), 3);
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();
        let amr = cfg.registry().var_id("amr").unwrap();
        for it in 0..5u64 {
            let a = bytes_of(&field(it as f64));
            let b = bytes_of(&field(it as f64 * 3.0));
            let c = bytes_of(&(0..17 + it).map(|i| i as f64).collect::<Vec<_>>());
            let blocks = [
                (u, 0usize, a.as_slice()),
                (u, 1usize, a.as_slice()),
                (raw, 0usize, b.as_slice()),
                (amr, 1usize, c.as_slice()),
            ];
            serial.store_iteration(it, blocks).unwrap();
            parallel.store_iteration(it, blocks).unwrap();
        }
        serial.finish().unwrap().unwrap();
        parallel.finish().unwrap().unwrap();
        let sa = std::fs::read(serial.file_path()).unwrap();
        let sb = std::fs::read(parallel.file_path()).unwrap();
        assert_eq!(sa, sb, "worker count must not change file bytes");
        let ps = parallel.stats();
        assert_eq!(ps.workers, 3);
        assert!(ps.worker_busy_ns > 0, "pool workers did the encoding");
        assert!(ps.encodes >= 5 * 3, "worker encodes counted in stats");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn plugin_stores_iteration_blocks_and_finishes_on_finalize() {
        let cfg = config(r#"<store type="h5lite" chunk_rows="2"/>"#, "");
        let dir = tmpdir("plugin");
        let seg = SharedSegment::new(1 << 16).unwrap();
        let data = field(7.0);
        let mut b = seg.allocate(256).unwrap();
        b.write_pod(&data);
        let blocks = vec![StoredBlock {
            variable: cfg.registry().var_id("u").unwrap(),
            source: 1,
            iteration: 9,
            data: b.freeze(),
        }];
        let plugin = StoragePlugin::new(&cfg, 0, &dir).unwrap();
        let act = damaris_xml::schema::Action {
            name: "storage".into(),
            plugin: "storage".into(),
            trigger: damaris_xml::schema::Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        };
        let ctx = IterationCtx {
            iteration: 9,
            node_id: 0,
            simulation: "sp",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        plugin.on_finalize().unwrap();
        assert!(plugin.file_stats().is_some());
        let stats = plugin.stats();
        assert!(stats.drain_ns > 0, "hand-off timed on the event path");
        let mut r = h5lite::FileReader::open(plugin.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000009/u/rank1").unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_sorts_staged_blocks_and_reuses_buffers() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("sink");
        let mut sink = StorageSink::new(&cfg, 0, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();
        let a = field(0.0);
        let ab = bytes_of(&a);
        for it in 0..3u64 {
            // Arrival order scrambled; sources are 1-based world ranks.
            sink.on_block(raw, it, 2, &ab);
            sink.on_block(u, it, 2, &ab);
            sink.on_block(u, it, 1, &ab);
            sink.on_iteration_complete(it);
        }
        assert!(sink.errors().is_empty(), "{:?}", sink.errors());
        sink.finish().unwrap().unwrap();
        // One-in-flight staging: the pool never needs more than two
        // iterations' worth of buffers (3 per iteration here), and all
        // of them are back in the pool after finish.
        let pooled = sink.engine.spare_bufs.lock().len();
        assert!(
            (3..=6).contains(&pooled),
            "staging buffers pooled and bounded, got {pooled}"
        );
        let mut r = h5lite::FileReader::open(sink.file_path()).unwrap();
        // 1-based rank 1 becomes rank0, matching thread mode.
        assert_eq!(r.read_pod::<f64>("it000000/u/rank0").unwrap(), a);
        assert_eq!(r.read_pod::<f64>("it000002/raw/rank1").unwrap(), a);
        std::fs::remove_dir_all(&dir).ok();
    }
}
