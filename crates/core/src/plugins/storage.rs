//! The real storage pipeline on the dedicated core: compression →
//! h5lite → one file per node, at zero simulation overhead.
//!
//! §IV.D: the dedicated core absorbs compression and I/O in its spare
//! time — "we leveraged the idle time of dedicated cores to compress the
//! data prior to writing it" (~600 % compression on CM1 data) — while the
//! client-visible write cost stays the shared-memory copy alone. This
//! module is that path made real:
//!
//! * [`StorageEngine`] — the shared implementation. At every iteration
//!   completion it drains the iteration's blocks **zero-copy out of the
//!   shared segment**, runs each variable's [`codec::Pipeline`] through a
//!   per-variable [`EncodeScratch`] (steady-state encodes reuse the same
//!   two buffers — no per-iteration allocation on the codec path), and
//!   appends chunked datasets to **one h5lite file per node**
//!   (`{simulation}_node{id}.dh5`, datasets at
//!   `it{iteration:06}/{variable}/rank{client}`).
//! * Durability is split off the write path: the writing thread only
//!   flushes its userspace buffer; a background **flusher thread**
//!   `fsync`s through a duplicated file handle
//!   ([`h5lite::FileWriter::sync_data`] semantics, coalescing a backlog
//!   of requests into one sync). [`StorageEngine::finish`] closes the
//!   file with [`h5lite::FileWriter::finish_synced`] when
//!   `<store sync="true">` (the default).
//! * [`StoragePlugin`] wraps the engine as a thread-mode [`Plugin`]
//!   (auto-registered by [`crate::NodeBuilder`] when the configuration
//!   declares `<store>`); [`StorageSink`] wraps it as a process-mode
//!   [`ProcessSink`] (wired by [`crate::Damaris`]'s launcher). Both
//!   worlds run the same bytes through the same engine, so a `<store>`
//!   run produces equivalent files regardless of where the dedicated
//!   core lives.
//!
//! Configured from the XML surface:
//!
//! ```xml
//! <architecture>
//!   <store type="h5lite" path="out" sync="true" chunk_rows="64"/>
//! </architecture>
//! <data>
//!   <variable name="u" layout="row" codec="xor-delta8,shuffle8,rle"/>
//! </data>
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use codec::pipeline::EncodeScratch;
use codec::Pipeline;
use damaris_xml::schema::Configuration;
use damaris_xml::VarId;
use h5lite::{FileStats, FileWriter};
use parking_lot::Mutex;

use super::{elem_dtype, IterationCtx, Plugin};
use crate::process::ProcessSink;

/// Lifetime counters of one [`StorageEngine`].
///
/// `scratch_grows` is the zero-allocation witness: every codec encode
/// that had to grow a scratch buffer counts once, so a warmed pipeline
/// holds it constant while `encodes` keeps climbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Iterations stored (at least one dataset appended).
    pub iterations: u64,
    /// Datasets appended (one per stored block).
    pub datasets: u64,
    /// Logical payload bytes consumed out of shared memory.
    pub raw_bytes: u64,
    /// Codec encode calls (one per stored chunk of a codec'd variable).
    pub encodes: u64,
    /// Encodes that grew a scratch buffer — constant after warm-up when
    /// the steady-state codec path is allocation-free.
    pub scratch_grows: u64,
    /// Flush requests handed to the background flusher.
    pub flush_requests: u64,
    /// `fsync`s the flusher completed (≤ `flush_requests`: a backlog is
    /// coalesced into one sync).
    pub syncs: u64,
}

/// Per-variable state resolved once at engine construction, so the
/// steady-state write loop never parses a codec spec or re-derives a
/// layout.
struct VarState {
    /// Fully qualified variable name (dataset path component).
    name: String,
    dtype: h5lite::Dtype,
    /// Declared extents; empty for dynamic layouts (shape derived from
    /// each write's byte count).
    shape: Vec<u64>,
    elem_bytes: usize,
    /// Whether storage persists this variable (`store="false"` opts out).
    store: bool,
    /// Pre-built compression pipeline, shared with every dataset builder
    /// (no per-dataset spec re-parse).
    pipeline: Option<Arc<Pipeline>>,
    /// Reused encode scratch — the no-steady-state-allocation guarantee.
    scratch: EncodeScratch,
}

/// Background fsync thread over a duplicated file handle. The writing
/// thread stays on its buffered writer; requests arriving while a sync is
/// in flight coalesce into the next one.
struct Flusher {
    tx: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn(file: File, syncs: Arc<AtomicU64>) -> std::io::Result<Self> {
        let (tx, rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("damaris-storage-flusher".into())
            .spawn(move || {
                while rx.recv().is_ok() {
                    // Coalesce the backlog into one fsync.
                    while rx.try_recv().is_ok() {}
                    if file.sync_data().is_ok() {
                        syncs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })?;
        Ok(Flusher {
            tx: Some(tx),
            handle: Some(handle),
        })
    }

    fn request(&self) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(());
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        // Closing the channel ends the thread's loop; joining guarantees
        // any in-flight fsync finished before the writer is closed.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The shared storage implementation behind [`StoragePlugin`] (thread
/// world) and [`StorageSink`] (process world). See the module docs for
/// the pipeline it realizes.
pub struct StorageEngine {
    root: PathBuf,
    sync: bool,
    chunk_rows: u64,
    node_id: usize,
    simulation: String,
    vars: Vec<VarState>,
    /// Opened lazily on the first stored iteration, so an all-skipped run
    /// leaves no file — matching the HDF5 plugin's behaviour.
    writer: Option<FileWriter<BufWriter<File>>>,
    flusher: Option<Flusher>,
    syncs: Arc<AtomicU64>,
    iterations: u64,
    datasets: u64,
    raw_bytes: u64,
    flush_requests: u64,
    file_stats: Option<FileStats>,
}

impl StorageEngine {
    /// Build the engine from a configuration's `<store>` block (defaults
    /// apply when absent) and the per-variable `codec` attributes.
    ///
    /// `fallback_dir` hosts the per-node file when `<store>` declares no
    /// `path`. Codec specs were validated at configuration load, so a
    /// failure here means the configuration bypassed validation.
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        let store = cfg.architecture.store.clone().unwrap_or_default();
        let root = store
            .path
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(|| fallback_dir.to_path_buf());
        let mut vars = Vec::with_capacity(cfg.registry().len());
        for (_, e) in cfg.registry().vars() {
            let pipeline = match &e.codec {
                Some(spec) => Some(Arc::new(Pipeline::from_spec(spec).map_err(|err| {
                    format!("variable '{}': invalid codec pipeline: {err}", e.name)
                })?)),
                None => None,
            };
            let shape: Vec<u64> = if e.layout.is_dynamic() {
                Vec::new()
            } else {
                e.layout.dimensions.iter().map(|&d| d as u64).collect()
            };
            vars.push(VarState {
                name: e.name.clone(),
                dtype: elem_dtype(e.elem_type),
                shape,
                elem_bytes: e.elem_type.size_bytes(),
                store: e.store,
                pipeline,
                scratch: EncodeScratch::new(),
            });
        }
        Ok(StorageEngine {
            root,
            sync: store.sync,
            chunk_rows: store.chunk_rows,
            node_id,
            simulation: cfg.name.clone(),
            vars,
            writer: None,
            flusher: None,
            syncs: Arc::new(AtomicU64::new(0)),
            iterations: 0,
            datasets: 0,
            raw_bytes: 0,
            flush_requests: 0,
            file_stats: None,
        })
    }

    /// Path of this node's file (created lazily on the first stored
    /// iteration).
    pub fn file_path(&self) -> PathBuf {
        self.root
            .join(format!("{}_node{}.dh5", self.simulation, self.node_id))
    }

    /// Counter snapshot (scratch counters summed over all variables).
    pub fn stats(&self) -> StorageStats {
        let (mut encodes, mut scratch_grows) = (0, 0);
        for v in &self.vars {
            encodes += v.scratch.encodes();
            scratch_grows += v.scratch.grows();
        }
        StorageStats {
            iterations: self.iterations,
            datasets: self.datasets,
            raw_bytes: self.raw_bytes,
            encodes,
            scratch_grows,
            flush_requests: self.flush_requests,
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }

    /// File summary from [`StorageEngine::finish`], if it ran and a file
    /// was written.
    pub fn file_stats(&self) -> Option<FileStats> {
        self.file_stats
    }

    fn open_writer(&mut self) -> Result<(), String> {
        if self.writer.is_some() {
            return Ok(());
        }
        let path = self.file_path();
        std::fs::create_dir_all(&self.root)
            .map_err(|e| format!("creating {:?}: {e}", self.root))?;
        let file = File::create(&path).map_err(|e| format!("creating {path:?}: {e}"))?;
        if self.sync {
            let dup = file
                .try_clone()
                .map_err(|e| format!("duplicating handle of {path:?}: {e}"))?;
            self.flusher = Some(
                Flusher::spawn(dup, self.syncs.clone())
                    .map_err(|e| format!("spawning storage flusher: {e}"))?,
            );
        }
        let mut w =
            FileWriter::new(BufWriter::new(file)).map_err(|e| format!("opening {path:?}: {e}"))?;
        w.set_attr("", "simulation", self.simulation.as_str())
            .map_err(|e| e.to_string())?;
        w.set_attr("", "node", self.node_id as i64)
            .map_err(|e| e.to_string())?;
        self.writer = Some(w);
        Ok(())
    }

    /// Store one completed iteration: `blocks` yields
    /// `(variable, 0-based client, payload)` views — in thread mode
    /// straight out of the shared segment, zero-copy. Blocks must arrive
    /// ordered by `(variable, client)` for cross-world file equivalence.
    pub fn store_iteration<'b, I>(&mut self, iteration: u64, blocks: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (VarId, usize, &'b [u8])>,
    {
        let mut wrote = false;
        for (var, source, data) in blocks {
            match self.vars.get(var.index()) {
                Some(v) if v.store => {}
                _ => continue,
            }
            if !wrote {
                // First stored block of the iteration: make sure the
                // file exists (lazy, so all-skipped runs leave none).
                self.open_writer()?;
                wrote = true;
            }
            let vs = &mut self.vars[var.index()];
            let dyn_shape = [(data.len() / vs.elem_bytes.max(1)) as u64];
            let shape: &[u64] = if vs.shape.is_empty() {
                &dyn_shape
            } else {
                &vs.shape
            };
            let ds_path = format!("it{iteration:06}/{}/rank{source}", vs.name);
            let w = self.writer.as_mut().expect("writer opened above");
            let mut b = w
                .dataset(&ds_path, vs.dtype, shape)
                .map_err(|e| format!("dataset {ds_path}: {e}"))?
                .chunked(self.chunk_rows)
                .map_err(|e| e.to_string())?;
            if let Some(p) = &vs.pipeline {
                b = b.with_pipeline(p.clone());
            }
            b.write_bytes_with(data, &mut vs.scratch)
                .map_err(|e| format!("writing {ds_path}: {e}"))?;
            self.datasets += 1;
            self.raw_bytes += data.len() as u64;
        }
        if wrote {
            self.iterations += 1;
            // Cheap half on this thread: push userspace buffers to the
            // OS. The expensive fsync runs on the flusher.
            let w = self.writer.as_mut().expect("writer opened above");
            w.flush().map_err(|e| e.to_string())?;
            if let Some(f) = &self.flusher {
                f.request();
                self.flush_requests += 1;
            }
        }
        Ok(())
    }

    /// Close the per-node file: stop the flusher, write the footer and —
    /// when `<store sync>` holds (the default) — `fsync` everything
    /// ([`h5lite::FileWriter::finish_synced`]). Idempotent; returns
    /// `None` when no iteration ever stored data.
    pub fn finish(&mut self) -> Result<Option<FileStats>, String> {
        // Join the flusher first so no fsync races the footer write.
        self.flusher.take();
        let Some(mut w) = self.writer.take() else {
            return Ok(self.file_stats);
        };
        let stats = if self.sync {
            w.finish_synced()
        } else {
            w.finish()
        }
        .map_err(|e| format!("finishing {:?}: {e}", self.file_path()))?;
        self.file_stats = Some(stats);
        Ok(Some(stats))
    }
}

impl Drop for StorageEngine {
    fn drop(&mut self) {
        // Best-effort close so a dropped engine still leaves a readable
        // file; explicit `finish` is the checked path.
        let _ = self.finish();
    }
}

impl std::fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEngine")
            .field("file", &self.file_path())
            .field("sync", &self.sync)
            .field("chunk_rows", &self.chunk_rows)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Thread-mode face of the storage pipeline: a [`Plugin`] named
/// `storage`, fired at every iteration completion on the dedicated core
/// and finished (footer + fsync) at node shutdown via
/// [`Plugin::on_finalize`].
///
/// [`crate::NodeBuilder`] registers one automatically when the
/// configuration declares `<store>`; an `<action plugin="storage">` can
/// thin its firing frequency like any other plugin.
#[derive(Debug)]
pub struct StoragePlugin {
    engine: Mutex<StorageEngine>,
}

impl StoragePlugin {
    /// Build over a fresh [`StorageEngine`] (see [`StorageEngine::new`]).
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        Ok(StoragePlugin {
            engine: Mutex::new(StorageEngine::new(cfg, node_id, fallback_dir)?),
        })
    }

    /// Counter snapshot of the underlying engine.
    pub fn stats(&self) -> StorageStats {
        self.engine.lock().stats()
    }

    /// File summary once finished (see [`StorageEngine::file_stats`]).
    pub fn file_stats(&self) -> Option<FileStats> {
        self.engine.lock().file_stats()
    }

    /// Path of this node's file.
    pub fn file_path(&self) -> PathBuf {
        self.engine.lock().file_path()
    }
}

impl Plugin for StoragePlugin {
    fn name(&self) -> &str {
        "storage"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        if ctx.blocks.is_empty() {
            return Ok(());
        }
        // ctx.blocks is ordered by (variable, source) and views shared
        // memory in place — the zero-copy drain.
        self.engine.lock().store_iteration(
            ctx.iteration,
            ctx.blocks
                .iter()
                .map(|b| (b.variable, b.source, b.data.as_slice())),
        )
    }

    fn on_finalize(&self) -> Result<(), String> {
        self.engine.lock().finish().map(|_| ())
    }
}

/// One staged block of a not-yet-complete iteration (process mode).
struct StagedBlock {
    var: VarId,
    /// 0-based client index (already converted from the 1-based world
    /// rank, so dataset names match thread mode).
    source: usize,
    buf: Vec<u8>,
}

/// Process-mode face of the storage pipeline: a [`ProcessSink`] staging
/// each iteration's blocks (copies — the shared mapping is only borrowed
/// during [`ProcessSink::on_block`]) and running them through the shared
/// [`StorageEngine`] when the iteration completes, sorted by
/// `(variable, client)` so the file matches the thread world's.
///
/// Staging buffers are pooled and reused across iterations. Errors are
/// collected ([`StorageSink::errors`]) rather than panicking the
/// dedicated-core process mid-serve. Call [`StorageSink::finish`] after
/// [`crate::ProcessServer::serve`] returns.
pub struct StorageSink {
    engine: StorageEngine,
    staged: BTreeMap<u64, Vec<StagedBlock>>,
    spare: Vec<Vec<u8>>,
    errors: Vec<String>,
}

impl StorageSink {
    /// Build over a fresh [`StorageEngine`] (see [`StorageEngine::new`]).
    pub fn new(cfg: &Configuration, node_id: usize, fallback_dir: &Path) -> Result<Self, String> {
        Ok(StorageSink {
            engine: StorageEngine::new(cfg, node_id, fallback_dir)?,
            staged: BTreeMap::new(),
            spare: Vec::new(),
            errors: Vec::new(),
        })
    }

    /// Counter snapshot of the underlying engine.
    pub fn stats(&self) -> StorageStats {
        self.engine.stats()
    }

    /// Path of this node's file.
    pub fn file_path(&self) -> PathBuf {
        self.engine.file_path()
    }

    /// Errors collected while serving (empty on a clean run).
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Close the per-node file (see [`StorageEngine::finish`]).
    pub fn finish(&mut self) -> Result<Option<FileStats>, String> {
        self.engine.finish()
    }
}

impl std::fmt::Debug for StorageSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageSink")
            .field("engine", &self.engine)
            .field("staged_iterations", &self.staged.len())
            .field("errors", &self.errors.len())
            .finish()
    }
}

impl ProcessSink for StorageSink {
    fn on_block(&mut self, var: VarId, iteration: u64, source: usize, data: &[u8]) {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(data);
        self.staged.entry(iteration).or_default().push(StagedBlock {
            var,
            source: source.saturating_sub(1),
            buf,
        });
    }

    fn on_iteration_complete(&mut self, iteration: u64) {
        let Some(mut blocks) = self.staged.remove(&iteration) else {
            return;
        };
        blocks.sort_by_key(|b| (b.var.raw(), b.source));
        let res = self.engine.store_iteration(
            iteration,
            blocks.iter().map(|b| (b.var, b.source, b.buf.as_slice())),
        );
        if let Err(msg) = res {
            self.errors.push(format!("iteration {iteration}: {msg}"));
        }
        for b in blocks {
            self.spare.push(b.buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredBlock;
    use damaris_shm::SharedSegment;

    fn config(extra_arch: &str, extra_vars: &str) -> Configuration {
        Configuration::from_str(&format!(
            r#"<simulation name="sp">
                 <architecture>{extra_arch}</architecture>
                 <data>
                   <layout name="l" type="f64" dimensions="4,8"/>
                   <variable name="u" layout="l" codec="xor-delta8,shuffle8,rle"/>
                   <variable name="raw" layout="l"/>
                   {extra_vars}
                 </data>
               </simulation>"#
        ))
        .unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("damaris-storage-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn field(seed: f64) -> Vec<f64> {
        (0..32).map(|i| 300.0 + seed + (i % 5) as f64).collect()
    }

    fn bytes_of(v: &[f64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn engine_writes_one_file_decodable_across_iterations() {
        let cfg = config(r#"<store type="h5lite" chunk_rows="2"/>"#, "");
        let dir = tmpdir("engine");
        let mut engine = StorageEngine::new(&cfg, 3, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();
        for it in 0..4u64 {
            let a = bytes_of(&field(it as f64));
            let b = bytes_of(&field(it as f64 * 10.0));
            engine
                .store_iteration(it, [(u, 0usize, a.as_slice()), (raw, 1usize, b.as_slice())])
                .unwrap();
        }
        let stats = engine.finish().unwrap().unwrap();
        assert_eq!(stats.datasets, 8);
        assert!(
            stats.stored_bytes < stats.logical_bytes,
            "codec'd variable must shrink the file"
        );
        // finish is idempotent and keeps the stats.
        assert_eq!(engine.finish().unwrap().unwrap(), stats);
        let mut r = h5lite::FileReader::open(engine.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000002/u/rank0").unwrap(), field(2.0));
        assert_eq!(
            r.read_pod::<f64>("it000003/raw/rank1").unwrap(),
            field(30.0)
        );
        assert_eq!(r.attr("", "node").unwrap().as_i64(), Some(3));
        let counters = engine.stats();
        assert_eq!(counters.iterations, 4);
        assert_eq!(counters.datasets, 8);
        assert_eq!(counters.raw_bytes, 8 * 256);
        assert!(
            counters.encodes > 0,
            "codec'd variable went through scratch"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_scratch_stops_growing_after_warmup() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("scratch");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let bytes = bytes_of(&field(1.0));
        engine
            .store_iteration(0, [(u, 0usize, bytes.as_slice())])
            .unwrap();
        let warm = engine.stats();
        for it in 1..50u64 {
            engine
                .store_iteration(it, [(u, 0usize, bytes.as_slice())])
                .unwrap();
        }
        let done = engine.stats();
        assert_eq!(
            done.scratch_grows, warm.scratch_grows,
            "steady-state codec path must not grow scratch buffers"
        );
        assert!(done.encodes > warm.encodes, "encodes kept running");
        engine.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_handles_dynamic_layouts_and_store_false() {
        let cfg = Configuration::from_str(
            r#"<simulation name="dynsp">
                 <architecture>
                   <buffer size="1048576" allocator="buddy"/>
                   <store type="h5lite" sync="false"/>
                 </architecture>
                 <data>
                   <layout name="patch" type="f64" dimensions="dynamic" max_size="8192"/>
                   <layout name="l" type="f64" dimensions="8"/>
                   <variable name="amr" layout="patch" codec="xor-delta8,rle"/>
                   <variable name="hidden" layout="l" store="false"/>
                 </data>
               </simulation>"#,
        )
        .unwrap();
        let dir = tmpdir("dyn");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        let amr = cfg.registry().var_id("amr").unwrap();
        let hidden = cfg.registry().var_id("hidden").unwrap();
        let cells: Vec<f64> = (0..37).map(|i| i as f64).collect();
        let cb = bytes_of(&cells);
        let hb = [0u8; 64];
        engine
            .store_iteration(5, [(amr, 2usize, cb.as_slice()), (hidden, 0usize, &hb[..])])
            .unwrap();
        let stats = engine.finish().unwrap().unwrap();
        assert_eq!(stats.datasets, 1, "store=false variable skipped");
        let mut r = h5lite::FileReader::open(engine.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000005/amr/rank2").unwrap(), cells);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_run_leaves_no_file() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("empty");
        let mut engine = StorageEngine::new(&cfg, 0, &dir).unwrap();
        engine
            .store_iteration(0, std::iter::empty::<(VarId, usize, &[u8])>())
            .unwrap();
        assert_eq!(engine.finish().unwrap(), None);
        assert!(!engine.file_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plugin_stores_iteration_blocks_and_finishes_on_finalize() {
        let cfg = config(r#"<store type="h5lite" chunk_rows="2"/>"#, "");
        let dir = tmpdir("plugin");
        let seg = SharedSegment::new(1 << 16).unwrap();
        let data = field(7.0);
        let mut b = seg.allocate(256).unwrap();
        b.write_pod(&data);
        let blocks = vec![StoredBlock {
            variable: cfg.registry().var_id("u").unwrap(),
            source: 1,
            iteration: 9,
            data: b.freeze(),
        }];
        let plugin = StoragePlugin::new(&cfg, 0, &dir).unwrap();
        let act = damaris_xml::schema::Action {
            name: "storage".into(),
            plugin: "storage".into(),
            trigger: damaris_xml::schema::Trigger::EndOfIteration { frequency: 1 },
            params: vec![],
        };
        let ctx = IterationCtx {
            iteration: 9,
            node_id: 0,
            simulation: "sp",
            blocks: &blocks,
            config: &cfg,
            output_dir: &dir,
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        plugin.on_finalize().unwrap();
        assert!(plugin.file_stats().is_some());
        let mut r = h5lite::FileReader::open(plugin.file_path()).unwrap();
        assert_eq!(r.read_pod::<f64>("it000009/u/rank1").unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_sorts_staged_blocks_and_reuses_buffers() {
        let cfg = config(r#"<store type="h5lite"/>"#, "");
        let dir = tmpdir("sink");
        let mut sink = StorageSink::new(&cfg, 0, &dir).unwrap();
        let u = cfg.registry().var_id("u").unwrap();
        let raw = cfg.registry().var_id("raw").unwrap();
        let a = field(0.0);
        let ab = bytes_of(&a);
        for it in 0..3u64 {
            // Arrival order scrambled; sources are 1-based world ranks.
            sink.on_block(raw, it, 2, &ab);
            sink.on_block(u, it, 2, &ab);
            sink.on_block(u, it, 1, &ab);
            sink.on_iteration_complete(it);
        }
        assert!(sink.errors().is_empty(), "{:?}", sink.errors());
        assert_eq!(sink.spare.len(), 3, "staging buffers pooled");
        sink.finish().unwrap().unwrap();
        let mut r = h5lite::FileReader::open(sink.file_path()).unwrap();
        // 1-based rank 1 becomes rank0, matching thread mode.
        assert_eq!(r.read_pod::<f64>("it000000/u/rank0").unwrap(), a);
        assert_eq!(r.read_pod::<f64>("it000002/raw/rank1").unwrap(), a);
        std::fs::remove_dir_all(&dir).ok();
    }
}
