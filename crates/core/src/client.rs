//! The simulation-side API.
//!
//! Paper §III.B: "Its simulation-side API includes functions to directly
//! access the shared memory segment and copy or allocate blocks of data."
//! §V.C.2: "Damaris only requires one line per data object that has to be
//! shared with dedicated cores" — that line is [`DamarisClient::write`].
//!
//! The steady-state write path performs **zero heap allocations and takes
//! no global lock**: the variable name resolves to an interned
//! [`VarId`] through one hash lookup, the block comes from the
//! per-client slab cache (or the segment's lock-free size-class queues),
//! freezing keeps the reference count in the segment's slot table, the
//! event moves into the client's own ring, and timing lands in atomic
//! histogram buckets.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use damaris_shm::transport::{AnyTransport, EventChannel, EventProducer};
use damaris_shm::{Block, SlabCache};
use damaris_xml::schema::{Configuration, SkipMode};
use damaris_xml::VarId;

use crate::error::{DamarisError, DamarisResult};
use crate::event::Event;
use crate::facade::{check_layout, resolve_var};
use crate::policy::SkipPolicy;

/// What happened to a write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStatus {
    /// The block was published to the dedicated cores.
    Written,
    /// The skip policy dropped the iteration (memory pressure).
    Skipped,
}

/// Number of log-scale latency buckets (bucket `i` holds writes that took
/// `[2^i, 2^(i+1))` nanoseconds; bucket 0 also absorbs 0 ns).
const NS_BUCKETS: usize = 64;

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Geometric midpoint of a bucket, in seconds.
fn bucket_mid_seconds(bucket: usize) -> f64 {
    // Bucket i covers [2^i, 2^(i+1)) ns; 1.5 * 2^i is its midpoint.
    1.5 * (bucket as f64).exp2() * 1e-9
}

/// Lock-free recorder behind [`DamarisClient::stats`]: plain atomic
/// counters plus a fixed-size log-scale latency histogram. Unlike the
/// previous `Mutex<Vec<f64>>`, recording a write is a handful of relaxed
/// atomic adds — no lock, no allocation, and bounded memory over runs of
/// any length.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    writes: AtomicU64,
    skipped_writes: AtomicU64,
    bytes_written: AtomicU64,
    write_ns_total: AtomicU64,
    write_ns_max: AtomicU64,
    buckets: [AtomicU64; NS_BUCKETS],
}

impl StatsRecorder {
    pub(crate) fn new() -> Self {
        StatsRecorder {
            writes: AtomicU64::new(0),
            skipped_writes: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            write_ns_total: AtomicU64::new(0),
            write_ns_max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn record_write(&self, ns: u64, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.write_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_skip(&self) {
        self.skipped_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ClientStats {
        ClientStats {
            writes: self.writes.load(Ordering::Relaxed),
            skipped_writes: self.skipped_writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            total_write_seconds: self.write_ns_total.load(Ordering::Relaxed) as f64 * 1e-9,
            max_write_seconds: self.write_ns_max.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Timing snapshot of the simulation-facing cost of Damaris calls.
///
/// The headline §IV.B claim — "the time to write from the point of view of
/// the simulation is cut down to the time required to write in
/// shared-memory, which is in the order of 0.1 seconds" — is measured here.
/// Latencies live in a log-scale histogram (factor-of-two resolution), so
/// quantiles are available without per-call storage.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Successful write calls.
    pub writes: u64,
    /// Number of write calls that were skipped.
    pub skipped_writes: u64,
    /// Bytes published.
    pub bytes_written: u64,
    /// Total seconds spent inside successful writes.
    pub total_write_seconds: f64,
    /// Slowest single write, in seconds.
    pub max_write_seconds: f64,
    /// Log-scale latency histogram (bucket `i` = `[2^i, 2^(i+1))` ns).
    buckets: [u64; NS_BUCKETS],
}

impl Default for ClientStats {
    fn default() -> Self {
        ClientStats {
            writes: 0,
            skipped_writes: 0,
            bytes_written: 0,
            total_write_seconds: 0.0,
            max_write_seconds: 0.0,
            buckets: [0; NS_BUCKETS],
        }
    }
}

impl ClientStats {
    /// Mean seconds per successful write (0 when none happened).
    pub fn mean_write_seconds(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.total_write_seconds / self.writes as f64
        }
    }

    /// Latency quantile in seconds from the log-scale histogram
    /// (`q` in `[0, 1]`; factor-of-two resolution).
    pub fn quantile_write_seconds(&self, q: f64) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.writes as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_mid_seconds(i);
            }
        }
        self.max_write_seconds
    }

    /// Median write latency in seconds.
    pub fn p50_write_seconds(&self) -> f64 {
        self.quantile_write_seconds(0.50)
    }

    /// 99th-percentile write latency in seconds.
    pub fn p99_write_seconds(&self) -> f64 {
        self.quantile_write_seconds(0.99)
    }

    /// Raw histogram counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub fn bucket_counts(&self) -> &[u64; NS_BUCKETS] {
        &self.buckets
    }
}

/// Handle held by one compute core.
///
/// Generic over the event transport `C`; the default is the
/// runtime-selected [`AnyTransport`] chosen from the XML
/// `<queue kind="…">` attribute. With the sharded transport the client's
/// producer handle posts into the client's own lock-free ring.
///
/// Cloning shares the identity, statistics and slab cache of the same
/// logical client — clients are usually moved into their compute thread
/// instead. (Clones of a sharded client serialize their posts on a
/// per-client guard, so sharing a clone across threads is safe but
/// momentarily spins.)
pub struct DamarisClient<C: EventChannel<Event> = AnyTransport<Event>> {
    pub(crate) id: usize,
    pub(crate) cfg: Arc<Configuration>,
    /// Per-client allocation front-end over the node's shared segment.
    pub(crate) slab: Arc<SlabCache>,
    pub(crate) producer: C::Producer,
    pub(crate) policy: Arc<SkipPolicy>,
    pub(crate) stats: Arc<StatsRecorder>,
    /// Blocks published for the current iteration (reported at
    /// end-of-iteration so the server knows when the step's data is whole).
    pub(crate) writes_this_iteration: Arc<AtomicU64>,
    /// Whether this logical client already finalized (shared by clones;
    /// makes [`DamarisClient::finalize`] idempotent, like process mode).
    pub(crate) finalized: Arc<AtomicBool>,
}

impl<C: EventChannel<Event>> Clone for DamarisClient<C> {
    fn clone(&self) -> Self {
        DamarisClient {
            id: self.id,
            cfg: self.cfg.clone(),
            slab: self.slab.clone(),
            producer: self.producer.clone(),
            policy: self.policy.clone(),
            stats: self.stats.clone(),
            writes_this_iteration: self.writes_this_iteration.clone(),
            finalized: self.finalized.clone(),
        }
    }
}

impl<C: EventChannel<Event>> std::fmt::Debug for DamarisClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DamarisClient")
            .field("id", &self.id)
            .finish()
    }
}

impl<C: EventChannel<Event>> DamarisClient<C> {
    /// This client's id (its rank within the node).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Resolve a variable name to its interned id once, so repeated
    /// writes can skip even the hash lookup
    /// (see [`DamarisClient::write_id`]).
    pub fn var_id(&self, variable: &str) -> DamarisResult<VarId> {
        resolve_var(&self.cfg, variable)
    }

    /// Publish one variable for one iteration — the single instrumentation
    /// line the paper's usability comparison counts.
    ///
    /// Cost to the simulation: one shared-memory allocation, one memcpy,
    /// one queue event — no heap allocation, no global lock.
    pub fn write<T: damaris_shm::segment::Pod>(
        &self,
        variable: &str,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let var = self.var_id(variable)?;
        self.write_id(var, iteration, data)
    }

    /// [`DamarisClient::write`] with a pre-resolved [`VarId`].
    pub fn write_id<T: damaris_shm::segment::Pod>(
        &self,
        var: VarId,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let t0 = Instant::now();
        let bytes = std::mem::size_of_val(data);
        check_layout(&self.cfg, var, bytes)?;
        if !self
            .policy
            .admit(iteration, self.slab.segment(), || self.producer.pressure())
        {
            self.stats.record_skip();
            return Ok(WriteStatus::Skipped);
        }
        let Some(mut block) = self.allocate_admitted(iteration, bytes)? else {
            return Ok(WriteStatus::Skipped);
        };
        block.write_pod(data);
        self.publish(var, iteration, block)?;
        self.stats
            .record_write(t0.elapsed().as_nanos() as u64, bytes as u64);
        Ok(WriteStatus::Written)
    }

    /// Zero-copy variant: allocate the block, let the caller fill it in
    /// place (e.g. the simulation computes directly into shared memory —
    /// "functions to directly access the shared memory segment"), then
    /// [`DamarisClient::commit`] it.
    ///
    /// The write-timing clock starts here, so the §IV.B "time to write"
    /// statistic covers allocation and in-place fill, not just the final
    /// publish.
    ///
    /// Variables on a `dimensions="dynamic"` layout have no fixed size —
    /// use [`DamarisClient::alloc_sized`] with this write's byte count.
    pub fn alloc(&self, variable: &str, iteration: u64) -> DamarisResult<BlockWriter<C>> {
        let t0 = Instant::now();
        let var = self.var_id(variable)?;
        if self.cfg.registry().is_dynamic(var) {
            return Err(DamarisError::InvalidState(format!(
                "variable '{variable}' has a dynamic layout; use alloc_sized with this \
                 write's byte count"
            )));
        }
        self.alloc_inner(var, iteration, self.cfg.registry().byte_size(var), t0)
    }

    /// [`DamarisClient::alloc`] with a caller-supplied block length — the
    /// zero-copy path for variable-size (AMR) workloads on
    /// `dimensions="dynamic"` layouts. `bytes` must be a whole number of
    /// elements (and within the layout's `max_size`); fixed layouts
    /// accept exactly their declared size.
    pub fn alloc_sized(
        &self,
        variable: &str,
        iteration: u64,
        bytes: usize,
    ) -> DamarisResult<BlockWriter<C>> {
        let t0 = Instant::now();
        let var = self.var_id(variable)?;
        check_layout(&self.cfg, var, bytes)?;
        self.alloc_inner(var, iteration, bytes, t0)
    }

    fn alloc_inner(
        &self,
        var: VarId,
        iteration: u64,
        bytes: usize,
        t0: Instant,
    ) -> DamarisResult<BlockWriter<C>> {
        if !self
            .policy
            .admit(iteration, self.slab.segment(), || self.producer.pressure())
        {
            self.stats.record_skip();
            return Ok(BlockWriter {
                client: self.clone(),
                var,
                iteration,
                block: None,
                t0,
            });
        }
        let block = self.allocate_admitted(iteration, bytes)?;
        Ok(BlockWriter {
            client: self.clone(),
            var,
            iteration,
            block,
            t0,
        })
    }

    /// Commit a block obtained from [`DamarisClient::alloc`].
    pub fn commit(&self, writer: BlockWriter<C>) -> DamarisResult<WriteStatus> {
        writer.commit()
    }

    /// Raise a user event; actions declared with `event="name"` fire on the
    /// dedicated cores.
    ///
    /// A name no `<action>` references resolves to nothing and is silently
    /// dropped at this edge — no action could match it on the server side.
    pub fn signal(&self, name: &str, iteration: u64) -> DamarisResult<()> {
        let Some(event) = self.cfg.registry().event_id(name) else {
            return Ok(());
        };
        self.producer
            .send(Event::Signal {
                event,
                source: self.id,
                iteration,
            })
            .map_err(|_| DamarisError::QueueClosed)
    }

    /// Mark the iteration finished for this client. When every client of
    /// the node has ended iteration `k` (and all its blocks arrived), the
    /// dedicated cores fire the end-of-iteration actions.
    pub fn end_iteration(&self, iteration: u64) -> DamarisResult<()> {
        let writes = self.writes_this_iteration.swap(0, Ordering::AcqRel);
        let skipped = self.policy.was_dropped(iteration);
        self.producer
            .send(Event::EndIteration {
                source: self.id,
                iteration,
                writes,
                skipped,
            })
            .map_err(|_| DamarisError::QueueClosed)
    }

    /// Announce that this client will send nothing further. Idempotent
    /// (shared across clones of the same logical client): repeated calls
    /// are no-ops, so the dedicated cores' finalize count can never
    /// overshoot and release shutdown while another client still runs —
    /// the same contract process mode gives [`crate::facade::SimHandle`].
    pub fn finalize(&self) -> DamarisResult<()> {
        if self.finalized.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.producer
            .send(Event::ClientFinalize { source: self.id })
            .map_err(|_| {
                self.finalized.store(false, Ordering::Release);
                DamarisError::QueueClosed
            })
    }

    /// Snapshot of this client's timing statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.snapshot()
    }

    /// Iterations dropped by the skip policy so far.
    pub fn skipped_iterations(&self) -> u64 {
        self.policy.dropped_iterations()
    }

    /// Allocate for an already-admitted iteration. `Ok(None)` means the
    /// segment ran out *after* admission in drop mode and the rest of the
    /// iteration was dropped (§V.C.1: lose data rather than stall or
    /// error) — the same semantics process mode applies on slice
    /// exhaustion, so the facade behaves identically on both backends.
    fn allocate_admitted(&self, iteration: u64, bytes: usize) -> DamarisResult<Option<Block>> {
        match self.policy.mode() {
            // Block mode: wait for plugins to free memory.
            SkipMode::Block => self
                .slab
                .allocate_blocking(bytes, Some(std::time::Duration::from_secs(60)))
                .map(Some)
                .map_err(DamarisError::from),
            // Drop mode: never stall the simulation.
            SkipMode::DropIteration => match self.slab.allocate(bytes) {
                Ok(b) => Ok(Some(b)),
                Err(damaris_shm::ShmError::OutOfMemory { .. }) => {
                    self.policy.drop_current(iteration);
                    self.stats.record_skip();
                    Ok(None)
                }
                Err(e) => Err(e.into()),
            },
        }
    }

    fn publish(&self, variable: VarId, iteration: u64, block: Block) -> DamarisResult<()> {
        let event = Event::Write {
            variable,
            iteration,
            source: self.id,
            block: block.freeze(),
        };
        self.producer
            .send(event)
            .map_err(|_| DamarisError::QueueClosed)?;
        self.writes_this_iteration.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

/// An in-place block being filled by the simulation (zero-copy path).
pub struct BlockWriter<C: EventChannel<Event> = AnyTransport<Event>> {
    client: DamarisClient<C>,
    var: VarId,
    iteration: u64,
    /// `None` when the skip policy dropped the iteration.
    block: Option<Block>,
    /// Started in [`DamarisClient::alloc`], so the recorded write time
    /// includes allocation and fill — previously the clock only started
    /// at commit, under-reporting most of the zero-copy path's cost.
    t0: Instant,
}

impl<C: EventChannel<Event>> BlockWriter<C> {
    /// Whether the skip policy dropped this iteration (the writer is inert).
    pub fn is_skipped(&self) -> bool {
        self.block.is_none()
    }

    /// Mutable view of the shared-memory block (empty slice when skipped).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.block {
            Some(b) => b.as_mut_slice(),
            None => &mut [],
        }
    }

    /// Fill from a typed slice (convenience over `as_mut_slice`).
    pub fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]) {
        if let Some(b) = &mut self.block {
            b.write_pod(data);
        }
    }

    /// Publish the block to the dedicated cores.
    pub fn commit(self) -> DamarisResult<WriteStatus> {
        match self.block {
            None => Ok(WriteStatus::Skipped),
            Some(block) => {
                let bytes = block.len();
                self.client.publish(self.var, self.iteration, block)?;
                self.client
                    .stats
                    .record_write(self.t0.elapsed().as_nanos() as u64, bytes as u64);
                Ok(WriteStatus::Written)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let rec = StatsRecorder::new();
        // 90 fast writes (~1 µs) and 10 slow ones (~1 ms).
        for _ in 0..90 {
            rec.record_write(1_000, 8);
        }
        for _ in 0..10 {
            rec.record_write(1_000_000, 8);
        }
        let s = rec.snapshot();
        assert_eq!(s.writes, 100);
        assert_eq!(s.bytes_written, 800);
        // p50 lands in the microsecond bucket, p99 in the millisecond one.
        let p50 = s.p50_write_seconds();
        let p99 = s.p99_write_seconds();
        assert!((5e-7..4e-6).contains(&p50), "p50 {p50}");
        assert!((5e-4..4e-3).contains(&p99), "p99 {p99}");
        assert!(s.max_write_seconds >= 1e-3);
        assert!((s.mean_write_seconds() - 1.009e-4).abs() < 2e-5);
        assert_eq!(s.bucket_counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn zero_and_extreme_ns_bucket_safely() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(u64::MAX), 63);
        let rec = StatsRecorder::new();
        rec.record_write(0, 1);
        rec.record_write(u64::MAX, 1);
        let s = rec.snapshot();
        assert_eq!(s.writes, 2);
        assert!(s.quantile_write_seconds(1.0) > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ClientStats::default();
        assert_eq!(s.mean_write_seconds(), 0.0);
        assert_eq!(s.p50_write_seconds(), 0.0);
        assert_eq!(s.p99_write_seconds(), 0.0);
    }
}
