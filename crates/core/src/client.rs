//! The simulation-side API.
//!
//! Paper §III.B: "Its simulation-side API includes functions to directly
//! access the shared memory segment and copy or allocate blocks of data."
//! §V.C.2: "Damaris only requires one line per data object that has to be
//! shared with dedicated cores" — that line is [`DamarisClient::write`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use damaris_shm::transport::{AnyTransport, EventChannel, EventProducer};
use damaris_shm::{Block, SharedSegment};
use damaris_xml::schema::{Configuration, SkipMode};
use parking_lot::Mutex;

use crate::error::{DamarisError, DamarisResult};
use crate::event::Event;
use crate::policy::SkipPolicy;

/// What happened to a write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStatus {
    /// The block was published to the dedicated cores.
    Written,
    /// The skip policy dropped the iteration (memory pressure).
    Skipped,
}

/// Timing record of the simulation-facing cost of Damaris calls.
///
/// The headline §IV.B claim — "the time to write from the point of view of
/// the simulation is cut down to the time required to write in
/// shared-memory, which is in the order of 0.1 seconds" — is measured here.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    /// Seconds spent inside `write` per successful call.
    pub write_seconds: Vec<f64>,
    /// Number of write calls that were skipped.
    pub skipped_writes: u64,
    /// Bytes published.
    pub bytes_written: u64,
}

/// Handle held by one compute core.
///
/// Generic over the event transport `C`; the default is the
/// runtime-selected [`AnyTransport`] chosen from the XML
/// `<queue kind="…">` attribute. With the sharded transport the client's
/// producer handle posts into the client's own lock-free ring.
///
/// Cloning shares the identity and statistics of the same logical client —
/// clients are usually moved into their compute thread instead. (Clones
/// of a sharded client serialize their posts on a per-client guard, so
/// sharing a clone across threads is safe but momentarily spins.)
pub struct DamarisClient<C: EventChannel<Event> = AnyTransport<Event>> {
    pub(crate) id: usize,
    pub(crate) cfg: Arc<Configuration>,
    pub(crate) segment: SharedSegment,
    pub(crate) producer: C::Producer,
    pub(crate) policy: Arc<SkipPolicy>,
    pub(crate) stats: Arc<Mutex<ClientStats>>,
    /// Blocks published for the current iteration (reported at
    /// end-of-iteration so the server knows when the step's data is whole).
    pub(crate) writes_this_iteration: Arc<AtomicU64>,
}

impl<C: EventChannel<Event>> Clone for DamarisClient<C> {
    fn clone(&self) -> Self {
        DamarisClient {
            id: self.id,
            cfg: self.cfg.clone(),
            segment: self.segment.clone(),
            producer: self.producer.clone(),
            policy: self.policy.clone(),
            stats: self.stats.clone(),
            writes_this_iteration: self.writes_this_iteration.clone(),
        }
    }
}

impl<C: EventChannel<Event>> std::fmt::Debug for DamarisClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DamarisClient")
            .field("id", &self.id)
            .finish()
    }
}

impl<C: EventChannel<Event>> DamarisClient<C> {
    /// This client's id (its rank within the node).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The loaded configuration.
    pub fn config(&self) -> &Configuration {
        &self.cfg
    }

    /// Publish one variable for one iteration — the single instrumentation
    /// line the paper's usability comparison counts.
    ///
    /// Cost to the simulation: one shared-memory allocation, one memcpy,
    /// one queue event. Everything else happens on the dedicated cores.
    pub fn write<T: damaris_shm::segment::Pod>(
        &self,
        variable: &str,
        iteration: u64,
        data: &[T],
    ) -> DamarisResult<WriteStatus> {
        let t0 = Instant::now();
        let layout = self
            .cfg
            .layout_of(variable)
            .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))?;
        let bytes = std::mem::size_of_val(data);
        if bytes != layout.byte_size() {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected: layout.byte_size(),
                got: bytes,
            });
        }
        if !self
            .policy
            .admit(iteration, &self.segment, || self.producer.pressure())
        {
            self.stats.lock().skipped_writes += 1;
            return Ok(WriteStatus::Skipped);
        }
        let mut block = self.allocate_block(bytes)?;
        block.write_pod(data);
        self.publish(variable, iteration, block)?;
        let mut stats = self.stats.lock();
        stats.write_seconds.push(t0.elapsed().as_secs_f64());
        stats.bytes_written += bytes as u64;
        Ok(WriteStatus::Written)
    }

    /// Zero-copy variant: allocate the block, let the caller fill it in
    /// place (e.g. the simulation computes directly into shared memory —
    /// "functions to directly access the shared memory segment"), then
    /// [`DamarisClient::commit`] it.
    pub fn alloc(&self, variable: &str, iteration: u64) -> DamarisResult<BlockWriter<C>> {
        let layout = self
            .cfg
            .layout_of(variable)
            .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))?;
        if !self
            .policy
            .admit(iteration, &self.segment, || self.producer.pressure())
        {
            self.stats.lock().skipped_writes += 1;
            return Ok(BlockWriter {
                client: self.clone(),
                variable: variable.to_string(),
                iteration,
                block: None,
            });
        }
        let block = self.allocate_block(layout.byte_size())?;
        Ok(BlockWriter {
            client: self.clone(),
            variable: variable.to_string(),
            iteration,
            block: Some(block),
        })
    }

    /// Commit a block obtained from [`DamarisClient::alloc`].
    pub fn commit(&self, writer: BlockWriter<C>) -> DamarisResult<WriteStatus> {
        writer.commit()
    }

    /// Raise a user event; actions declared with `event="name"` fire on the
    /// dedicated cores.
    pub fn signal(&self, name: &str, iteration: u64) -> DamarisResult<()> {
        self.producer
            .send(Event::Signal {
                name: name.to_string(),
                source: self.id,
                iteration,
            })
            .map_err(|_| DamarisError::QueueClosed)
    }

    /// Mark the iteration finished for this client. When every client of
    /// the node has ended iteration `k` (and all its blocks arrived), the
    /// dedicated cores fire the end-of-iteration actions.
    pub fn end_iteration(&self, iteration: u64) -> DamarisResult<()> {
        let writes = self.writes_this_iteration.swap(0, Ordering::AcqRel);
        let skipped = self.policy.was_dropped(iteration);
        self.producer
            .send(Event::EndIteration {
                source: self.id,
                iteration,
                writes,
                skipped,
            })
            .map_err(|_| DamarisError::QueueClosed)
    }

    /// Announce that this client will send nothing further.
    pub fn finalize(&self) -> DamarisResult<()> {
        self.producer
            .send(Event::ClientFinalize { source: self.id })
            .map_err(|_| DamarisError::QueueClosed)
    }

    /// Snapshot of this client's timing statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.lock().clone()
    }

    /// Iterations dropped by the skip policy so far.
    pub fn skipped_iterations(&self) -> u64 {
        self.policy.dropped_iterations()
    }

    fn allocate_block(&self, bytes: usize) -> DamarisResult<Block> {
        match self.policy.mode() {
            // Block mode: wait for plugins to free memory.
            SkipMode::Block => self
                .segment
                .allocate_blocking(bytes, Some(std::time::Duration::from_secs(60)))
                .map_err(DamarisError::from),
            // Drop mode: never stall the simulation.
            SkipMode::DropIteration => self.segment.allocate(bytes).map_err(DamarisError::from),
        }
    }

    fn publish(&self, variable: &str, iteration: u64, block: Block) -> DamarisResult<()> {
        let event = Event::Write {
            variable: variable.to_string(),
            iteration,
            source: self.id,
            block: block.freeze(),
        };
        self.producer
            .send(event)
            .map_err(|_| DamarisError::QueueClosed)?;
        self.writes_this_iteration.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

/// An in-place block being filled by the simulation (zero-copy path).
pub struct BlockWriter<C: EventChannel<Event> = AnyTransport<Event>> {
    client: DamarisClient<C>,
    variable: String,
    iteration: u64,
    /// `None` when the skip policy dropped the iteration.
    block: Option<Block>,
}

impl<C: EventChannel<Event>> BlockWriter<C> {
    /// Whether the skip policy dropped this iteration (the writer is inert).
    pub fn is_skipped(&self) -> bool {
        self.block.is_none()
    }

    /// Mutable view of the shared-memory block (empty slice when skipped).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.block {
            Some(b) => b.as_mut_slice(),
            None => &mut [],
        }
    }

    /// Fill from a typed slice (convenience over `as_mut_slice`).
    pub fn fill_pod<T: damaris_shm::segment::Pod>(&mut self, data: &[T]) {
        if let Some(b) = &mut self.block {
            b.write_pod(data);
        }
    }

    /// Publish the block to the dedicated cores.
    pub fn commit(self) -> DamarisResult<WriteStatus> {
        match self.block {
            None => Ok(WriteStatus::Skipped),
            Some(block) => {
                let t0 = Instant::now();
                let bytes = block.len();
                self.client.publish(&self.variable, self.iteration, block)?;
                let mut stats = self.client.stats.lock();
                stats.write_seconds.push(t0.elapsed().as_secs_f64());
                stats.bytes_written += bytes as u64;
                Ok(WriteStatus::Written)
            }
        }
    }
}
