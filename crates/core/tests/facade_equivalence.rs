//! Transport equivalence at the **Damaris API** level: one generic
//! simulation function — `fn simulate<H: SimHandle>(h: &mut H)`, compiled
//! once, with no per-backend branches — runs unmodified against
//! `<world kind="threads"/>` and `<world kind="processes"/>` through the
//! [`Damaris`] facade, and must produce byte-identical client outputs
//! (including [`WriteStatus`] sequences and [`ClientStats`] counters) and
//! a field-identical [`SimReport`] (including the order-independent
//! digest of every block the dedicated core consumed).
//!
//! The process world re-executes this test binary once per rank
//! ([`mini_mpi::World::run_spawned_test`] under the hood), so every
//! `program` string below must equal its test function's name, and each
//! test runs the process world *first* — a spawned child becomes its rank
//! inside that call and exits, never wasting work on the thread world.

use damaris_core::prelude::*;
use proptest::prelude::*;

fn config(world: &str, clients: usize, buffer: usize, skip: &str) -> Configuration {
    let xml = format!(
        r#"<simulation name="facade-equivalence">
             <architecture>
               <dedicated cores="1"/>
               <clients count="{clients}"/>
               <buffer size="{buffer}"/>
               <queue capacity="256"/>
               <world kind="{world}"/>
               {skip}
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="64"/>
               <variable name="u" layout="row"/>
               <variable name="v" layout="row"/>
             </data>
             <actions>
               <action name="snap" plugin="stats" event="take-snapshot"/>
             </actions>
           </simulation>"#
    );
    Configuration::from_str(&xml).expect("equivalence config is valid")
}

/// THE generic driver: everything it does goes through [`SimHandle`];
/// it cannot know (and never asks) which backend it runs on. All rank
/// behaviour derives from `input` and `h` alone, because in process mode
/// it executes inside a re-spawned child.
fn simulate<H: SimHandle>(h: &mut H, input: &[u8]) -> Vec<u8> {
    let iterations = u64::from(input[0]);
    let seed = u64::from(input[1]);
    let u = h.var_id("u").expect("declared variable resolves");
    let mut out = Vec::new();
    for it in 0..iterations {
        let data: Vec<f64> = (0..64)
            .map(|i| (seed * 31 + h.id() as u64 * 7 + it * 3) as f64 + i as f64 * 0.5)
            .collect();
        // Copy write by name, by pre-resolved id, and the zero-copy
        // alloc → fill-in-place → commit path.
        let s1 = h.write("u", it, &data).expect("write u");
        let s2 = h.write_id(u, it, &data).expect("write_id u");
        let mut w = h.alloc("v", it).expect("alloc v");
        assert!(!w.is_skipped());
        w.fill_pod(&data);
        let s3 = h.commit(w).expect("commit v");
        // One declared signal (delivered) and one undeclared (filtered at
        // the client edge on both backends).
        h.signal("take-snapshot", it).expect("signal");
        h.signal("ghost-event", it)
            .expect("undeclared signal is a no-op");
        h.end_iteration(it).expect("end iteration");
        out.extend([s1, s2, s3].map(|s| u8::from(s == WriteStatus::Written)));
    }
    h.finalize().expect("finalize");
    let st = h.stats();
    out.extend(st.writes.to_le_bytes());
    out.extend(st.skipped_writes.to_le_bytes());
    out.extend(st.bytes_written.to_le_bytes());
    out.extend(h.skipped_iterations().to_le_bytes());
    out.extend((h.id() as u64).to_le_bytes());
    out
}

/// Run `sim` on the processes world first, then the threads world, with
/// identical configurations apart from `<world kind>`.
fn run_both(
    program: &str,
    clients: usize,
    buffer: usize,
    skip: &str,
    input: &[u8],
    sim: impl Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync + Copy,
) -> (SimReport, SimReport) {
    let processes = Damaris::launch_test(
        config("processes", clients, buffer, skip),
        program,
        input,
        sim,
    )
    .expect("processes world succeeds");
    let threads = Damaris::launch_test(
        config("threads", clients, buffer, skip),
        program,
        input,
        sim,
    )
    .expect("threads world succeeds");
    (processes, threads)
}

fn assert_equivalent(processes: &SimReport, threads: &SimReport) {
    assert_eq!(
        processes.outputs, threads.outputs,
        "per-client outputs (statuses + stats counters) must be byte-identical"
    );
    assert_eq!(processes.iterations_completed, threads.iterations_completed);
    assert_eq!(
        processes.skipped_client_iterations,
        threads.skipped_client_iterations
    );
    assert_eq!(processes.signals_delivered, threads.signals_delivered);
    assert_eq!(processes.blocks_received, threads.blocks_received);
    assert_eq!(processes.bytes_received, threads.bytes_received);
    assert_eq!(
        processes.data_digest, threads.data_digest,
        "the dedicated cores must have consumed byte-identical blocks"
    );
}

#[test]
fn one_driver_both_worlds() {
    let (processes, threads) = run_both(
        "one_driver_both_worlds",
        2,
        4 << 20,
        "",
        &[4, 9],
        |h, input| simulate(h, input),
    );
    assert_equivalent(&processes, &threads);
    // Sanity beyond mutual equality: the expected absolute numbers.
    assert_eq!(processes.iterations_completed, 4);
    assert_eq!(processes.blocks_received, 4 * 3 * 2, "3 blocks × 2 clients");
    assert_eq!(processes.bytes_received, 4 * 3 * 2 * 512);
    assert_eq!(processes.signals_delivered, 4 * 2, "declared signals only");
    assert_eq!(processes.skipped_client_iterations, 0);
    for out in &processes.outputs {
        let statuses = &out[..4 * 3];
        assert!(statuses.iter().all(|&s| s == 1), "everything written");
    }
}

/// The §V.C.1 skip semantics, cross-world: one client fills 75 % of its
/// memory in iteration 0 and opens iteration 1 while iteration 0 is
/// still staged — above the 0.5 high-watermark, so iteration 1 is
/// dropped *wholesale* on both backends, deterministically (iteration-0
/// blocks cannot be reclaimed before `end_iteration(0)` on either
/// backend, so the occupancy the admission check samples is exact).
fn skip_sim<H: SimHandle>(h: &mut H, _input: &[u8]) -> Vec<u8> {
    let data = vec![2.5f64; 64]; // 512 bytes; capacity is 2048
    let mut statuses = Vec::new();
    for _ in 0..3 {
        statuses.push(h.write("u", 0, &data).expect("iteration 0 write"));
    }
    // First write of iteration 1 while occupancy is 1536/2048 = 0.75.
    statuses.push(h.write("u", 1, &data).expect("admission skip, not error"));
    h.end_iteration(0).expect("end 0");
    // The drop decision sticks for the whole iteration.
    statuses.push(h.write("u", 1, &data).expect("sticky skip"));
    h.end_iteration(1).expect("end 1");
    h.finalize().expect("finalize");
    let st = h.stats();
    let mut out: Vec<u8> = statuses
        .iter()
        .map(|&s| u8::from(s == WriteStatus::Written))
        .collect();
    out.extend(st.writes.to_le_bytes());
    out.extend(st.skipped_writes.to_le_bytes());
    out.extend(h.skipped_iterations().to_le_bytes());
    out
}

#[test]
fn skip_semantics_equivalent_across_worlds() {
    let (processes, threads) = run_both(
        "skip_semantics_equivalent_across_worlds",
        1,
        2048,
        r#"<skip mode="drop-iteration" high-watermark="0.5"/>"#,
        &[],
        |h, input| skip_sim(h, input),
    );
    assert_equivalent(&processes, &threads);
    assert_eq!(
        processes.iterations_completed, 2,
        "skipped iterations still complete"
    );
    assert_eq!(processes.skipped_client_iterations, 1);
    assert_eq!(processes.blocks_received, 3);
    let out = &processes.outputs[0];
    assert_eq!(&out[..5], &[1, 1, 1, 0, 0], "W W W S S");
    let writes = u64::from_le_bytes(out[5..13].try_into().unwrap());
    let skipped_writes = u64::from_le_bytes(out[13..21].try_into().unwrap());
    let skipped_iters = u64::from_le_bytes(out[21..29].try_into().unwrap());
    assert_eq!((writes, skipped_writes, skipped_iters), (3, 2, 1));
}

/// Mid-iteration exhaustion under drop mode: the slice/segment fits one
/// 512-byte block (capacity 576), so the iteration is *admitted* (
/// occupancy 0 at its first write) and runs out of memory on the second
/// write. Both backends must drop the rest of the iteration and report
/// [`WriteStatus::Skipped`] — not error (the pre-facade thread client
/// returned `OutOfMemory` here, diverging from process mode).
fn exhaustion_sim<H: SimHandle>(h: &mut H, _input: &[u8]) -> Vec<u8> {
    let data = vec![3.5f64; 64];
    let s1 = h.write("u", 0, &data).expect("first block fits");
    let s2 = h
        .write("u", 0, &data)
        .expect("exhaustion drops, never errors");
    let s3 = h.write("u", 0, &data).expect("drop decision sticks");
    h.end_iteration(0).expect("end 0");
    h.finalize().expect("finalize");
    let st = h.stats();
    let mut out: Vec<u8> = [s1, s2, s3]
        .iter()
        .map(|&s| u8::from(s == WriteStatus::Written))
        .collect();
    out.extend(st.writes.to_le_bytes());
    out.extend(st.skipped_writes.to_le_bytes());
    out.extend(h.skipped_iterations().to_le_bytes());
    out
}

#[test]
fn mid_iteration_exhaustion_drops_on_both_worlds() {
    let (processes, threads) = run_both(
        "mid_iteration_exhaustion_drops_on_both_worlds",
        1,
        576,
        r#"<skip mode="drop-iteration" high-watermark="1.0"/>"#,
        &[],
        |h, input| exhaustion_sim(h, input),
    );
    assert_equivalent(&processes, &threads);
    assert_eq!(processes.iterations_completed, 1);
    assert_eq!(processes.skipped_client_iterations, 1);
    assert_eq!(processes.blocks_received, 1);
    let out = &processes.outputs[0];
    assert_eq!(&out[..3], &[1, 0, 0], "W S S");
    let writes = u64::from_le_bytes(out[3..11].try_into().unwrap());
    let skipped_writes = u64::from_le_bytes(out[11..19].try_into().unwrap());
    let skipped_iters = u64::from_le_bytes(out[19..27].try_into().unwrap());
    assert_eq!((writes, skipped_writes, skipped_iters), (1, 2, 1));
}

// ---------------------------------------------------------------------------
// Variable-size (AMR) workloads: dynamic layouts + the buddy allocator
// ---------------------------------------------------------------------------

fn amr_config(world: &str, clients: usize, buffer: usize, skip: &str) -> Configuration {
    // allocator="buddy": odd per-write sizes must stay off the mutex.
    let max = 8192.min(buffer);
    let xml = format!(
        r#"<simulation name="amr-equivalence">
             <architecture>
               <dedicated cores="1"/>
               <clients count="{clients}"/>
               <buffer size="{buffer}" allocator="buddy"/>
               <queue capacity="256"/>
               <world kind="{world}"/>
               {skip}
             </architecture>
             <data>
               <layout name="patch" type="f64" dimensions="dynamic" max_size="{max}"/>
               <variable name="density" layout="patch"/>
             </data>
           </simulation>"#
    );
    Configuration::from_str(&xml).expect("amr config is valid")
}

/// The generic AMR driver: every (client, iteration) writes a *different*
/// block size, derived from a seeded RNG (deterministic across worlds:
/// the seed is a pure function of `input` and the client id, both
/// identical in a re-executed process rank). Exercises both the copy
/// path (`write` with a differently-sized slice each call) and the
/// zero-copy `alloc_sized` → fill → commit path.
fn amr_sim<H: SimHandle>(h: &mut H, input: &[u8]) -> Vec<u8> {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let iterations = u64::from(input[0]);
    let mut rng = StdRng::seed_from_u64(u64::from(input[1]) ^ 0xA3_5C0DE ^ ((h.id() as u64) << 32));
    let density = h.var_id("density").expect("declared variable resolves");
    let mut out = Vec::new();
    for it in 0..iterations {
        // 1..=512 f64 elements: crosses several buddy orders.
        let elems = (rng.next_u64() % 512 + 1) as usize;
        let data: Vec<f64> = (0..elems)
            .map(|i| (it * 31 + h.id() as u64) as f64 + i as f64 * 0.25)
            .collect();
        let s1 = h.write("density", it, &data).expect("copy write");
        let s2 = h.write_id(density, it, &data).expect("id write");
        let elems2 = (rng.next_u64() % 512 + 1) as usize;
        let mut w = h
            .alloc_sized("density", it, elems2 * 8)
            .expect("alloc_sized");
        assert!(!w.is_skipped());
        w.fill_pod(&vec![h.id() as f64 + it as f64; elems2]);
        let s3 = h.commit(w).expect("commit");
        h.end_iteration(it).expect("end iteration");
        out.extend([s1, s2, s3].map(|s| u8::from(s == WriteStatus::Written)));
        out.extend((elems as u64).to_le_bytes());
    }
    h.finalize().expect("finalize");
    let st = h.stats();
    out.extend(st.writes.to_le_bytes());
    out.extend(st.bytes_written.to_le_bytes());
    out.extend((h.id() as u64).to_le_bytes());
    out
}

fn run_both_amr(
    program: &str,
    clients: usize,
    buffer: usize,
    skip: &str,
    input: &[u8],
    sim: impl Fn(&mut Damaris<'_>, &[u8]) -> Vec<u8> + Send + Sync + Copy,
) -> (SimReport, SimReport) {
    let processes = Damaris::launch_test(
        amr_config("processes", clients, buffer, skip),
        program,
        input,
        sim,
    )
    .expect("processes world succeeds");
    let threads = Damaris::launch_test(
        amr_config("threads", clients, buffer, skip),
        program,
        input,
        sim,
    )
    .expect("threads world succeeds");
    (processes, threads)
}

#[test]
fn amr_variable_sizes_equivalent_across_worlds() {
    let (processes, threads) = run_both_amr(
        "amr_variable_sizes_equivalent_across_worlds",
        2,
        4 << 20,
        "",
        &[4, 7],
        |h, input| amr_sim(h, input),
    );
    assert_equivalent(&processes, &threads);
    assert_eq!(processes.iterations_completed, 4);
    assert_eq!(processes.blocks_received, 4 * 3 * 2, "3 blocks × 2 clients");
    assert!(processes.bytes_received > 0);
    assert_ne!(processes.data_digest, 0);
}

/// §V.C.1 with variable sizes: iteration 0's small blocks fill the
/// segment to exactly 75 %; iteration 1 opens with *larger* blocks while
/// iteration 0 is still staged — above the 0.7 high-watermark, so both
/// worlds drop iteration 1 wholesale (deterministically: a client's
/// blocks cannot be reclaimed before its `end_iteration`).
fn amr_pressure_sim<H: SimHandle>(h: &mut H, _input: &[u8]) -> Vec<u8> {
    let small = vec![1.5f64; 128]; // 1024 bytes; capacity is 4096
    let large = vec![2.5f64; 256]; // 2048 bytes
    let mut statuses = Vec::new();
    for _ in 0..3 {
        statuses.push(h.write("density", 0, &small).expect("iteration 0 write"));
    }
    // First write of iteration 1 at occupancy 3072/4096 = 0.75 ≥ 0.7.
    statuses.push(h.write("density", 1, &large).expect("skip, not error"));
    h.end_iteration(0).expect("end 0");
    statuses.push(h.write("density", 1, &large).expect("sticky skip"));
    h.end_iteration(1).expect("end 1");
    h.finalize().expect("finalize");
    let st = h.stats();
    let mut out: Vec<u8> = statuses
        .iter()
        .map(|&s| u8::from(s == WriteStatus::Written))
        .collect();
    out.extend(st.writes.to_le_bytes());
    out.extend(st.skipped_writes.to_le_bytes());
    out.extend(h.skipped_iterations().to_le_bytes());
    out
}

#[test]
fn amr_larger_blocks_trip_watermark_on_both_worlds() {
    let (processes, threads) = run_both_amr(
        "amr_larger_blocks_trip_watermark_on_both_worlds",
        1,
        4096,
        r#"<skip mode="drop-iteration" high-watermark="0.7"/>"#,
        &[],
        |h, input| amr_pressure_sim(h, input),
    );
    assert_equivalent(&processes, &threads);
    assert_eq!(processes.iterations_completed, 2);
    assert_eq!(processes.skipped_client_iterations, 1);
    assert_eq!(processes.blocks_received, 3);
    let out = &processes.outputs[0];
    assert_eq!(&out[..5], &[1, 1, 1, 0, 0], "W W W S S");
    let skipped_iters = u64::from_le_bytes(out[21..29].try_into().unwrap());
    assert_eq!(skipped_iters, 1);
}

/// Under `SkipMode::Block` the same shape must **fail fast with a sizing
/// error**: a next-iteration block bigger than the whole slice can never
/// be satisfied, and blocking on it would hang the simulation. Both
/// worlds surface `ShmError::RequestTooLarge` from the write itself.
fn amr_block_mode_sim<H: SimHandle>(h: &mut H, _input: &[u8]) -> Vec<u8> {
    let small = vec![1.5f64; 128];
    for _ in 0..3 {
        h.write("density", 0, &small).expect("iteration 0 write");
    }
    // 8192 bytes > the 4096-byte segment/slice: no amount of waiting
    // frees enough. (The layout declares no max_size, so the layout
    // check passes and the allocator itself must reject.)
    let oversized = vec![0.0f64; 1024];
    let err = h
        .write("density", 1, &oversized)
        .expect_err("sizing error, not a hang");
    let sized = matches!(
        err,
        DamarisError::Shm(damaris_shm::ShmError::RequestTooLarge { .. })
    );
    h.end_iteration(0).expect("end 0");
    h.finalize().expect("finalize");
    vec![u8::from(sized)]
}

#[test]
fn amr_block_mode_oversized_fails_fast_on_both_worlds() {
    let config = |world: &str| {
        let xml = format!(
            r#"<simulation name="amr-block">
                 <architecture>
                   <dedicated cores="1"/>
                   <clients count="1"/>
                   <buffer size="4096" allocator="buddy"/>
                   <queue capacity="64"/>
                   <world kind="{world}"/>
                   <skip mode="block"/>
                 </architecture>
                 <data>
                   <layout name="patch" type="f64" dimensions="dynamic"/>
                   <variable name="density" layout="patch"/>
                 </data>
               </simulation>"#
        );
        Configuration::from_str(&xml).expect("block-mode config is valid")
    };
    let program = "amr_block_mode_oversized_fails_fast_on_both_worlds";
    let processes = Damaris::launch_test(config("processes"), program, &[], |h, input| {
        amr_block_mode_sim(h, input)
    })
    .expect("processes world succeeds");
    let threads = Damaris::launch_test(config("threads"), program, &[], |h, input| {
        amr_block_mode_sim(h, input)
    })
    .expect("threads world succeeds");
    assert_eq!(processes.outputs, threads.outputs);
    assert_eq!(processes.outputs[0], vec![1], "RequestTooLarge on both");
}

// ---------------------------------------------------------------------------
// The storage pipeline: `<store>` must produce equivalent files per world
// ---------------------------------------------------------------------------

fn store_config(world: &str, dir: &std::path::Path, extra: &str) -> Configuration {
    // The path must be deterministic (no PIDs): process-mode children
    // re-derive it from the configuration on the wire. Distinct per
    // world so the two runs cannot clobber each other's file.
    let xml = format!(
        r#"<simulation name="store-eq">
             <architecture>
               <dedicated cores="1"/>
               <clients count="2"/>
               <buffer size="4194304"/>
               <queue capacity="256"/>
               <world kind="{world}"/>
               <store type="h5lite" path="{}" chunk_rows="4"{extra}/>
             </architecture>
             <data>
               <layout name="grid" type="f64" dimensions="8,16"/>
               <variable name="u" layout="grid" codec="xor-delta8,shuffle8,rle,lzss"/>
               <variable name="v" layout="grid"/>
             </data>
           </simulation>"#,
        dir.display()
    );
    Configuration::from_str(&xml).expect("store config is valid")
}

fn store_sim<H: SimHandle>(h: &mut H, input: &[u8]) -> Vec<u8> {
    let iterations = u64::from(input[0]);
    for it in 0..iterations {
        let data: Vec<f64> = (0..128)
            .map(|i| 300.0 + h.id() as f64 + it as f64 * 0.01 + (i % 16) as f64 * 0.125)
            .collect();
        h.write("u", it, &data).expect("write u");
        h.write("v", it, &data).expect("write v");
        h.end_iteration(it).expect("end iteration");
    }
    h.finalize().expect("finalize");
    Vec::new()
}

/// The §IV.D pipeline is world-independent: the same simulation under
/// `<store>` leaves **byte-identical** per-node files whether the
/// dedicated core is a thread or a separate process — same dataset tree,
/// same chunking, same codec streams (the codecs are deterministic),
/// same footer.
#[test]
fn store_produces_byte_identical_files_across_worlds() {
    let base = std::env::temp_dir().join("damaris-store-eq");
    let pdir = base.join("processes");
    let tdir = base.join("threads");
    let program = "store_produces_byte_identical_files_across_worlds";
    let processes = Damaris::launch_test(
        store_config("processes", &pdir, ""),
        program,
        &[4],
        |h, i| store_sim(h, i),
    )
    .expect("processes world succeeds");
    let threads =
        Damaris::launch_test(store_config("threads", &tdir, ""), program, &[4], |h, i| {
            store_sim(h, i)
        })
        .expect("threads world succeeds");
    assert_equivalent(&processes, &threads);

    let pfile = pdir.join("store-eq_node0.dh5");
    let tfile = tdir.join("store-eq_node0.dh5");
    let pbytes = std::fs::read(&pfile).expect("process world wrote its per-node file");
    let tbytes = std::fs::read(&tfile).expect("thread world wrote its per-node file");
    assert_eq!(pbytes, tbytes, "per-node files must be byte-identical");

    // And the shared bytes decode back to the simulation's data.
    let mut r = h5lite::FileReader::open(&pfile).expect("file opens");
    let expect: Vec<f64> = (0..128)
        .map(|i| 300.0 + 1.0 + 3.0 * 0.01 + (i % 16) as f64 * 0.125)
        .collect();
    assert_eq!(
        r.read_pod::<f64>("it000003/u/rank1").expect("codec decode"),
        expect
    );
    assert_eq!(r.read_pod::<f64>("it000003/v/rank1").unwrap(), expect);
    std::fs::remove_dir_all(&base).ok();
}

/// The parallel encode pool must be invisible in the output: with
/// `<store workers="3">` the per-node files stay byte-identical across
/// worlds *and* byte-identical to the serial (`workers="1"`) engine —
/// chunk fan-out changes who encodes, never what lands in the file.
#[test]
fn store_parallel_workers_byte_identical_across_worlds() {
    let base = std::env::temp_dir().join("damaris-store-eq-workers");
    let program = "store_parallel_workers_byte_identical_across_worlds";
    let mut files = Vec::new();
    for (world, workers) in [
        ("processes", r#" workers="3""#),
        ("threads", r#" workers="3""#),
        ("threads", r#" workers="1""#),
    ] {
        let dir = base.join(format!("{world}{}", files.len()));
        Damaris::launch_test(store_config(world, &dir, workers), program, &[3], |h, i| {
            store_sim(h, i)
        })
        .expect("world succeeds");
        files.push(std::fs::read(dir.join("store-eq_node0.dh5")).expect("per-node file written"));
    }
    assert_eq!(files[0], files[1], "worlds diverged under workers=3");
    assert_eq!(files[1], files[2], "parallel encode changed the bytes");
    std::fs::remove_dir_all(&base).ok();
}

// ---------------------------------------------------------------------------
// The streaming tier: `<serve>` must deliver equivalent frames per world
// ---------------------------------------------------------------------------

fn serve_config(world: &str, dir: &std::path::Path) -> Configuration {
    // `addr_file` publishes the ephemeral port; `queue_frames` is
    // generous so the captured stream never enters the lag path and
    // `retain` keeps iteration 0 alive for catch-up.
    let xml = format!(
        r#"<simulation name="serve-eq">
             <architecture>
               <dedicated cores="1"/>
               <clients count="2"/>
               <buffer size="4194304"/>
               <queue capacity="256"/>
               <world kind="{world}"/>
               <serve listen="127.0.0.1:0" queue_frames="1024" retain="8"
                      addr_file="{}/addr"/>
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="64"/>
               <variable name="u" layout="row"/>
               <variable name="v" layout="row"/>
             </data>
           </simulation>"#,
        dir.display()
    );
    Configuration::from_str(&xml).expect("serve config is valid")
}

/// Generic driver for the streaming equivalence run. `input` carries the
/// coordination directory (it must survive the process-mode re-exec, so
/// it rides the wire, not a closure capture). Iteration 0 is published
/// *before* the gate: its delivery — live, or via the snapshot catch-up
/// if the server processes SUBSCRIBE late — proves the subscription is
/// active, and only then does the subscriber write `<dir>/go` to release
/// iterations 1..=3. That makes full capture of 1..=3 deterministic on
/// both backends without a protocol-level acknowledgment.
fn serve_sim<H: SimHandle>(h: &mut H, input: &[u8]) -> Vec<u8> {
    let dir = std::path::Path::new(std::str::from_utf8(input).expect("utf-8 dir"));
    let id = h.id() as f64;
    fn write_iter<H: SimHandle>(h: &mut H, id: f64, it: u64) {
        let mk = |base: f64| -> Vec<f64> {
            (0..64)
                .map(|i| base + id * 10.0 + it as f64 + i as f64 * 0.25)
                .collect()
        };
        h.write("u", it, &mk(100.0)).expect("write u");
        h.write("v", it, &mk(200.0)).expect("write v");
        h.end_iteration(it).expect("end iteration");
    }
    write_iter(h, id, 0);
    let go = dir.join("go");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !go.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "subscriber never opened the gate"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for it in 1..=3u64 {
        write_iter(h, id, it);
    }
    h.finalize().expect("finalize");
    Vec::new()
}

/// What one subscriber observed: every DATA payload keyed by
/// `(iteration, variable, source)`, plus each ITER-END's block count.
type Captured = (
    std::collections::BTreeMap<(u64, String, u64), Vec<u8>>,
    Vec<(u64, u64)>,
);

/// Poll for the server's `addr` file, connect, subscribe to everything,
/// wait for iteration 0 (proof the subscription is live), open the
/// simulation's gate, and record the stream through iteration 3.
fn capture_stream(dir: &std::path::Path) -> Captured {
    use damaris_serve::{Subscriber, SubscriberEvent};
    let addr_file = dir.join("addr");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let addr = loop {
        // Written via tmp + rename, so a readable file is a complete one.
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            break s
                .trim()
                .parse::<std::net::SocketAddr>()
                .expect("addr parses");
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never published its address"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    let mut sub = Subscriber::connect(addr).expect("subscriber connects");
    assert_eq!(sub.simulation(), "serve-eq");
    sub.subscribe(&[]).expect("subscribe to all");

    let mut data = std::collections::BTreeMap::new();
    let mut ends = Vec::new();
    let mut gated = false;
    loop {
        match sub.next_event().expect("stream stays healthy") {
            SubscriberEvent::Data {
                variable,
                iteration,
                source,
                bytes,
            } => {
                let prev = data.insert((iteration, variable, source), bytes);
                assert!(prev.is_none(), "no frame is delivered twice");
            }
            SubscriberEvent::IterationEnd { iteration, blocks } => {
                ends.push((iteration, blocks));
                if iteration == 0 {
                    // Subscription confirmed end-to-end: release 1..=3.
                    std::fs::write(dir.join("go"), b"go").expect("open the gate");
                    gated = true;
                }
                if iteration == 3 {
                    break;
                }
            }
            SubscriberEvent::Lag { .. } => panic!("generous queue must not lag"),
            SubscriberEvent::Bye => panic!("BYE at iteration {ends:?}, gate {gated}"),
        }
    }
    let _ = sub.bye();
    (data, ends)
}

/// The streaming tier is world-independent: a subscriber watching the
/// thread world's in-process server and one watching the process world's
/// out-of-process server observe **byte-identical** DATA payloads and
/// identical iteration boundaries, frame for frame.
#[test]
fn serve_frames_byte_identical_across_worlds() {
    let base = std::env::temp_dir().join("damaris-serve-eq");
    // Process-mode children re-execute this function from the top; only
    // the parent may touch the coordination directory or run a
    // subscriber (children exit inside `launch_test`).
    let is_parent = mini_mpi::World::spawn_dir().is_none();
    if is_parent {
        std::fs::remove_dir_all(&base).ok();
    }
    let program = "serve_frames_byte_identical_across_worlds";
    let mut captures = Vec::new();
    for world in ["processes", "threads"] {
        let dir = base.join(world);
        if is_parent {
            std::fs::create_dir_all(&dir).expect("coordination dir");
        }
        let watcher = is_parent.then(|| {
            let d = dir.clone();
            std::thread::spawn(move || capture_stream(&d))
        });
        let input = dir.to_str().expect("utf-8 tmpdir").as_bytes().to_vec();
        Damaris::launch_test(serve_config(world, &dir), program, &input, |h, i| {
            serve_sim(h, i)
        })
        .expect("world succeeds");
        captures.push(
            watcher
                .expect("parent past launch")
                .join()
                .expect("capture"),
        );
    }
    let (pdata, pends) = &captures[0];
    let (tdata, tends) = &captures[1];
    assert_eq!(pdata, tdata, "DATA payloads must be byte-identical");
    assert_eq!(pends, tends, "iteration boundaries must agree");

    // Sanity beyond mutual equality: full coverage and exact bytes.
    assert_eq!(pdata.len(), 4 * 2 * 2, "4 iterations × 2 vars × 2 clients");
    assert_eq!(pends, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
    for (&(it, ref var, source), bytes) in pdata {
        let base = if var == "u" { 100.0 } else { 200.0 };
        let expect: Vec<u8> = (0..64)
            .flat_map(|i| (base + source as f64 * 10.0 + it as f64 + i as f64 * 0.25).to_le_bytes())
            .collect();
        assert_eq!(bytes, &expect, "{var} it{it} rank{source}");
    }
    std::fs::remove_dir_all(&base).ok();
}

proptest! {
    // Property: for arbitrary seeds, the AMR driver's variable-size
    // writes produce byte-identical WriteStatus sequences and
    // field-identical SimReports (including the block digest) across
    // worlds. Case count small: every case spawns real processes.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn amr_equivalence_proptest(
        iterations in 1u8..=3,
        seed in any::<u8>(),
    ) {
        let (processes, threads) = run_both_amr(
            "amr_equivalence_proptest",
            2,
            4 << 20,
            "",
            &[iterations, seed],
            |h, input| amr_sim(h, input),
        );
        assert_equivalent(&processes, &threads);
        prop_assert_eq!(processes.iterations_completed, u64::from(iterations));
    }
}

proptest! {
    // Property: for arbitrary client counts, iteration counts and data
    // seeds, the generic driver's outputs and the dedicated core's view
    // are identical across worlds. Spawning real processes is expensive,
    // so the case count is deliberately small; every case still covers
    // copy writes, interned-id writes, zero-copy alloc/commit, declared
    // and undeclared signals, and the full stats counters.
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn facade_equivalence_proptest(
        clients in 1usize..=2,
        iterations in 1u8..=3,
        seed in any::<u8>(),
    ) {
        let (processes, threads) = run_both(
            "facade_equivalence_proptest",
            clients,
            4 << 20,
            "",
            &[iterations, seed],
            |h, input| simulate(h, input),
        );
        assert_equivalent(&processes, &threads);
        prop_assert_eq!(processes.outputs.len(), clients);
        prop_assert_eq!(processes.iterations_completed, u64::from(iterations));
    }
}

/// Tentpole acceptance: the seed-list (host:port registry) rendezvous
/// with heartbeats enabled must be behaviourally invisible when nothing
/// fails — byte-identical client outputs and a field-identical
/// [`SimReport`] versus both the shared-dir process world and the
/// thread world, with an empty `dead_ranks` and `degraded == false`
/// everywhere.
#[test]
fn seed_list_rendezvous_is_equivalent_to_shared_dir() {
    let program = "seed_list_rendezvous_is_equivalent_to_shared_dir";
    let input = [5u8, 11u8];
    let mut seeded_cfg = config("processes", 2, 4 << 20, "");
    seeded_cfg.architecture.seeds = Some("127.0.0.1:0".to_string());
    seeded_cfg.architecture.heartbeat_ms = Some(50);
    seeded_cfg.architecture.heartbeat_timeout_ms = Some(5_000);
    let seeded = Damaris::launch_test(seeded_cfg, program, &input, |h, i| simulate(h, i))
        .expect("seed-list world succeeds");
    let shared_dir = Damaris::launch_test(
        config("processes", 2, 4 << 20, ""),
        program,
        &input,
        |h, i| simulate(h, i),
    )
    .expect("shared-dir world succeeds");
    let threads = Damaris::launch_test(
        config("threads", 2, 4 << 20, ""),
        program,
        &input,
        |h, i| simulate(h, i),
    )
    .expect("threads world succeeds");
    assert_equivalent(&seeded, &shared_dir);
    assert_equivalent(&shared_dir, &threads);
    for report in [&seeded, &shared_dir, &threads] {
        assert!(
            report.dead_ranks.is_empty(),
            "a no-fault run reports no deaths"
        );
        assert!(!report.degraded, "a no-fault run is not degraded");
    }
}
