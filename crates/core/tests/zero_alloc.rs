//! Proof of the tentpole claim: steady-state `write()` performs **zero
//! heap allocations** on the calling thread.
//!
//! A counting global allocator tracks allocations per thread; after a
//! warm-up phase (which populates the interning registry lookups, the
//! slab cache and the transport rings), a burst of writes and
//! end-of-iteration posts must not touch the heap at all: the variable
//! resolves through the prebuilt index, the block comes from the
//! size-class queues, freeze uses the segment's slot refcounts, the event
//! moves into a pre-allocated ring and the stats land in atomic buckets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // `try_with` so allocations during TLS teardown never panic.
    let _ = TRACKING.try_with(|t| {
        if t.get() {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: defers every allocation verbatim to `System` (only counting
// calls on the side), so all `GlobalAlloc` contracts are `System`'s own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards its arguments unchanged to `System`; the caller's
    // layout/pointer obligations pass straight through.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: forwarded verbatim to `System`, as above.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }
    // SAFETY: forwarded verbatim to `System`, as above.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: forwarded verbatim to `System`, as above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations made by the current thread while `f` runs.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.with(|c| c.get())
}

const XML: &str = r#"
  <simulation name="zero-alloc">
    <architecture>
      <dedicated cores="1"/>
      <buffer size="1048576"/>
      <queue capacity="4096" kind="sharded"/>
    </architecture>
    <data>
      <layout name="row" type="f64" dimensions="128"/>
      <variable name="u" layout="row"/>
      <variable name="v" layout="row"/>
    </data>
  </simulation>"#;

#[test]
fn steady_state_write_makes_zero_heap_allocations() {
    use damaris_core::prelude::*;

    let node = DamarisNode::builder()
        .config_str(XML)
        .unwrap()
        .clients(1)
        .build()
        .unwrap();
    let client = node.client(0).unwrap();
    let data = vec![1.25f64; 128];

    // Warm up: seed the size-class queues and the slab cache (the first
    // few allocations carve fresh ranges from the first-fit list, and the
    // dedicated core must free them back into the class queues).
    for it in 0..64u64 {
        client.write("u", it, &data).unwrap();
        client.write("v", it, &data).unwrap();
        client.end_iteration(it).unwrap();
    }
    // Let the dedicated core finish recycling the warm-up iterations, so
    // measured allocations hit the class queues rather than first-fit.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while node.segment_occupancy() > 0.0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Steady state: a full iteration (two writes + end-of-iteration) must
    // not allocate on this thread.
    let allocs = count_allocs(|| {
        for it in 64..128u64 {
            assert_eq!(client.write("u", it, &data).unwrap(), WriteStatus::Written);
            assert_eq!(client.write("v", it, &data).unwrap(), WriteStatus::Written);
            client.end_iteration(it).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state write path allocated {allocs} times on the heap"
    );

    client.finalize().unwrap();
    let report = node.shutdown().unwrap();
    assert_eq!(report.iterations_completed, 128);

    // Sanity: the counter itself works.
    let observed = count_allocs(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
    });
    assert!(observed >= 1, "counting allocator must see explicit allocs");
}

#[test]
fn iteration_zero_hits_classes() {
    use damaris_core::prelude::*;

    // NodeBuilder pre-carves one slab block per size class per client, so
    // the *first* write of every variable — iteration 0, before any block
    // has ever been freed — must already bypass the first-fit mutex.
    let node = DamarisNode::builder()
        .config_str(XML)
        .unwrap()
        .clients(2)
        .build()
        .unwrap();
    let data = vec![0.5f64; 128];
    for client in node.clients() {
        assert_eq!(client.write("u", 0, &data).unwrap(), WriteStatus::Written);
        assert_eq!(client.write("v", 0, &data).unwrap(), WriteStatus::Written);
        client.end_iteration(0).unwrap();
    }
    let stats = node.segment_stats();
    assert_eq!(stats.allocations, 4);
    assert_eq!(
        stats.class_hits, 4,
        "every iteration-0 allocation must be a class hit (prewarmed slabs)"
    );
    for client in node.clients() {
        client.finalize().unwrap();
    }
    node.shutdown().unwrap();
}
