//! End-to-end tests of the subscriber streaming tier through a live
//! `DamarisNode`: a `<serve>` element in the XML must stand up a TCP
//! endpoint beside the dedicated core, publish every completed iteration
//! to connected subscribers, and — per the lag policy — never let a slow
//! consumer stall `end_iteration` on the compute side.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use damaris_core::prelude::*;
use damaris_serve::{Subscriber, SubscriberEvent};

fn serve_config(queue_frames: u32) -> Configuration {
    let xml = format!(
        r#"<simulation name="streamsim">
             <architecture>
               <dedicated cores="1"/>
               <clients count="1"/>
               <buffer size="4194304"/>
               <queue capacity="256"/>
               <world kind="threads"/>
               <serve listen="127.0.0.1:0" queue_frames="{queue_frames}"/>
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="256"/>
               <variable name="u" layout="row"/>
               <variable name="v" layout="row"/>
             </data>
           </simulation>"#
    );
    Configuration::from_str(&xml).expect("serve config is valid")
}

fn field(var: &str, iteration: u64) -> Vec<f64> {
    let base = if var == "u" { 100.0 } else { 200.0 };
    (0..256)
        .map(|i| base + iteration as f64 * 0.5 + i as f64 * 0.125)
        .collect()
}

fn as_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Drain blocking events until the given iteration's ITER-END arrives,
/// collecting every DATA payload seen on the way.
fn read_until_iter_end(
    sub: &mut Subscriber,
    target: u64,
    data: &mut BTreeMap<(u64, String, u64), Vec<u8>>,
) -> u64 {
    loop {
        match sub.next_event().expect("subscriber stream stays healthy") {
            SubscriberEvent::Data {
                variable,
                iteration,
                source,
                bytes,
            } => {
                let prev = data.insert((iteration, variable, source), bytes);
                assert!(prev.is_none(), "no frame is delivered twice");
            }
            SubscriberEvent::IterationEnd { iteration, blocks } if iteration == target => {
                return blocks;
            }
            SubscriberEvent::IterationEnd { .. } => {}
            other => panic!("unexpected event before it{target} end: {other:?}"),
        }
    }
}

/// A live node with `<serve>`: the subscriber receives every iteration's
/// blocks byte-identical to what the compute core wrote, framed by
/// ITER-END boundaries, and the node reports streaming stats.
#[test]
fn live_node_streams_every_iteration_to_a_subscriber() {
    let node = DamarisNode::builder()
        .config(serve_config(64))
        .clients(1)
        .build()
        .expect("node with <serve> builds");
    let addr = node.serve_addr().expect("streaming tier bound an endpoint");
    let mut sub = Subscriber::connect(addr).expect("subscriber connects");
    assert_eq!(sub.simulation(), "streamsim");
    sub.subscribe(&[]).expect("subscribe to all variables");

    let client = node.client(0).unwrap();
    let mut frames = BTreeMap::new();
    for it in 0..3u64 {
        client.write("u", it, &field("u", it)).unwrap();
        client.write("v", it, &field("v", it)).unwrap();
        client.end_iteration(it).unwrap();
        let blocks = read_until_iter_end(&mut sub, it, &mut frames);
        assert_eq!(blocks, 2, "2 variables × 1 client per iteration");
    }
    client.finalize().unwrap();

    assert_eq!(frames.len(), 3 * 2, "every block of every iteration");
    for it in 0..3u64 {
        for var in ["u", "v"] {
            let bytes = &frames[&(it, var.to_string(), 0)];
            assert_eq!(as_f64(bytes), field(var, it), "{var} it{it}");
        }
    }

    let stats = node.serve_stats().expect("serve stats exposed");
    assert_eq!(stats.iterations_published, 3);
    assert_eq!(stats.data_frames_published, 6);
    assert_eq!(stats.subscribers_connected, 1);
    assert_eq!(stats.frames_dropped, 0, "fast consumer never lags");

    // Graceful shutdown drains the connection with a BYE.
    let report = node.shutdown().expect("node shuts down");
    assert!(
        report.plugin_errors.is_empty(),
        "{:?}",
        report.plugin_errors
    );
    loop {
        match sub.next_event().expect("drain until BYE") {
            SubscriberEvent::Bye => break,
            _ => continue,
        }
    }
}

/// Satellite: slow-consumer injection. A subscriber that stops reading
/// must never stall the compute side — `end_iteration` stays fast while
/// the server drops whole iterations from the stalled queue — and once
/// the consumer resumes it gets an explicit LAG frame, then clean
/// whole-iteration delivery again.
#[test]
fn stalled_subscriber_never_stalls_end_iteration() {
    let node = DamarisNode::builder()
        .config(serve_config(4))
        .clients(1)
        .build()
        .expect("node with <serve> builds");
    let addr = node.serve_addr().unwrap();
    let mut sub = Subscriber::connect(addr).expect("subscriber connects");
    sub.subscribe(&[]).expect("subscribe");

    // Confirm the link once, then go silent.
    let client = node.client(0).unwrap();
    client.write("u", 0, &field("u", 0)).unwrap();
    client.write("v", 0, &field("v", 0)).unwrap();
    client.end_iteration(0).unwrap();
    let mut warmup = BTreeMap::new();
    read_until_iter_end(&mut sub, 0, &mut warmup);

    // Stall phase: 60 iterations into a queue of 4 frames, never read.
    // The publisher must stay wait-free: each end_iteration is bounded
    // and the overflow turns into dropped frames, not backpressure.
    let mut worst = Duration::ZERO;
    for it in 1..=60u64 {
        client.write("u", it, &field("u", it)).unwrap();
        client.write("v", it, &field("v", it)).unwrap();
        let t0 = Instant::now();
        client.end_iteration(it).unwrap();
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_secs(1),
        "end_iteration stalled behind a dead subscriber: {worst:?}"
    );

    // Wait until the dedicated core has published everything it will.
    let deadline = Instant::now() + Duration::from_secs(10);
    while node.serve_stats().unwrap().iterations_published < 61 {
        assert!(Instant::now() < deadline, "publishes did not complete");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = node.serve_stats().unwrap();
    assert!(
        stats.frames_dropped > 0,
        "overflow must drop, got {stats:?}"
    );
    assert!(
        stats.publish_ns_max < 50_000_000,
        "publish must stay wait-free: {stats:?}"
    );

    // Resume: drain while fresh iterations keep arriving; the first
    // frame of the resumed stream is a LAG notice, and after it only
    // whole iterations are delivered. The tiny queue may overflow again
    // while draining, so further LAG/resume cycles are legitimate.
    let mut lags: Vec<(u64, u64)> = Vec::new();
    let mut resumed: BTreeMap<(u64, String, u64), Vec<u8>> = BTreeMap::new();
    let mut ends = Vec::new();
    'outer: for it in 61..=120u64 {
        client.write("u", it, &field("u", it)).unwrap();
        client.write("v", it, &field("v", it)).unwrap();
        client.end_iteration(it).unwrap();
        loop {
            match sub.try_next().expect("stream healthy") {
                None => break,
                Some(SubscriberEvent::Lag {
                    dropped_frames,
                    resume_iteration,
                }) => lags.push((dropped_frames, resume_iteration)),
                Some(SubscriberEvent::Data {
                    variable,
                    iteration,
                    source,
                    bytes,
                }) => {
                    resumed.insert((iteration, variable, source), bytes);
                }
                Some(SubscriberEvent::IterationEnd { iteration, .. }) => {
                    ends.push(iteration);
                    if !lags.is_empty() && ends.len() >= 3 {
                        break 'outer;
                    }
                }
                Some(other) => panic!("unexpected event: {other:?}"),
            }
        }
    }
    client.finalize().unwrap();

    assert!(!lags.is_empty(), "LAG frame delivered on resume");
    for &(dropped, resume_at) in &lags {
        assert!(dropped > 0, "LAG carries the dropped-frame count");
        assert!(resume_at > 0, "LAG names the resumption iteration");
    }
    // Whole-iteration delivery: every iteration bounded by an ITER-END
    // has both of its variables present, byte-exact.
    for &it in &ends {
        for var in ["u", "v"] {
            let bytes = resumed
                .get(&(it, var.to_string(), 0))
                .unwrap_or_else(|| panic!("{var} missing from delivered it{it}"));
            assert_eq!(as_f64(bytes), field(var, it), "{var} it{it}");
        }
    }

    let stats = node.serve_stats().unwrap();
    assert!(stats.lag_events >= 1, "{stats:?}");
    node.shutdown().expect("node shuts down");
}

/// Without `<serve>` the tier stays dark: no listener, no stats.
#[test]
fn node_without_serve_exposes_no_streaming_endpoint() {
    let xml = r#"<simulation name="dark">
         <architecture>
           <dedicated cores="1"/>
           <buffer size="1048576"/>
           <queue capacity="64"/>
         </architecture>
         <data>
           <layout name="row" type="f64" dimensions="16"/>
           <variable name="u" layout="row"/>
         </data>
       </simulation>"#;
    let node = DamarisNode::builder()
        .config_str(xml)
        .unwrap()
        .clients(1)
        .build()
        .unwrap();
    assert!(node.serve_addr().is_none());
    assert!(node.serve_stats().is_none());
    node.client(0).unwrap().finalize().unwrap();
    node.shutdown().unwrap();
}
