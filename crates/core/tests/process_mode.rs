//! End-to-end process mode: clients and the dedicated core as separate OS
//! processes, events over Unix-domain sockets, block payloads through a
//! file-backed shared-memory segment.

use damaris_core::prelude::*;
use damaris_core::process::{
    segment_path, ProcessClient, ProcessServer, ServeReport, DEDICATED_RANK,
};
use damaris_core::SimWriter;
use mini_mpi::World;

const XML: &str = r#"
  <simulation name="process-mode">
    <architecture>
      <dedicated cores="1"/>
      <buffer size="262144"/>
      <queue capacity="64"/>
    </architecture>
    <data>
      <layout name="row" type="f64" dimensions="64"/>
      <variable name="u" layout="row"/>
      <variable name="v" layout="row"/>
    </data>
  </simulation>"#;

const ITERATIONS: u64 = 8;

fn le_u64s(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_le_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn clients_and_dedicated_core_as_processes() {
    // 1 dedicated core + 2 clients, each a real OS process.
    let out = World::run_spawned_test(
        3,
        "clients_and_dedicated_core_as_processes",
        &[],
        |comm, _| {
            let cfg = Configuration::from_str(XML).unwrap();
            let dir = World::spawn_dir().expect("rank runs inside a spawned world");
            if comm.rank() == DEDICATED_RANK {
                let server = ProcessServer::new(comm, cfg, &dir).unwrap();
                let mut sink = StatsSink::new();
                let report: ServeReport = server.serve(comm, &mut sink).unwrap();
                // Verify data integrity on the server side: iteration 3,
                // variable "u" = 2 clients × 64 values of (client_rank + 3).
                let u = server.config().registry().var_id("u").unwrap();
                let (count, sum, min, max) = sink.summary(3, u).unwrap();
                assert_eq!(count, 2 * 64);
                assert_eq!(min, 1.0 + 3.0);
                assert_eq!(max, 2.0 + 3.0);
                assert_eq!(sum, 64.0 * (4.0 + 5.0));
                assert_eq!(sink.completed.len(), ITERATIONS as usize);
                le_u64s(&[
                    report.iterations_completed,
                    report.blocks_received,
                    report.bytes_received,
                ])
            } else {
                let mut client = ProcessClient::new(comm, cfg, &dir).unwrap();
                for it in 0..ITERATIONS {
                    let data = vec![comm.rank() as f64 + it as f64; 64];
                    assert_eq!(
                        client.write(comm, "u", it, &data).unwrap(),
                        WriteStatus::Written
                    );
                    // "v" takes the zero-copy path: allocate in the shared
                    // mapping, fill in place, commit a descriptor.
                    let mut w = client.alloc(comm, "v", it).unwrap();
                    assert!(!SimWriter::is_skipped(&w));
                    SimWriter::fill_pod(&mut w, &data);
                    assert_eq!(client.commit(comm, w).unwrap(), WriteStatus::Written);
                    client.end_iteration(comm, it).unwrap();
                }
                // Bad writes fail fast without wedging the protocol.
                assert!(matches!(
                    client.write(comm, "ghost", 0, &[0.0f64; 64]),
                    Err(DamarisError::UnknownVariable(_))
                ));
                assert!(matches!(
                    client.write(comm, "u", 0, &[0.0f64; 3]),
                    Err(DamarisError::LayoutMismatch { .. })
                ));
                let stats = client.slice_stats();
                let occupancy_zero = client.slice_occupancy();
                // Process mode records the same lock-free client stats as
                // thread mode: every copy write and zero-copy commit
                // counted with its latency and bytes.
                let cstats = client.stats();
                client.finalize(comm).unwrap();
                le_u64s(&[
                    stats.allocations,
                    stats.class_hits,
                    (occupancy_zero >= 0.0) as u64,
                    cstats.writes,
                    cstats.skipped_writes,
                    cstats.bytes_written,
                    (cstats.max_write_seconds > 0.0) as u64,
                ])
            }
        },
    )
    .expect("process node must succeed");

    let server = from_le_u64s(&out[DEDICATED_RANK]);
    assert_eq!(server[0], ITERATIONS, "iterations completed");
    assert_eq!(server[1], ITERATIONS * 2 * 2, "2 vars × 2 clients per iter");
    assert_eq!(server[2], ITERATIONS * 2 * 2 * 512, "512 bytes per block");
    for (rank, bytes) in out.iter().enumerate().skip(1) {
        let client = from_le_u64s(bytes);
        assert_eq!(client[0], ITERATIONS * 2, "one allocation per write");
        assert!(
            client[1] > 0,
            "recycled iterations must come from the class queues (rank {rank})"
        );
        assert_eq!(client[3], ITERATIONS * 2, "stats count every write");
        assert_eq!(client[4], 0, "nothing skipped");
        assert_eq!(client[5], ITERATIONS * 2 * 512, "bytes recorded");
        assert_eq!(client[6], 1, "latencies recorded (rank {rank})");
    }
}

#[test]
fn oversized_iteration_fails_fast_not_timeout() {
    // A slice that fits exactly one block cannot hold a two-block
    // iteration: no acknowledgement can ever retire the *current*
    // iteration (its END is not sent yet), so the second write must fail
    // immediately with a sizing error — not ride a 60 s allocator
    // timeout, and not deadlock on the segment condvar that nothing in
    // this process could ever signal.
    const TIGHT: &str = r#"
      <simulation name="tight">
        <architecture>
          <dedicated cores="1"/>
          <buffer size="576"/>
          <queue capacity="8"/>
        </architecture>
        <data>
          <layout name="row" type="f64" dimensions="64"/>
          <variable name="u" layout="row"/>
        </data>
      </simulation>"#;
    let out = World::run_spawned_test(2, "oversized_iteration_fails_fast_not_timeout", &[], {
        |comm, _| {
            let cfg = Configuration::from_str(TIGHT).unwrap();
            let dir = World::spawn_dir().unwrap();
            if comm.rank() == DEDICATED_RANK {
                let server = ProcessServer::new(comm, cfg, &dir).unwrap();
                let mut sink = StatsSink::new();
                let report = server.serve(comm, &mut sink).unwrap();
                le_u64s(&[report.blocks_received])
            } else {
                let mut client = ProcessClient::new(comm, cfg, &dir).unwrap();
                let data = vec![1.0f64; 64];
                client.write(comm, "u", 0, &data).unwrap();
                let t0 = std::time::Instant::now();
                let err = client.write(comm, "u", 0, &data).unwrap_err();
                assert!(
                    t0.elapsed() < std::time::Duration::from_secs(5),
                    "sizing error must be immediate"
                );
                assert!(
                    matches!(err, DamarisError::InvalidState(_)),
                    "expected a sizing error, got {err}"
                );
                // The session stays usable: finish the iteration with the
                // one block that did fit.
                client.end_iteration(comm, 0).unwrap();
                client.finalize(comm).unwrap();
                le_u64s(&[1])
            }
        }
    })
    .expect("world must succeed");
    assert_eq!(from_le_u64s(&out[0]), vec![1], "server saw the one block");
}

#[test]
fn drop_policy_skips_oversized_iterations_instead_of_erroring() {
    // Same slice-too-small shape as the fail-fast test below, but under
    // <skip mode="drop-iteration"/>: the paper's §V.C.1 choice is to lose
    // data rather than stall (or error), so the second write of each
    // iteration must report Skipped, the client must keep running, and
    // the server must see the iterations as (partially) skipped.
    const TIGHT_DROP: &str = r#"
      <simulation name="tight-drop">
        <architecture>
          <dedicated cores="1"/>
          <buffer size="576"/>
          <queue capacity="8"/>
          <skip mode="drop-iteration" high-watermark="1.0"/>
        </architecture>
        <data>
          <layout name="row" type="f64" dimensions="64"/>
          <variable name="u" layout="row"/>
        </data>
      </simulation>"#;
    const ITERS: u64 = 3;
    let out = World::run_spawned_test(
        2,
        "drop_policy_skips_oversized_iterations_instead_of_erroring",
        &[],
        |comm, _| {
            let cfg = Configuration::from_str(TIGHT_DROP).unwrap();
            let dir = World::spawn_dir().unwrap();
            if comm.rank() == DEDICATED_RANK {
                let server = ProcessServer::new(comm, cfg, &dir).unwrap();
                let mut sink = StatsSink::new();
                let report = server.serve(comm, &mut sink).unwrap();
                le_u64s(&[
                    report.iterations_completed,
                    report.blocks_received,
                    report.skipped_client_iterations,
                ])
            } else {
                let mut client = ProcessClient::new(comm, cfg, &dir).unwrap();
                let data = vec![1.0f64; 64];
                // Iteration 0 is fully deterministic: the slice starts
                // empty, fits exactly one block (occupancy 512/576 < 1.0
                // never rejects up front), and exhaustion is hit on the
                // second write — which must *drop*, never block or error.
                assert_eq!(
                    client.write(comm, "u", 0, &data).unwrap(),
                    WriteStatus::Written,
                    "first block of iteration 0 fits"
                );
                assert_eq!(
                    client.write(comm, "u", 0, &data).unwrap(),
                    WriteStatus::Skipped,
                    "exhaustion drops the rest of iteration 0"
                );
                assert_eq!(
                    client.write(comm, "u", 0, &data).unwrap(),
                    WriteStatus::Skipped,
                    "the drop decision sticks for iteration 0"
                );
                client.end_iteration(comm, 0).unwrap();
                // Later iterations stay live but are timing-dependent:
                // drop mode never *waits* for the previous iteration's
                // ack, so the first write lands only if the ack already
                // arrived. Assert consistency, not exact statuses.
                for it in 1..ITERS {
                    for _ in 0..3 {
                        client.write(comm, "u", it, &data).unwrap();
                    }
                    client.end_iteration(comm, it).unwrap();
                }
                let stats = client.stats();
                let skipped = client.skipped_iterations();
                client.finalize(comm).unwrap();
                le_u64s(&[stats.writes, stats.skipped_writes, skipped])
            }
        },
    )
    .expect("drop-policy world must succeed");
    let server = from_le_u64s(&out[0]);
    let client = from_le_u64s(&out[1]);
    let (writes, skipped_writes, skipped_iters) = (client[0], client[1], client[2]);
    assert_eq!(server[0], ITERS, "every iteration still completes");
    assert_eq!(server[1], writes, "server consumed exactly what landed");
    assert_eq!(server[2], ITERS, "each iteration announced as skipped");
    assert!(
        (1..=ITERS).contains(&writes),
        "at most one block per iteration fits, iteration 0's always does ({writes})"
    );
    assert_eq!(writes + skipped_writes, ITERS * 3, "every call accounted");
    assert_eq!(skipped_iters, ITERS, "every iteration partially dropped");
}

#[test]
fn signals_reach_the_dedicated_core_sink() {
    const WITH_ACTION: &str = r#"
      <simulation name="signals">
        <architecture>
          <dedicated cores="1"/>
          <buffer size="262144"/>
          <queue capacity="64"/>
        </architecture>
        <data>
          <layout name="row" type="f64" dimensions="64"/>
          <variable name="u" layout="row"/>
        </data>
        <actions>
          <action name="snap" plugin="viz" event="take-snapshot"/>
        </actions>
      </simulation>"#;
    let out = World::run_spawned_test(
        2,
        "signals_reach_the_dedicated_core_sink",
        &[],
        |comm, _| {
            let cfg = Configuration::from_str(WITH_ACTION).unwrap();
            let dir = World::spawn_dir().unwrap();
            if comm.rank() == DEDICATED_RANK {
                let server = ProcessServer::new(comm, cfg, &dir).unwrap();
                let mut sink = StatsSink::new();
                let report = server.serve(comm, &mut sink).unwrap();
                assert_eq!(
                    sink.signals,
                    vec![(0, 2, 1)],
                    "event 0, iteration 2, rank 1"
                );
                le_u64s(&[report.signals_delivered])
            } else {
                let mut client = ProcessClient::new(comm, cfg, &dir).unwrap();
                client.write(comm, "u", 2, &vec![4.0f64; 64]).unwrap();
                client.signal(comm, "take-snapshot", 2).unwrap();
                // Undeclared names are filtered at the client edge, exactly
                // like thread mode.
                client.signal(comm, "nobody-listens", 2).unwrap();
                client.end_iteration(comm, 2).unwrap();
                client.finalize(comm).unwrap();
                le_u64s(&[])
            }
        },
    )
    .expect("signal world must succeed");
    assert_eq!(from_le_u64s(&out[0]), vec![1], "one declared signal only");
}

#[test]
fn segment_file_cleaned_up() {
    // The server owns the segment file and must unlink it on drop; the
    // rendezvous dir disappears with the world.
    let out = World::run_spawned_test(2, "segment_file_cleaned_up", &[], |comm, _| {
        let cfg = Configuration::from_str(XML).unwrap();
        let dir = World::spawn_dir().unwrap();
        let path = segment_path(&dir);
        if comm.rank() == DEDICATED_RANK {
            let server = ProcessServer::new(comm, cfg, &dir).unwrap();
            let mut sink = StatsSink::new();
            server.serve(comm, &mut sink).unwrap();
            let existed = path.exists();
            drop(server);
            le_u64s(&[u64::from(existed), u64::from(path.exists())])
        } else {
            let mut client = ProcessClient::new(comm, cfg, &dir).unwrap();
            client.write(comm, "u", 0, &vec![1.0f64; 64]).unwrap();
            client.end_iteration(comm, 0).unwrap();
            client.finalize(comm).unwrap();
            le_u64s(&[])
        }
    })
    .expect("world must succeed");
    assert_eq!(
        from_le_u64s(&out[0]),
        vec![1, 0],
        "segment file exists while serving, unlinked after drop"
    );
}
