//! Degraded-mode acceptance: with the reliable heartbeat mesh, one
//! client crash-stopping mid-run must not wedge the node. The surviving
//! clients complete **all** iterations, the dedicated core closes the
//! dead rank's staged iterations, and the [`SimReport`] names the dead
//! world rank — this is the CI acceptance criterion for multi-host
//! failure survival.
//!
//! The process world re-executes this test binary once per rank, so the
//! `program` string must equal the test function's name.

use damaris_core::prelude::*;

const ITERS: u64 = 8;
/// 0-based client id of the victim (world rank 2).
const VICTIM_CLIENT: usize = 1;
/// The victim dies right before this iteration.
const DEATH_ITERATION: u64 = 3;

fn config(heartbeat: bool) -> Configuration {
    let hb = if heartbeat {
        r#"heartbeat_ms="100" heartbeat_timeout_ms="1000""#
    } else {
        ""
    };
    let xml = format!(
        r#"<simulation name="degraded-mode">
             <architecture>
               <dedicated cores="1"/>
               <clients count="3"/>
               <buffer size="{}"/>
               <queue capacity="256"/>
               <world kind="processes" {hb}/>
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="64"/>
               <variable name="u" layout="row"/>
             </data>
           </simulation>"#,
        4 << 20
    );
    Configuration::from_str(&xml).expect("degraded-mode config is valid")
}

fn sim(h: &mut Damaris<'_>, _input: &[u8]) -> Vec<u8> {
    let data: Vec<f64> = (0..64).map(|i| h.id() as f64 + i as f64 * 0.25).collect();
    for it in 0..ITERS {
        if h.id() == VICTIM_CLIENT && it == DEATH_ITERATION {
            // Crash-stop: no goodbye, no finalize, no result. The
            // survivors and the dedicated core must carry on without it.
            std::process::exit(17);
        }
        h.write("u", it, &data).expect("write");
        h.end_iteration(it).expect("end iteration");
    }
    h.finalize().expect("finalize");
    (h.id() as u64).to_le_bytes().to_vec()
}

#[test]
fn client_death_mid_run_completes_degraded() {
    let report = Damaris::launch_test(
        config(true),
        "client_death_mid_run_completes_degraded",
        &[],
        sim,
    )
    .expect("a client death with heartbeats on must not fail the launch");
    assert_eq!(
        report.dead_ranks,
        vec![VICTIM_CLIENT + 1],
        "the report must name the dead world rank"
    );
    assert!(report.degraded, "a death must flag the run as degraded");
    assert_eq!(
        report.iterations_completed, ITERS,
        "survivors must complete every iteration in degraded mode"
    );
    assert!(
        report.outputs[VICTIM_CLIENT].is_empty(),
        "a dead client has no output"
    );
    for (id, out) in report.outputs.iter().enumerate() {
        if id != VICTIM_CLIENT {
            assert_eq!(
                out,
                &(id as u64).to_le_bytes().to_vec(),
                "surviving client {id} must finish normally"
            );
        }
    }
    // The victim died before DEATH_ITERATION, so at most its first
    // DEATH_ITERATION client-iterations contributed blocks; the two
    // survivors contributed all of theirs.
    assert!(
        report.blocks_received >= 2 * ITERS,
        "survivor blocks all arrive"
    );
    assert!(report.blocks_received <= 2 * ITERS + DEATH_ITERATION);
}

#[test]
fn client_death_without_heartbeat_still_fails_loudly() {
    // Legacy semantics preserved: with no heartbeat the mesh poisons on
    // death and the launch reports an error instead of degrading.
    let err = Damaris::launch_test(
        config(false),
        "client_death_without_heartbeat_still_fails_loudly",
        &[],
        sim,
    )
    .expect_err("without heartbeats a death must fail the launch");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("rank {}", VICTIM_CLIENT + 1)),
        "the error must name the dead rank: {msg}"
    );
}
