//! End-to-end tests of the real storage pipeline (§IV.D): a live
//! `<store type="h5lite">` run must leave one decodable per-node file
//! behind, with per-variable codec compression, chunked datasets, and a
//! steady-state codec path that reuses its scratch buffers instead of
//! allocating per iteration (asserted through the engine's stats
//! counters, the counting-allocator equivalent for this subsystem).

use std::path::PathBuf;
use std::sync::Arc;

use damaris_core::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("damaris-storetest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn store_config(dir: &std::path::Path) -> Configuration {
    let xml = format!(
        r#"<simulation name="stepsim">
             <architecture>
               <dedicated cores="1"/>
               <clients count="2"/>
               <buffer size="4194304"/>
               <queue capacity="256"/>
               <world kind="threads"/>
               <store type="h5lite" path="{}" chunk_rows="4"/>
             </architecture>
             <data>
               <layout name="grid" type="f64" dimensions="16,16"/>
               <variable name="u" layout="grid" codec="xor-delta8,shuffle8,rle"/>
               <variable name="v" layout="grid"/>
             </data>
           </simulation>"#,
        dir.display()
    );
    Configuration::from_str(&xml).expect("store config is valid")
}

/// A smooth CM1-like field: slowly varying in space, drifting with the
/// iteration — the data profile §IV.D compresses ~600 %.
fn field(rank: usize, iteration: u64) -> Vec<f64> {
    (0..256)
        .map(|i| 300.0 + rank as f64 + iteration as f64 * 0.01 + (i % 16) as f64 * 0.125)
        .collect()
}

fn run_store_sim(cfg: Configuration, iterations: u64) -> (SimReport, Arc<StoragePlugin>) {
    // Register our own engine handle under the same "storage" name: it
    // replaces the auto-registered plugin, so the test can read the
    // stats counters after the run.
    let storage = Arc::new(
        StoragePlugin::new(&cfg, 0, &std::env::temp_dir()).expect("storage plugin builds"),
    );
    let report = Damaris::launcher(cfg, "storage-pipeline-test")
        .input(&iterations.to_le_bytes())
        .with_plugin(storage.clone())
        .launch(|h, input| {
            let iterations = u64::from_le_bytes(input.try_into().unwrap());
            for it in 0..iterations {
                let data = field(h.id(), it);
                h.write("u", it, &data).unwrap();
                h.write("v", it, &data).unwrap();
                h.end_iteration(it).unwrap();
            }
            h.finalize().unwrap();
            Vec::new()
        })
        .expect("threads world with <store> runs");
    (report, storage)
}

#[test]
fn live_store_run_writes_one_decodable_file_per_node() {
    let dir = tmpdir("live");
    let (report, storage) = run_store_sim(store_config(&dir), 50);
    assert_eq!(report.iterations_completed, 50);

    // One real file for the whole node, all iterations, all ranks.
    let path = storage.file_path();
    assert_eq!(path, dir.join("stepsim_node0.dh5"));
    assert!(path.exists(), "per-node file written at {path:?}");

    // dh5dump's reading path decodes the chunked + codec'd datasets.
    let mut r = h5lite::FileReader::open(&path).expect("file opens");
    for rank in 0..2usize {
        for it in [0u64, 23, 49] {
            let got = r
                .read_pod::<f64>(&format!("it{it:06}/u/rank{rank}"))
                .expect("codec dataset decodes");
            assert_eq!(got, field(rank, it), "u rank{rank} it{it}");
            let got = r
                .read_pod::<f64>(&format!("it{it:06}/v/rank{rank}"))
                .expect("raw dataset reads");
            assert_eq!(got, field(rank, it), "v rank{rank} it{it}");
        }
    }
    let dump = r.dump();
    assert!(dump.contains("it000049/u/rank1  f64 [16x16]"), "{dump}");
    assert!(dump.contains("chunked[4 x 4 rows]"), "{dump}");
    assert!(dump.contains("codec=xor-delta8,shuffle8,rle"), "{dump}");
    assert_eq!(r.attr("", "simulation").unwrap().as_str(), Some("stepsim"));

    // The smooth field compresses; the raw variable keeps the file honest.
    let fs = storage.file_stats().expect("finish ran at shutdown");
    assert_eq!(fs.datasets, 50 * 2 * 2);
    assert!(
        fs.stored_bytes < fs.logical_bytes,
        "codec'd variable shrank the file: {fs:?}"
    );

    // Zero steady-state allocation, by stats: scratch growth is confined
    // to warm-up while encodes keep accumulating across all 50
    // iterations (every chunk of every `u` dataset is one encode).
    let st = storage.stats();
    assert_eq!(st.iterations, 50);
    assert_eq!(st.raw_bytes, 50 * 2 * 2 * 2048);
    assert!(st.encodes >= 50 * 2, "{st:?}");
    assert!(
        st.scratch_grows <= 4,
        "steady-state codec path must not grow scratch: {st:?}"
    );
    // Durability ran off the hot path: flushes were requested per stored
    // iteration and the background flusher fsynced at least once (a
    // backlog coalesces, so syncs ≤ requests).
    assert_eq!(st.flush_requests, 50);
    assert!(st.syncs >= 1 && st.syncs <= st.flush_requests, "{st:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The double-buffered staging hand-off (§IV.D overlap): the dedicated
/// core's event path pays only the hand-off into the engine thread, not
/// the encode + append themselves — provable from the per-stage timings
/// the engine keeps. `drain_ns` (what `on_iteration` spent submitting,
/// including any one-in-flight backpressure) must stay below the
/// encode + append time it overlapped with.
#[test]
fn store_event_path_pays_handoff_not_encode() {
    let dir = tmpdir("overlap");
    let (report, storage) = run_store_sim(store_config(&dir), 40);
    assert_eq!(report.iterations_completed, 40);

    let st = storage.stats();
    // All three pipeline stages really ran and were timed.
    assert!(st.drain_ns > 0, "hand-off was timed: {st:?}");
    assert!(st.encode_ns > 0, "encode stage was timed: {st:?}");
    assert!(st.append_ns > 0, "append stage was timed: {st:?}");
    assert!(st.sync_ns > 0, "background fsync was timed: {st:?}");
    // The event path handed off instead of encoding: across 40
    // iterations the submit side spent less time than the engine
    // thread's encode + append it overlapped with.
    assert!(
        st.drain_ns < st.encode_ns + st.append_ns,
        "hand-off cost exceeds the work it overlaps: {st:?}"
    );
    // The encode stage reports its worker pool (1 = inline on small
    // hosts) and its busy time.
    assert!(st.workers >= 1, "{st:?}");
    assert!(st.worker_busy_ns > 0, "{st:?}");
    let frac = st.worker_busy_frac();
    assert!(
        frac > 0.0 && frac <= 1.0 + f64::EPSILON,
        "busy fraction {frac} out of range: {st:?}"
    );

    // Overlap must not change what lands on disk.
    let mut r = h5lite::FileReader::open(storage.file_path()).unwrap();
    assert_eq!(r.read_pod::<f64>("it000039/u/rank1").unwrap(), field(1, 39));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_launch_auto_registers_the_storage_pipeline() {
    let dir = tmpdir("auto");
    let cfg = store_config(&dir);
    let report = Damaris::launch(cfg, "unused-for-threads", &[], |h, _| {
        for it in 0..3u64 {
            h.write("u", it, &field(h.id(), it)).unwrap();
            h.write("v", it, &field(h.id(), it)).unwrap();
            h.end_iteration(it).unwrap();
        }
        h.finalize().unwrap();
        Vec::new()
    })
    .expect("launch with <store> runs");
    assert_eq!(report.iterations_completed, 3);
    let path = dir.join("stepsim_node0.dh5");
    assert!(path.exists(), "auto-registered pipeline wrote {path:?}");
    let mut r = h5lite::FileReader::open(&path).unwrap();
    assert_eq!(
        r.read_pod::<f64>("it000002/u/rank0").unwrap(),
        field(0, 2),
        "auto-registered pipeline round-trips"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_codec_spec_fails_at_config_load() {
    let xml = r#"<simulation name="bad">
         <data>
           <layout name="l" type="f64" dimensions="8"/>
           <variable name="u" layout="l" codec="rle,warp-drive"/>
         </data>
       </simulation>"#;
    let err = Configuration::from_str(xml).expect_err("unknown codec stage rejected at load");
    let msg = err.to_string();
    assert!(msg.contains("invalid codec pipeline"), "{msg}");
    assert!(msg.contains("warp-drive"), "names the bad stage: {msg}");
}
