//! Property tests for the proxy applications: stability and determinism
//! across arbitrary (small) configurations.

use proptest::prelude::*;
use sim_apps::{Cm1, Cm1Config, Nek, NekConfig, ProxyApp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CM1 stays finite and bounded for any small grid and seed.
    #[test]
    fn cm1_stays_finite(
        nx in 4usize..20,
        ny in 4usize..20,
        nz in 4usize..12,
        seed in any::<u64>(),
        steps in 1usize..12,
    ) {
        let mut sim = Cm1::new(Cm1Config { nx, ny, nz, seed, ..Default::default() });
        for _ in 0..steps {
            sim.step();
        }
        for (name, field) in sim.fields() {
            prop_assert_eq!(field.len(), nx * ny * nz);
            for &v in field {
                prop_assert!(v.is_finite(), "{} went non-finite", name);
            }
        }
        let theta = sim.field("theta").expect("theta exists");
        let max = theta.iter().cloned().fold(f64::MIN, f64::max);
        let min = theta.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(max < 320.0 && min > 280.0, "theta escaped [{min}, {max}]");
    }

    /// CM1 is a pure function of (config, steps).
    #[test]
    fn cm1_deterministic(seed in any::<u64>(), steps in 1usize..6) {
        let mk = || {
            let mut sim = Cm1::new(Cm1Config { nx: 10, ny: 10, nz: 6, seed, ..Default::default() });
            for _ in 0..steps {
                sim.step();
            }
            sim.field("w").expect("w").to_vec()
        };
        prop_assert_eq!(mk(), mk());
    }

    /// Nek stays finite; the averaging operator never expands the range.
    #[test]
    fn nek_stays_finite_and_contractive(
        elements in 1usize..12,
        order in 2usize..8,
        seed in any::<u64>(),
        steps in 1usize..10,
    ) {
        let mut sim = Nek::new(NekConfig { elements, order, seed, viscosity: 0.0 });
        let range = |f: &[f64]| {
            let max = f.iter().cloned().fold(f64::MIN, f64::max);
            let min = f.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let before = range(sim.values());
        for _ in 0..steps {
            sim.step();
        }
        prop_assert!(sim.values().iter().all(|v| v.is_finite()));
        // With zero forcing the smoothing operator is non-expansive.
        prop_assert!(range(sim.values()) <= before + 1e-9);
        prop_assert_eq!(sim.iteration(), steps as u64);
    }

    /// bytes_per_dump agrees with the actual field sizes for both proxies.
    #[test]
    fn dump_size_accounting(elements in 1usize..8, order in 2usize..6) {
        let nek = Nek::new(NekConfig { elements, order, ..Default::default() });
        let total: usize = nek.fields().iter().map(|(_, v)| v.len() * 8).sum();
        prop_assert_eq!(nek.bytes_per_dump(), total);

        let cm1 = Cm1::new(Cm1Config { nx: 8, ny: 8, nz: 4, ..Default::default() });
        let total: usize = cm1.fields().iter().map(|(_, v)| v.len() * 8).sum();
        prop_assert_eq!(cm1.bytes_per_dump(), total);
    }
}

proptest! {
    /// The generated Damaris configuration parses, interns every field in
    /// declaration order, and its registry's layout sizes seed the
    /// size-class allocator with exactly the proxy's block sizes.
    #[test]
    fn damaris_config_matches_fields(elements in 1usize..6, order in 2usize..6) {
        let nek = Nek::new(NekConfig { elements, order, ..Default::default() });
        let xml = nek.damaris_config(1, 64 << 20);
        let cfg = damaris_xml::schema::Configuration::from_str(&xml).unwrap();
        prop_assert_eq!(
            cfg.architecture.allocator,
            damaris_xml::schema::AllocatorKind::SizeClass
        );
        prop_assert_eq!(cfg.variables.len(), nek.fields().len());
        let mut total = 0usize;
        for (name, values) in nek.fields() {
            let id = cfg.registry().var_id(name).unwrap();
            prop_assert_eq!(cfg.registry().byte_size(id), values.len() * 8);
            total += values.len() * 8;
        }
        prop_assert_eq!(total, nek.bytes_per_dump());
        let classes = cfg.registry().distinct_byte_sizes();
        prop_assert!(!classes.is_empty());
    }
}
