//! CM1-like atmospheric proxy: warm bubble in a stably stratified box.
//!
//! Fields (per rank, all `nx × ny × nz`, C order with `x` fastest):
//! `u`, `v`, `w` (wind components, m/s), `theta` (potential temperature,
//! K), `qv` (water-vapor mixing ratio, kg/kg).
//!
//! Dynamics (deliberately simple but structurally faithful):
//! * advection of scalars by the wind (first-order upwind),
//! * diffusion of everything (explicit 7-point Laplacian),
//! * buoyancy: vertical wind accelerates where `theta` exceeds the base
//!   state (Boussinesq-style `w̄ += g·θ'/θ₀`),
//! * periodic lateral boundaries, rigid lid and floor.
//!
//! The per-step flop count is a fixed function of the grid, reproducing
//! CM1's hallmark predictability. Stencil sweeps parallelize over
//! `z`-slabs with rayon — the compute phase really does use all of the
//! node's compute cores, which is what the dedicated core steals one from.

use rayon::prelude::*;

use crate::ProxyApp;

/// Configuration of one rank's subdomain.
#[derive(Debug, Clone, PartialEq)]
pub struct Cm1Config {
    /// Grid points in x.
    pub nx: usize,
    /// Grid points in y.
    pub ny: usize,
    /// Grid points in z.
    pub nz: usize,
    /// Time step (s).
    pub dt: f64,
    /// Grid spacing (m).
    pub dx: f64,
    /// Kinematic diffusivity (m²/s).
    pub diffusivity: f64,
    /// Base-state potential temperature (K).
    pub theta0: f64,
    /// Initial bubble amplitude (K).
    pub bubble_amplitude: f64,
    /// Deterministic seed perturbing the bubble position per rank.
    pub seed: u64,
}

impl Default for Cm1Config {
    fn default() -> Self {
        Cm1Config {
            nx: 32,
            ny: 32,
            nz: 16,
            dt: 1.0,
            dx: 100.0,
            diffusivity: 8.0,
            theta0: 300.0,
            bubble_amplitude: 2.0,
            seed: 0,
        }
    }
}

impl Cm1Config {
    /// A configuration sized so one rank dumps ≈ `mib` MiB per output
    /// (5 fields of f64), the knob the weak-scaling experiments use.
    pub fn with_dump_size_mib(mib: usize) -> Self {
        // 5 fields × 8 bytes = 40 bytes per grid point.
        let points = mib * (1 << 20) / 40;
        // Factor into a boxy grid: nz = 16, nx = ny = sqrt(points / 16).
        let nz = 16usize;
        let side = ((points / nz) as f64).sqrt().max(4.0) as usize;
        Cm1Config {
            nx: side,
            ny: side,
            nz,
            ..Default::default()
        }
    }
}

/// One rank's CM1-like state.
pub struct Cm1 {
    cfg: Cm1Config,
    iteration: u64,
    u: Vec<f64>,
    v: Vec<f64>,
    w: Vec<f64>,
    theta: Vec<f64>,
    qv: Vec<f64>,
    // Scratch buffers (double buffering without reallocation).
    scratch: Vec<f64>,
}

impl Cm1 {
    /// Initialize the warm-bubble case.
    pub fn new(cfg: Cm1Config) -> Self {
        let n = cfg.nx * cfg.ny * cfg.nz;
        assert!(n > 0, "grid must be non-empty");
        let mut theta = vec![cfg.theta0; n];
        let qv = vec![0.0; n];
        // Bubble center, nudged deterministically by the seed so different
        // ranks simulate slightly different subvolumes.
        let jitter = |s: u64, m: usize| ((s.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize) % m;
        let cx = cfg.nx / 2 + jitter(cfg.seed, (cfg.nx / 8).max(1));
        let cy = cfg.ny / 2 + jitter(cfg.seed.wrapping_add(1), (cfg.ny / 8).max(1));
        let cz = cfg.nz / 3;
        // Amplitude perturbation guarantees distinct seeds diverge even on
        // grids too small for the positional jitter to move the bubble.
        let amplitude = cfg.bubble_amplitude
            * (1.0 + (cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) >> 52) as f64 * 1e-4);
        let radius = (cfg.nx.min(cfg.ny).min(cfg.nz) as f64) / 4.0;
        for k in 0..cfg.nz {
            for j in 0..cfg.ny {
                for i in 0..cfg.nx {
                    let dx = i as f64 - cx as f64;
                    let dy = j as f64 - cy as f64;
                    let dz = k as f64 - cz as f64;
                    let r = (dx * dx + dy * dy + dz * dz).sqrt() / radius;
                    if r < 1.0 {
                        let idx = (k * cfg.ny + j) * cfg.nx + i;
                        theta[idx] += amplitude * (std::f64::consts::PI * r).cos().powi(2);
                        // Moisture rides along with the bubble (set below).
                    }
                }
            }
        }
        let mut qv = qv;
        for (q, &t) in qv.iter_mut().zip(&theta) {
            if t > cfg.theta0 + 0.1 {
                *q = 1e-3 * (t - cfg.theta0);
            }
        }
        Cm1 {
            iteration: 0,
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
            theta,
            qv,
            scratch: vec![0.0; n],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Cm1Config {
        &self.cfg
    }

    /// Immutable view of a field by name (test hook).
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        match name {
            "u" => Some(&self.u),
            "v" => Some(&self.v),
            "w" => Some(&self.w),
            "theta" => Some(&self.theta),
            "qv" => Some(&self.qv),
            _ => None,
        }
    }

    /// Volume sum of `theta` (conservation diagnostic).
    pub fn theta_sum(&self) -> f64 {
        self.theta.iter().sum()
    }

    /// Laplacian-diffuse + upwind-advect `field` into `out`.
    fn transport(&self, field: &[f64], out: &mut [f64]) {
        let (nx, ny, nz) = (self.cfg.nx, self.cfg.ny, self.cfg.nz);
        let k_diff = self.cfg.diffusivity * self.cfg.dt / (self.cfg.dx * self.cfg.dx);
        let c_adv = self.cfg.dt / self.cfg.dx;
        let u = &self.u;
        let v = &self.v;
        let w = &self.w;
        let plane = nx * ny;
        out.par_chunks_mut(plane).enumerate().for_each(|(k, slab)| {
            for j in 0..ny {
                for i in 0..nx {
                    let idx = (k * ny + j) * nx + i;
                    let ip = (i + 1) % nx;
                    let im = (i + nx - 1) % nx;
                    let jp = (j + 1) % ny;
                    let jm = (j + ny - 1) % ny;
                    let kp = (k + 1).min(nz - 1);
                    let km = k.saturating_sub(1);
                    let at = |ii: usize, jj: usize, kk: usize| field[(kk * ny + jj) * nx + ii];
                    let here = field[idx];
                    // 7-point Laplacian.
                    let lap = at(ip, j, k)
                        + at(im, j, k)
                        + at(i, jp, k)
                        + at(i, jm, k)
                        + at(i, j, kp)
                        + at(i, j, km)
                        - 6.0 * here;
                    // First-order upwind advection.
                    let du = if u[idx] >= 0.0 {
                        here - at(im, j, k)
                    } else {
                        at(ip, j, k) - here
                    };
                    let dv = if v[idx] >= 0.0 {
                        here - at(i, jm, k)
                    } else {
                        at(i, jp, k) - here
                    };
                    let dw = if w[idx] >= 0.0 {
                        here - at(i, j, km)
                    } else {
                        at(i, j, kp) - here
                    };
                    slab[j * nx + i] =
                        here + k_diff * lap - c_adv * (u[idx] * du + v[idx] * dv + w[idx] * dw);
                }
            }
        });
    }
}

impl ProxyApp for Cm1 {
    fn step(&mut self) {
        const G: f64 = 9.81;
        // 1. Buoyancy accelerates vertical wind where theta' > 0.
        let theta0 = self.cfg.theta0;
        let dt = self.cfg.dt;
        self.w
            .par_iter_mut()
            .zip(self.theta.par_iter())
            .for_each(|(w, &t)| {
                *w += dt * G * (t - theta0) / theta0;
                // Crude drag keeps the explicit scheme stable.
                *w *= 0.995;
            });
        // 2. Transport each prognostic field.
        let mut scratch = std::mem::take(&mut self.scratch);
        for field_id in 0..5 {
            {
                let field: &[f64] = match field_id {
                    0 => &self.theta,
                    1 => &self.qv,
                    2 => &self.u,
                    3 => &self.v,
                    _ => &self.w,
                };
                self.transport(field, &mut scratch);
            }
            let field: &mut Vec<f64> = match field_id {
                0 => &mut self.theta,
                1 => &mut self.qv,
                2 => &mut self.u,
                3 => &mut self.v,
                _ => &mut self.w,
            };
            std::mem::swap(field, &mut scratch);
        }
        self.scratch = scratch;
        self.iteration += 1;
    }

    fn iteration(&self) -> u64 {
        self.iteration
    }

    fn fields(&self) -> Vec<(&'static str, &[f64])> {
        vec![
            ("u", self.u.as_slice()),
            ("v", self.v.as_slice()),
            ("w", self.w.as_slice()),
            ("theta", self.theta.as_slice()),
            ("qv", self.qv.as_slice()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cm1 {
        Cm1::new(Cm1Config {
            nx: 16,
            ny: 16,
            nz: 12,
            ..Default::default()
        })
    }

    #[test]
    fn initial_state_has_bubble() {
        let sim = small();
        let theta = sim.field("theta").unwrap();
        let max = theta.iter().cloned().fold(f64::MIN, f64::max);
        let min = theta.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(min, 300.0, "base state intact away from the bubble");
        assert!(max > 301.0, "bubble present: max {max}");
        // Most of the domain is exactly base state (compression regime).
        let base = theta.iter().filter(|&&t| t == 300.0).count();
        assert!(base * 2 > theta.len(), "majority base state");
    }

    #[test]
    fn bubble_rises() {
        let mut sim = small();
        for _ in 0..10 {
            sim.step();
        }
        let w = sim.field("w").unwrap();
        let max_w = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max_w > 0.0,
            "warm bubble must induce updraft, max w = {max_w}"
        );
        assert_eq!(sim.iteration(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = Cm1::new(Cm1Config {
                nx: 12,
                ny: 12,
                nz: 8,
                seed,
                ..Default::default()
            });
            for _ in 0..5 {
                sim.step();
            }
            sim.field("theta").unwrap().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds move the bubble");
    }

    #[test]
    fn theta_approximately_conserved() {
        let mut sim = small();
        let before = sim.theta_sum();
        for _ in 0..20 {
            sim.step();
        }
        let after = sim.theta_sum();
        let drift = (after - before).abs() / before;
        assert!(drift < 0.01, "theta drifted {:.4} %", drift * 100.0);
    }

    #[test]
    fn values_stay_finite_and_bounded() {
        let mut sim = small();
        for _ in 0..50 {
            sim.step();
        }
        for (name, field) in sim.fields() {
            for &v in field {
                assert!(v.is_finite(), "{name} went non-finite");
            }
        }
        let theta = sim.field("theta").unwrap();
        let max = theta.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 310.0, "theta blew up: {max}");
    }

    #[test]
    fn dump_size_knob() {
        let cfg = Cm1Config::with_dump_size_mib(2);
        let sim = Cm1::new(cfg);
        let bytes = sim.bytes_per_dump();
        let target = 2 << 20;
        assert!(
            (bytes as f64 / target as f64 - 1.0).abs() < 0.3,
            "dump {} vs target {}",
            bytes,
            target
        );
        assert_eq!(sim.fields().len(), 5);
    }

    #[test]
    fn field_lookup() {
        let sim = small();
        assert!(sim.field("theta").is_some());
        assert!(sim.field("pressure").is_none());
    }
}
