//! Nek5000-like spectral-element proxy.
//!
//! Nek5000 advances Navier-Stokes on hexahedral spectral elements; the hot
//! kernel is the tensor contraction applying the 1-D GLL derivative matrix
//! `D (p×p)` along each direction of every element's `p³` point grid. The
//! proxy keeps exactly that cost structure: per step, for each element,
//! three `p×p × p³` contractions plus an axpy — and produces a smooth
//! velocity-magnitude field suitable for in-situ isosurfacing (§V.C).

use rayon::prelude::*;

use crate::ProxyApp;

/// Configuration of one rank's element block.
#[derive(Debug, Clone, PartialEq)]
pub struct NekConfig {
    /// Number of spectral elements on this rank.
    pub elements: usize,
    /// Polynomial order + 1 (GLL points per direction).
    pub order: usize,
    /// Pseudo-viscosity controlling the decay rate.
    pub viscosity: f64,
    /// Deterministic seed for the initial condition.
    pub seed: u64,
}

impl Default for NekConfig {
    fn default() -> Self {
        NekConfig {
            elements: 64,
            order: 8,
            viscosity: 1e-3,
            seed: 0,
        }
    }
}

/// One rank's spectral-element state: a scalar velocity-magnitude field of
/// `elements × order³` points.
pub struct Nek {
    cfg: NekConfig,
    iteration: u64,
    /// Per-element point data, `elements × p³`, element-major.
    field: Vec<f64>,
    /// The 1-D derivative-like operator (p × p), row-major.
    op: Vec<f64>,
    scratch: Vec<f64>,
}

impl Nek {
    /// Initialize with a smooth deterministic field.
    pub fn new(cfg: NekConfig) -> Self {
        assert!(cfg.order >= 2, "need at least 2 GLL points");
        assert!(cfg.elements > 0, "need at least one element");
        let p = cfg.order;
        let n = cfg.elements * p * p * p;
        let mut field = vec![0.0; n];
        // Smooth initial condition: per-element standing wave with a
        // seed/element dependent phase.
        for e in 0..cfg.elements {
            let phase = ((cfg.seed.wrapping_add(e as u64)).wrapping_mul(0x9e3779b97f4a7c15) >> 40)
                as f64
                / 1e4;
            for k in 0..p {
                for j in 0..p {
                    for i in 0..p {
                        let x = i as f64 / (p - 1) as f64;
                        let y = j as f64 / (p - 1) as f64;
                        let z = k as f64 / (p - 1) as f64;
                        field[((e * p + k) * p + j) * p + i] = 1.0
                            + 0.5
                                * (std::f64::consts::PI * (x + phase)).sin()
                                * (std::f64::consts::PI * y).cos()
                                * (std::f64::consts::PI * z).sin();
                    }
                }
            }
        }
        // A smoothing operator: tridiagonal averaging matrix (stable).
        let mut op = vec![0.0; p * p];
        for r in 0..p {
            op[r * p + r] = 0.9;
            if r > 0 {
                op[r * p + r - 1] = 0.05;
            }
            if r + 1 < p {
                op[r * p + r + 1] = 0.05;
            }
            // Boundary rows renormalized to keep the row sum at 1.
            if r == 0 || r == p - 1 {
                op[r * p + r] = 0.95;
            }
        }
        Nek {
            iteration: 0,
            scratch: vec![0.0; n],
            field,
            op,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NekConfig {
        &self.cfg
    }

    /// The scalar field (element-major).
    pub fn values(&self) -> &[f64] {
        &self.field
    }

    /// Apply the operator along direction `dir` (0 = i, 1 = j, 2 = k) for
    /// every element: the classic spectral-element tensor contraction.
    fn apply_tensor(&mut self, dir: usize) {
        let p = self.cfg.order;
        let op = &self.op;
        let pe = p * p * p;
        self.scratch
            .par_chunks_mut(pe)
            .zip(self.field.par_chunks(pe))
            .for_each(|(out, elem)| {
                for k in 0..p {
                    for j in 0..p {
                        for i in 0..p {
                            let mut acc = 0.0;
                            for m in 0..p {
                                let src = match dir {
                                    0 => (k * p + j) * p + m,
                                    1 => (k * p + m) * p + i,
                                    _ => (m * p + j) * p + i,
                                };
                                let row = match dir {
                                    0 => i,
                                    1 => j,
                                    _ => k,
                                };
                                acc += op[row * p + m] * elem[src];
                            }
                            out[(k * p + j) * p + i] = acc;
                        }
                    }
                }
            });
        std::mem::swap(&mut self.field, &mut self.scratch);
    }
}

impl ProxyApp for Nek {
    fn step(&mut self) {
        for dir in 0..3 {
            self.apply_tensor(dir);
        }
        // Mild forcing keeps the field from flattening completely.
        let nu = self.cfg.viscosity;
        let it = self.iteration as f64;
        self.field.par_iter_mut().enumerate().for_each(|(i, v)| {
            *v += nu * ((i % 97) as f64 * 0.01 + it * 0.001).sin();
        });
        self.iteration += 1;
    }

    fn iteration(&self) -> u64 {
        self.iteration
    }

    fn fields(&self) -> Vec<(&'static str, &[f64])> {
        vec![("velocity_magnitude", self.field.as_slice())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Nek {
        Nek::new(NekConfig {
            elements: 8,
            order: 6,
            ..Default::default()
        })
    }

    #[test]
    fn sizes_and_fields() {
        let sim = small();
        assert_eq!(sim.values().len(), 8 * 6 * 6 * 6);
        assert_eq!(sim.fields().len(), 1);
        assert_eq!(sim.bytes_per_dump(), 8 * 6 * 6 * 6 * 8);
    }

    #[test]
    fn smoothing_contracts_the_range() {
        let mut sim = small();
        let range = |f: &[f64]| {
            let max = f.iter().cloned().fold(f64::MIN, f64::max);
            let min = f.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let before = range(sim.values());
        for _ in 0..20 {
            sim.step();
        }
        let after = range(sim.values());
        assert!(
            after < before,
            "averaging operator must contract: {after} vs {before}"
        );
        assert!(after > 0.0, "forcing keeps structure alive");
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut sim = Nek::new(NekConfig {
                elements: 4,
                order: 5,
                seed,
                ..Default::default()
            });
            for _ in 0..3 {
                sim.step();
            }
            sim.values().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn values_stay_finite() {
        let mut sim = small();
        for _ in 0..100 {
            sim.step();
        }
        assert!(sim.values().iter().all(|v| v.is_finite()));
        assert_eq!(sim.iteration(), 100);
    }

    #[test]
    fn config_validation() {
        let r = std::panic::catch_unwind(|| {
            Nek::new(NekConfig {
                order: 1,
                ..Default::default()
            })
        });
        assert!(r.is_err());
    }
}
