//! # sim-apps
//!
//! Proxy versions of the two HPC applications the Damaris paper evaluates
//! with:
//!
//! * [`Cm1`] — the CM1 atmospheric model (Bryan & Fritsch 2002), the
//!   target application of the §IV I/O experiments: a 3-D moist
//!   non-hydrostatic grid with wind, potential temperature and water-vapor
//!   fields, advanced by an explicit advection–diffusion step with a warm
//!   buoyant bubble. CM1's key property for the paper is its *extremely
//!   predictable* compute phase ("the computation phases in CM1 have an
//!   extremely predictable run time", §IV.B) — so any run-time variability
//!   comes from I/O. The proxy keeps that property: cost is a pure
//!   function of the grid size.
//! * [`Nek`] — the Nek5000 CFD solver (§V.C's in-situ platform): a
//!   spectral-element kernel whose per-step cost is dominated by small
//!   dense tensor contractions over Gauss-Lobatto-Legendre (GLL) points.
//!
//! Both produce output fields in the regime the paper's results live in:
//! large coherent regions (base state) plus localized smooth structure —
//! which is what makes the 600 % compression ratio (§IV.D) achievable.
//!
//! Both implement [`ProxyApp`] so harness code can drive either.

pub mod cm1;
pub mod nek;

pub use cm1::{Cm1, Cm1Config};
pub use nek::{Nek, NekConfig};

/// A steppable simulation proxy exposing named output fields.
pub trait ProxyApp {
    /// Advance one simulation time step (the compute phase).
    fn step(&mut self);

    /// Steps completed so far.
    fn iteration(&self) -> u64;

    /// Output fields as `(name, values)` pairs, ready to hand to Damaris.
    fn fields(&self) -> Vec<(&'static str, &[f64])>;

    /// Bytes one output dump of this rank produces.
    fn bytes_per_dump(&self) -> usize {
        self.fields().iter().map(|(_, v)| v.len() * 8).sum()
    }

    /// The Damaris XML configuration matching this proxy's output fields:
    /// one `f64` layout per field, sized from the current state, with the
    /// zero-allocation defaults (sharded event transport; the size-class
    /// allocator is seeded from exactly these layout sizes). Deriving the
    /// configuration from the proxy keeps instrumented examples and the
    /// declared layouts from drifting apart.
    fn damaris_config(&self, dedicated_cores: usize, buffer_size: usize) -> String {
        let mut data = String::new();
        for (name, values) in self.fields() {
            data.push_str(&format!(
                r#"<layout name="{name}_l" type="f64" dimensions="{}"/><variable name="{name}" layout="{name}_l"/>"#,
                values.len()
            ));
        }
        format!(
            r#"<simulation name="proxy-app">
                 <architecture>
                   <dedicated cores="{dedicated_cores}"/>
                   <buffer size="{buffer_size}" allocator="size-class"/>
                   <queue capacity="1024" kind="sharded"/>
                 </architecture>
                 <data>{data}</data>
               </simulation>"#
        )
    }
}
