//! Property tests: parse ∘ serialize is a fixpoint for arbitrary trees, and
//! arbitrary text/attribute content survives escaping.

use damaris_xml::{parse, Element};
use proptest::prelude::*;

/// Strategy for XML names (subset accepted by the parser).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,11}"
}

/// Strategy for attribute values / text content including characters that
/// require escaping. Excludes control characters and carriage returns, which
/// XML 1.0 normalizes.
fn content_strategy() -> impl Strategy<Value = String> {
    "[ -~&&[^\r]]{0,24}".prop_map(|s| s.replace('\r', " "))
}

/// Recursive element strategy, bounded depth and fanout.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), content_strategy()), 0..4),
    )
        .prop_map(|(name, raw_attrs)| {
            let mut el = Element::new(name);
            for (k, v) in raw_attrs {
                if el.attr(&k).is_none() {
                    el.attributes.push((k, v));
                }
            }
            el
        });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), content_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
            proptest::option::of(content_strategy()),
        )
            .prop_map(|(name, raw_attrs, children, text)| {
                let mut el = Element::new(name);
                for (k, v) in raw_attrs {
                    if el.attr(&k).is_none() {
                        el.attributes.push((k, v));
                    }
                }
                // A single optional text child first (mixed content with
                // whitespace-only text does not round-trip by design).
                if let Some(t) = text {
                    let t = t.trim().to_string();
                    if !t.is_empty() && children.is_empty() {
                        el = el.with_text(t);
                    }
                }
                for c in children {
                    el = el.with_child(c);
                }
                el
            })
    })
}

proptest! {
    #[test]
    fn serialize_then_parse_is_identity(el in element_strategy()) {
        let xml = el.to_xml();
        let doc = parse(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        // Text nodes are trimmed by the serializer for non-inline content;
        // compare against a normalized version of the original.
        prop_assert_eq!(doc.root, el);
    }

    #[test]
    fn attribute_values_roundtrip(v in content_strategy()) {
        let el = Element::new("a").with_attr("v", v.clone());
        let doc = parse(&el.to_xml()).unwrap();
        prop_assert_eq!(doc.root.attr("v"), Some(v.as_str()));
    }

    #[test]
    fn text_content_roundtrips(t in content_strategy()) {
        prop_assume!(!t.trim().is_empty());
        let el = Element::new("a").with_text(t.trim().to_string());
        let doc = parse(&el.to_xml()).unwrap();
        prop_assert_eq!(doc.root.text(), t.trim());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }
}

/// Strategy for a set of distinct variable names (optionally grouped).
fn var_names_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z][a-z0-9_]{0,9}", 1..12).prop_map(|mut names| {
        names.sort();
        names.dedup();
        names
    })
}

proptest! {
    /// VarId interning survives an XML serialize → parse round trip: every
    /// variable resolves to the same dense id with the same precomputed
    /// layout size, for arbitrary variable sets.
    #[test]
    fn var_id_interning_roundtrips_through_serializer(
        names in var_names_strategy(),
        dims in proptest::collection::vec(1usize..64, 1..3),
    ) {
        let dims_attr = dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let vars = names
            .iter()
            .map(|n| format!(r#"<variable name="{n}" layout="l"/>"#))
            .collect::<String>();
        let xml = format!(
            r#"<simulation name="p">
                 <data>
                   <layout name="l" type="f64" dimensions="{dims_attr}"/>
                   {vars}
                 </data>
               </simulation>"#
        );
        let cfg = damaris_xml::schema::Configuration::from_str(&xml).unwrap();
        let cfg2 = damaris_xml::schema::Configuration::from_str(&cfg.to_xml()).unwrap();
        prop_assert_eq!(cfg.registry(), cfg2.registry());
        let byte_size: usize = dims.iter().product::<usize>() * 8;
        for (i, name) in names.iter().enumerate() {
            let id = cfg.registry().var_id(name).unwrap();
            prop_assert_eq!(id.index(), i, "dense, declaration-ordered");
            prop_assert_eq!(cfg2.registry().var_id(name), Some(id));
            prop_assert_eq!(cfg2.registry().byte_size(id), byte_size);
            prop_assert_eq!(cfg2.var_name(id), name.as_str());
        }
        prop_assert!(cfg.registry().var_id("not-a-variable").is_none());
    }
}
