//! Typed Damaris configuration schema.
//!
//! The paper (§III.A) bases all data management on "a high level description
//! of the data, coming from an external XML file in a way similar to ADIOS":
//! variables, their relationships (dimension scales, meshes, layouts) and the
//! configuration of the plugins that make up the data-management service.
//! This module is that description, loaded into plain Rust types.
//!
//! A full configuration looks like:
//!
//! ```xml
//! <simulation name="cm1">
//!   <architecture>
//!     <dedicated cores="1"/>
//!     <buffer size="67108864"/>
//!     <queue capacity="256"/>
//!     <skip mode="drop-iteration" high-watermark="0.8"/>
//!   </architecture>
//!   <data>
//!     <parameter name="nx" value="64"/>
//!     <parameter name="ny" value="64"/>
//!     <parameter name="nz" value="32"/>
//!     <layout name="grid3d" type="f32" dimensions="nx,ny,nz"/>
//!     <mesh name="atmosphere" type="rectilinear">
//!       <coord name="x" unit="m"/>
//!       <coord name="y" unit="m"/>
//!       <coord name="z" unit="m"/>
//!     </mesh>
//!     <variable name="u" layout="grid3d" mesh="atmosphere" unit="m/s"/>
//!     <group name="moisture">
//!       <variable name="qv" layout="grid3d" mesh="atmosphere"/>
//!     </group>
//!   </data>
//!   <actions>
//!     <action name="dump" plugin="hdf5" event="end-of-iteration" frequency="1"/>
//!     <action name="pack" plugin="compress" event="end-of-iteration">
//!       <param name="pipeline" value="xor-delta,rle"/>
//!     </action>
//!   </actions>
//! </simulation>
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{XmlError, XmlResult};
use crate::registry::{VarId, VarRegistry};
use crate::tree::Element;

/// Element type of a variable's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ElemType {
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    F32,
    F64,
}

impl ElemType {
    /// Size in bytes of one element.
    pub fn size_bytes(self) -> usize {
        match self {
            ElemType::I8 | ElemType::U8 => 1,
            ElemType::I16 | ElemType::U16 => 2,
            ElemType::I32 | ElemType::U32 | ElemType::F32 => 4,
            ElemType::I64 | ElemType::U64 | ElemType::F64 => 8,
        }
    }

    /// Parse the `type="…"` attribute.
    pub fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "i8" | "char" => ElemType::I8,
            "i16" | "short" => ElemType::I16,
            "i32" | "int" | "integer" => ElemType::I32,
            "i64" | "long" => ElemType::I64,
            "u8" => ElemType::U8,
            "u16" => ElemType::U16,
            "u32" => ElemType::U32,
            "u64" => ElemType::U64,
            "f32" | "float" | "real" => ElemType::F32,
            "f64" | "double" => ElemType::F64,
            other => return Err(XmlError::schema(format!("unknown element type '{other}'"))),
        })
    }

    /// Canonical name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            ElemType::I8 => "i8",
            ElemType::I16 => "i16",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
            ElemType::U8 => "u8",
            ElemType::U16 => "u16",
            ElemType::U32 => "u32",
            ElemType::U64 => "u64",
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named memory layout: element type plus dimensions.
///
/// Dimension expressions may reference `<parameter>` values by name; they are
/// resolved at load time so consumers always see concrete extents.
///
/// A layout may instead be **dynamic** (`dimensions="dynamic"`): its
/// variables carry a caller-supplied extent on every write — the AMR
/// shape, where block sizes change per iteration and per rank. Dynamic
/// layouts have no fixed byte size ([`Layout::byte_size`] reports 0); an
/// optional `max_size="…"` attribute bounds one block in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Layout name referenced by variables.
    pub name: String,
    /// Element type of the block.
    pub elem_type: ElemType,
    /// Concrete extents, slowest-varying first (C order). Empty for
    /// dynamic layouts (extents arrive per write).
    pub dimensions: Vec<usize>,
    /// Upper bound on one block, in bytes (`max_size="…"`); only
    /// meaningful on dynamic layouts. `None` = bounded by the buffer.
    pub max_bytes: Option<usize>,
}

impl Layout {
    /// Whether extents are caller-supplied per write instead of fixed
    /// (`dimensions="dynamic"`).
    pub fn is_dynamic(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Number of elements in one block of this layout (0 for dynamic
    /// layouts — the count arrives with each write).
    pub fn element_count(&self) -> usize {
        if self.is_dynamic() {
            0
        } else {
            self.dimensions.iter().product()
        }
    }

    /// Number of bytes in one block of this layout (0 for dynamic
    /// layouts).
    pub fn byte_size(&self) -> usize {
        self.element_count() * self.elem_type.size_bytes()
    }

    /// The largest block one write of this layout may occupy, in bytes:
    /// the fixed size, or `max_size` for dynamic layouts (`None` when a
    /// dynamic layout declares no bound).
    pub fn max_byte_size(&self) -> Option<usize> {
        if self.is_dynamic() {
            self.max_bytes
        } else {
            Some(self.byte_size())
        }
    }
}

/// Mesh topology kinds understood by downstream visualization plugins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshType {
    /// Axis-aligned, per-axis coordinate arrays.
    Rectilinear,
    /// Explicit per-node coordinates.
    Curvilinear,
    /// Point cloud.
    Points,
}

impl MeshType {
    fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "rectilinear" => MeshType::Rectilinear,
            "curvilinear" => MeshType::Curvilinear,
            "points" => MeshType::Points,
            other => return Err(XmlError::schema(format!("unknown mesh type '{other}'"))),
        })
    }
}

/// A coordinate axis of a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coord {
    /// Axis name (`x`, `y`, …).
    pub name: String,
    /// Physical unit, if declared.
    pub unit: Option<String>,
}

/// A mesh that variables may attach to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    /// Mesh name referenced by variables.
    pub name: String,
    /// Topology kind.
    pub mesh_type: MeshType,
    /// Coordinate axes in declaration order.
    pub coords: Vec<Coord>,
}

/// Where a variable's values live relative to mesh cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Centering {
    /// One value per mesh node (default).
    #[default]
    Nodal,
    /// One value per mesh cell.
    Zonal,
}

/// A simulation variable shared with the dedicated cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Fully qualified name (`group/name` when declared inside a group).
    pub name: String,
    /// Name of the layout describing one block of this variable.
    pub layout: String,
    /// Optional mesh the variable is defined on.
    pub mesh: Option<String>,
    /// Optional physical unit.
    pub unit: Option<String>,
    /// Value centering on the mesh.
    pub centering: Centering,
    /// Whether this variable is stored by the HDF5 plugin (default true).
    pub store: bool,
    /// Compression pipeline spec for storage plugins
    /// (`codec="xor-delta8,shuffle8,rle"`), validated against
    /// [`codec::Pipeline::from_spec`] at load time. `None` = store raw.
    pub codec: Option<String>,
}

/// When an action fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// After every `frequency`-th completed iteration.
    EndOfIteration {
        /// Fire every n-th iteration (≥ 1).
        frequency: u64,
    },
    /// When a client explicitly calls `signal(event_name)`.
    Event(
        /// Name of the user event.
        String,
    ),
}

/// One plugin invocation description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Action name (unique).
    pub name: String,
    /// Plugin identifier (what code runs).
    pub plugin: String,
    /// Firing condition.
    pub trigger: Trigger,
    /// Free-form key/value parameters passed to the plugin.
    pub params: Vec<(String, String)>,
}

impl Action {
    /// Look up a parameter by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Behaviour when the shared-memory segment approaches exhaustion
/// (paper §V.C.1: "accepting potential loss of data rather than blocking the
/// simulation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkipMode {
    /// Block the writer until space is available (classic behaviour).
    ///
    /// Liveness caveat: blocking assumes the node's clients advance in
    /// rough lockstep (as MPI-synchronized simulation ranks do). If
    /// free-running clients skew further apart than the segment holds,
    /// the leader can fill every slot with blocks of iterations that
    /// cannot complete without the laggards, deadlocking all writers
    /// until the allocation timeout. Use `DropIteration` for
    /// unsynchronized producers.
    Block,
    /// Drop entire incoming iterations until pressure recedes.
    DropIteration,
}

/// Backpressure policy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipConfig {
    /// Reaction to memory pressure.
    pub mode: SkipMode,
    /// Fraction of segment occupancy above which the policy engages
    /// (0 < w ≤ 1).
    pub high_watermark: f64,
}

impl Default for SkipConfig {
    fn default() -> Self {
        SkipConfig {
            mode: SkipMode::Block,
            high_watermark: 0.9,
        }
    }
}

/// Which event-transport implementation carries client events to the
/// dedicated cores (`<queue kind="…">`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The bounded mutex+condvar MPMC queue (global FIFO; posts contend
    /// on one lock). The default, matching the original middleware.
    #[default]
    Mutex,
    /// One lock-free SPSC ring per client, drained by work-stealing
    /// dedicated cores. Event-post cost stays flat as clients scale.
    Sharded,
}

impl QueueKind {
    /// Parse the `kind="…"` attribute.
    pub fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "mutex" => QueueKind::Mutex,
            "sharded" => QueueKind::Sharded,
            other => return Err(XmlError::schema(format!("unknown queue kind '{other}'"))),
        })
    }

    /// Canonical name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Mutex => "mutex",
            QueueKind::Sharded => "sharded",
        }
    }
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which shared-memory allocator backs the segment
/// (`<buffer allocator="…">`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// Lock-free size-class free lists seeded from the declared variable
    /// layouts, first-fit fallback for odd sizes. Steady-state write
    /// allocations take no lock. The default. Node builders upgrade this
    /// choice to [`AllocatorKind::Buddy`] when any layout is
    /// `dimensions="dynamic"` — otherwise every variable-size write
    /// would silently serialize on the first-fit mutex.
    #[default]
    SizeClass,
    /// The classic single-mutex first-fit coalescing free list (the
    /// baseline the write-path benchmark measures against).
    FirstFit,
    /// The size-class queues plus a lock-free buddy tier underneath:
    /// variable-size requests (AMR refinement, per-step particle counts)
    /// round up to a power-of-two order and allocate/free through
    /// per-order queues with split/merge, instead of falling through to
    /// the first-fit mutex. Pick this for `dimensions="dynamic"`
    /// workloads.
    Buddy,
}

impl AllocatorKind {
    /// Parse the `allocator="…"` attribute.
    pub fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "size-class" => AllocatorKind::SizeClass,
            "first-fit" => AllocatorKind::FirstFit,
            "buddy" => AllocatorKind::Buddy,
            other => {
                return Err(XmlError::schema(format!(
                    "unknown allocator kind '{other}'"
                )))
            }
        })
    }

    /// Canonical name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::SizeClass => "size-class",
            AllocatorKind::FirstFit => "first-fit",
            AllocatorKind::Buddy => "buddy",
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Storage backend selected by `<store type="…">`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// The in-tree h5lite container format (`crates/format`), one file per
    /// node, chunked datasets, per-dataset codec metadata.
    #[default]
    H5lite,
}

impl StoreKind {
    /// Parse the `type="…"` attribute.
    pub fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "h5lite" => StoreKind::H5lite,
            other => return Err(XmlError::schema(format!("unknown store type '{other}'"))),
        })
    }

    /// Canonical name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::H5lite => "h5lite",
        }
    }
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dedicated-core storage pipeline configuration (`<store>` inside
/// `<architecture>`).
///
/// When present, every iteration's stored blocks are compressed with each
/// variable's [`Variable::codec`] pipeline and appended to one h5lite file
/// per node; flush/fsync runs on a background flusher thread so
/// `end_iteration` latency is unaffected (the paper's §IV.D "600 %
/// compression at no overhead" path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Storage backend.
    pub kind: StoreKind,
    /// Directory for the per-node files (`path="…"`); relative paths
    /// resolve against the node's output directory. `None` = the output
    /// directory itself.
    pub path: Option<String>,
    /// Whether the flusher thread syncs file contents to disk
    /// (`sync="false"` trades crash durability for speed; default true).
    pub sync: bool,
    /// Rows per chunk for chunked datasets, along the slowest-varying
    /// dimension (`chunk_rows="…"`, default 64).
    pub chunk_rows: u64,
    /// Encode worker threads inside the storage engine (`workers="N"`,
    /// must be ≥ 1). `None` = auto: available cores minus the configured
    /// clients, at least 1 — the cores the dedicated-core placement leaves
    /// idle on the node.
    pub workers: Option<u32>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            kind: StoreKind::H5lite,
            path: None,
            sync: true,
            chunk_rows: 64,
            workers: None,
        }
    }
}

/// Subscriber streaming tier configuration (`<serve>` inside
/// `<architecture>`).
///
/// When present, the dedicated core runs a TCP streaming server
/// (`damaris_serve`) beside the storage pipeline: every completed
/// iteration's blocks are published as length-prefixed DATA frames to all
/// connected subscribers, with per-subscriber bounded send queues
/// (drop-to-latest + LAG frame for slow consumers — the publisher never
/// blocks) and snapshot catch-up of the most recent completed iteration
/// for late joiners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`listen="addr:port"`). Port 0 picks an ephemeral
    /// port; see `addr_file` for discovery.
    pub listen: String,
    /// Per-subscriber bounded send queue, in frames (`queue_frames="N"`,
    /// must be ≥ 1). A publish that does not fit drops the whole
    /// iteration for that subscriber and schedules a LAG frame.
    pub queue_frames: u32,
    /// Completed iterations retained in the `VariableStore` for snapshot
    /// catch-up (`retain="N"`, must be ≥ 1). Older completed iterations
    /// are garbage-collected as usual.
    pub retain: u64,
    /// Optional file the server writes its bound address to
    /// (`addr_file="…"`); relative paths resolve against the node's
    /// output directory. Lets dashboards discover an ephemeral port.
    pub addr_file: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            queue_frames: 256,
            retain: 1,
            addr_file: None,
        }
    }
}

/// How the node's ranks are realized (`<world kind="…">`): threads in one
/// address space, or separate OS processes over the socket transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldKind {
    /// All ranks are threads of one process; events move through
    /// in-memory queues. The default (fastest, and what
    /// `damaris_core::DamarisNode` runs).
    #[default]
    Threads,
    /// Clients and dedicated cores are separate OS processes: events
    /// cross Unix-domain sockets and block payloads live in a
    /// file-backed shared-memory segment (`damaris_core::process`,
    /// `mini_mpi::World::run_spawned`) — the original middleware's
    /// architecture.
    Processes,
}

impl WorldKind {
    /// Parse the `kind="…"` attribute.
    pub fn parse(s: &str) -> XmlResult<Self> {
        Ok(match s.trim() {
            "threads" => WorldKind::Threads,
            "processes" => WorldKind::Processes,
            other => return Err(XmlError::schema(format!("unknown world kind '{other}'"))),
        })
    }

    /// Canonical name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            WorldKind::Threads => "threads",
            WorldKind::Processes => "processes",
        }
    }
}

impl fmt::Display for WorldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Node-level resource configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    /// Cores per node dedicated to data management (≥ 1 for Damaris mode,
    /// 0 selects the synchronous baselines).
    pub dedicated_cores: usize,
    /// Compute cores (simulation clients) per node (`<clients count="…"/>`).
    /// Lets one configuration describe the whole node, so launchers
    /// (`damaris_core::Damaris::launch`) need no out-of-band client count.
    pub clients: usize,
    /// Shared-memory segment capacity in bytes.
    pub buffer_size: usize,
    /// Shared-memory allocator implementation.
    pub allocator: AllocatorKind,
    /// Event queue capacity in messages (aggregate across shards for the
    /// sharded transport).
    pub queue_capacity: usize,
    /// Event-transport implementation.
    pub queue_kind: QueueKind,
    /// Rank realization: threads in one process, or one OS process per
    /// rank over the socket transport.
    pub world: WorldKind,
    /// Seed-list rendezvous for the process world (`<world
    /// seeds="host:port,…"/>`): ranks bootstrap via a registry on the
    /// first seed instead of a shared directory. `None` keeps shared-dir
    /// rendezvous. Ignored for the thread world.
    pub seeds: Option<String>,
    /// Heartbeat interval in milliseconds for the process world
    /// (`<world heartbeat_ms="…"/>`). `None`/0 keeps the legacy
    /// EOF-only failure detection; a positive value enables the reliable
    /// mesh (PING/PONG, reconnect, membership broadcast).
    pub heartbeat_ms: Option<u64>,
    /// How long a silent peer link may stay silent before the peer is
    /// declared dead (`<world heartbeat_timeout_ms="…"/>`); only
    /// meaningful with a positive heartbeat interval.
    pub heartbeat_timeout_ms: Option<u64>,
    /// Backpressure policy.
    pub skip: SkipConfig,
    /// Dedicated-core storage pipeline (`<store type="h5lite" …/>`);
    /// `None` = no live storage.
    pub store: Option<StoreConfig>,
    /// Subscriber streaming tier (`<serve listen="addr:port" …/>`);
    /// `None` = no serving.
    pub serve: Option<ServeConfig>,
}

impl Default for Architecture {
    fn default() -> Self {
        Architecture {
            dedicated_cores: 1,
            clients: 1,
            buffer_size: 64 << 20,
            allocator: AllocatorKind::default(),
            queue_capacity: 1024,
            queue_kind: QueueKind::default(),
            world: WorldKind::default(),
            seeds: None,
            heartbeat_ms: None,
            heartbeat_timeout_ms: None,
            skip: SkipConfig::default(),
            store: None,
            serve: None,
        }
    }
}

/// A complete, validated Damaris configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Configuration {
    /// Simulation name.
    pub name: String,
    /// Node architecture settings.
    pub architecture: Architecture,
    /// Named integer parameters usable in layout dimensions.
    pub parameters: BTreeMap<String, usize>,
    /// Declared layouts by name.
    pub layouts: BTreeMap<String, Layout>,
    /// Declared meshes by name.
    pub meshes: BTreeMap<String, Mesh>,
    /// Declared variables in document order.
    pub variables: Vec<Variable>,
    /// Declared actions in document order.
    pub actions: Vec<Action>,
    /// Interned variable/event ids with precomputed layout sizes, built at
    /// load time (see [`VarRegistry`]). `VarId` i refers to
    /// `variables[i]`.
    registry: VarRegistry,
}

impl Configuration {
    /// Parse and validate a configuration from XML text.
    #[allow(clippy::should_implement_trait)] // fallible, XML-specific parse
    pub fn from_str(xml: &str) -> XmlResult<Self> {
        let doc = crate::parse(xml)?;
        Self::from_element(&doc.root)
    }

    /// Load and validate a configuration from a file on disk.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> XmlResult<Self> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| XmlError::schema(format!("cannot read {:?}: {e}", path.as_ref())))?;
        Self::from_str(&text)
    }

    /// Build from an already parsed `<simulation>` root element.
    pub fn from_element(root: &Element) -> XmlResult<Self> {
        if root.name != "simulation" {
            return Err(XmlError::schema(format!(
                "root element must be <simulation>, found <{}>",
                root.name
            )));
        }
        let mut cfg = Configuration {
            name: root.attr("name").unwrap_or("unnamed").to_string(),
            ..Default::default()
        };

        if let Some(arch) = root.child("architecture") {
            cfg.architecture = parse_architecture(arch)?;
        }

        if let Some(data) = root.child("data") {
            // Parameters first: dimensions may reference them.
            for p in data.children_named("parameter") {
                let name = required_attr(p, "name")?;
                let value: usize = p
                    .attr_parse("value")
                    .map_err(XmlError::schema)?
                    .ok_or_else(|| XmlError::schema("<parameter> needs value=\"…\""))?;
                cfg.parameters.insert(name, value);
            }
            for l in data.children_named("layout") {
                let layout = parse_layout(l, &cfg.parameters)?;
                if cfg
                    .layouts
                    .insert(layout.name.clone(), layout.clone())
                    .is_some()
                {
                    return Err(XmlError::schema(format!(
                        "duplicate layout '{}'",
                        layout.name
                    )));
                }
            }
            for m in data.children_named("mesh") {
                let mesh = parse_mesh(m)?;
                if cfg.meshes.insert(mesh.name.clone(), mesh.clone()).is_some() {
                    return Err(XmlError::schema(format!("duplicate mesh '{}'", mesh.name)));
                }
            }
            for v in data.children_named("variable") {
                cfg.variables.push(parse_variable(v, None)?);
            }
            for g in data.children_named("group") {
                let gname = required_attr(g, "name")?;
                for v in g.children_named("variable") {
                    cfg.variables.push(parse_variable(v, Some(&gname))?);
                }
            }
        }

        if let Some(actions) = root.child("actions") {
            for a in actions.children_named("action") {
                cfg.actions.push(parse_action(a)?);
            }
        }

        cfg.validate()?;
        cfg.rebuild_registry();
        Ok(cfg)
    }

    /// Cross-reference validation: every variable has a known layout and
    /// mesh, names are unique, sizes are sane.
    pub fn validate(&self) -> XmlResult<()> {
        let mut seen = std::collections::BTreeSet::new();
        for v in &self.variables {
            if !seen.insert(&v.name) {
                return Err(XmlError::schema(format!("duplicate variable '{}'", v.name)));
            }
            let layout = self.layouts.get(&v.layout).ok_or_else(|| {
                XmlError::schema(format!(
                    "variable '{}' references unknown layout '{}'",
                    v.name, v.layout
                ))
            })?;
            if !layout.is_dynamic() && layout.element_count() == 0 {
                return Err(XmlError::schema(format!(
                    "layout '{}' has an empty extent",
                    layout.name
                )));
            }
            if let Some(mesh) = &v.mesh {
                if !self.meshes.contains_key(mesh) {
                    return Err(XmlError::schema(format!(
                        "variable '{}' references unknown mesh '{mesh}'",
                        v.name
                    )));
                }
            }
            if let Some(max) = layout.max_byte_size() {
                if max > self.architecture.buffer_size {
                    return Err(XmlError::schema(format!(
                        "variable '{}' ({} bytes) cannot fit the {}-byte shared buffer",
                        v.name, max, self.architecture.buffer_size
                    )));
                }
            }
            // Codec specs fail here, at load time, with the codec crate's
            // own diagnostics — never on the dedicated core's write path.
            if let Some(spec) = &v.codec {
                codec::Pipeline::from_spec(spec).map_err(|e| {
                    XmlError::schema(format!(
                        "variable '{}': invalid codec pipeline: {e}",
                        v.name
                    ))
                })?;
            }
        }
        let mut names = std::collections::BTreeSet::new();
        for a in &self.actions {
            if !names.insert(&a.name) {
                return Err(XmlError::schema(format!("duplicate action '{}'", a.name)));
            }
        }
        let w = self.architecture.skip.high_watermark;
        if !(w > 0.0 && w <= 1.0) {
            return Err(XmlError::schema(format!(
                "high-watermark {w} outside (0, 1]"
            )));
        }
        Ok(())
    }

    /// The interning table (variable and user-event ids). Built by the
    /// loaders; call [`Configuration::rebuild_registry`] after mutating a
    /// configuration by hand.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Rebuild the interning table from the current variables, layouts
    /// and actions.
    pub fn rebuild_registry(&mut self) {
        self.registry = VarRegistry::build(&self.variables, &self.layouts, &self.actions);
    }

    /// Look up a variable by (qualified) name — O(1) through the registry
    /// index (linear fallback for hand-assembled configurations whose
    /// registry was not rebuilt).
    pub fn variable(&self, name: &str) -> Option<&Variable> {
        // Fast path through the registry index, with a staleness check:
        // the declaration behind the id must still carry the queried name
        // (a hand-mutated `variables` without `rebuild_registry` falls
        // back to the scan instead of silently answering from stale data).
        if let Some(id) = self.registry.var_id(name) {
            if let Some(v) = self.variables.get(id.index()) {
                if v.name == name {
                    return Some(v);
                }
            }
        }
        self.variables.iter().find(|v| v.name == name)
    }

    /// The variable declaration behind an interned id.
    pub fn variable_by_id(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// The (qualified) name of an interned variable.
    pub fn var_name(&self, id: VarId) -> &str {
        self.registry.name(id)
    }

    /// The layout of a variable, if both exist.
    pub fn layout_of(&self, variable: &str) -> Option<&Layout> {
        self.variable(variable)
            .and_then(|v| self.layouts.get(&v.layout))
    }

    /// The resolved layout of an interned variable.
    pub fn layout_of_id(&self, id: VarId) -> &Layout {
        self.registry.layout(id)
    }

    /// Total bytes one client writes per iteration (all stored variables).
    pub fn bytes_per_iteration(&self) -> usize {
        self.variables
            .iter()
            .filter(|v| v.store)
            .filter_map(|v| self.layouts.get(&v.layout))
            .map(Layout::byte_size)
            .sum()
    }

    /// Serialize back to XML (used by tooling and round-trip tests).
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("simulation").with_attr("name", &self.name);
        let mut arch = Element::new("architecture")
            .with_child(
                Element::new("dedicated")
                    .with_attr("cores", self.architecture.dedicated_cores.to_string()),
            )
            .with_child(
                Element::new("clients").with_attr("count", self.architecture.clients.to_string()),
            )
            .with_child(
                Element::new("buffer")
                    .with_attr("size", self.architecture.buffer_size.to_string())
                    .with_attr("allocator", self.architecture.allocator.name()),
            )
            .with_child(
                Element::new("queue")
                    .with_attr("capacity", self.architecture.queue_capacity.to_string())
                    .with_attr("kind", self.architecture.queue_kind.name()),
            )
            .with_child({
                let mut we =
                    Element::new("world").with_attr("kind", self.architecture.world.name());
                if let Some(seeds) = &self.architecture.seeds {
                    we = we.with_attr("seeds", seeds);
                }
                if let Some(hb) = self.architecture.heartbeat_ms {
                    we = we.with_attr("heartbeat_ms", hb.to_string());
                }
                if let Some(t) = self.architecture.heartbeat_timeout_ms {
                    we = we.with_attr("heartbeat_timeout_ms", t.to_string());
                }
                we
            });
        if let Some(store) = &self.architecture.store {
            let mut se = Element::new("store")
                .with_attr("type", store.kind.name())
                .with_attr("sync", if store.sync { "true" } else { "false" })
                .with_attr("chunk_rows", store.chunk_rows.to_string());
            if let Some(workers) = store.workers {
                se = se.with_attr("workers", workers.to_string());
            }
            if let Some(path) = &store.path {
                se = se.with_attr("path", path);
            }
            arch = arch.with_child(se);
        }
        if let Some(serve) = &self.architecture.serve {
            let mut se = Element::new("serve")
                .with_attr("listen", &serve.listen)
                .with_attr("queue_frames", serve.queue_frames.to_string())
                .with_attr("retain", serve.retain.to_string());
            if let Some(path) = &serve.addr_file {
                se = se.with_attr("addr_file", path);
            }
            arch = arch.with_child(se);
        }
        let arch = arch.with_child(
            Element::new("skip")
                .with_attr(
                    "mode",
                    match self.architecture.skip.mode {
                        SkipMode::Block => "block",
                        SkipMode::DropIteration => "drop-iteration",
                    },
                )
                .with_attr(
                    "high-watermark",
                    format!("{}", self.architecture.skip.high_watermark),
                ),
        );
        root = root.with_child(arch);

        let mut data = Element::new("data");
        for (name, value) in &self.parameters {
            data = data.with_child(
                Element::new("parameter")
                    .with_attr("name", name)
                    .with_attr("value", value.to_string()),
            );
        }
        for layout in self.layouts.values() {
            let dims = if layout.is_dynamic() {
                "dynamic".to_string()
            } else {
                let dims: Vec<String> = layout.dimensions.iter().map(|d| d.to_string()).collect();
                dims.join(",")
            };
            let mut le = Element::new("layout")
                .with_attr("name", &layout.name)
                .with_attr("type", layout.elem_type.name())
                .with_attr("dimensions", dims);
            if let Some(max) = layout.max_bytes {
                le = le.with_attr("max_size", max.to_string());
            }
            data = data.with_child(le);
        }
        for mesh in self.meshes.values() {
            let mut m = Element::new("mesh")
                .with_attr("name", &mesh.name)
                .with_attr(
                    "type",
                    match mesh.mesh_type {
                        MeshType::Rectilinear => "rectilinear",
                        MeshType::Curvilinear => "curvilinear",
                        MeshType::Points => "points",
                    },
                );
            for c in &mesh.coords {
                let mut ce = Element::new("coord").with_attr("name", &c.name);
                if let Some(u) = &c.unit {
                    ce = ce.with_attr("unit", u);
                }
                m = m.with_child(ce);
            }
            data = data.with_child(m);
        }
        for v in &self.variables {
            let mut ve = Element::new("variable")
                .with_attr("name", &v.name)
                .with_attr("layout", &v.layout);
            if let Some(m) = &v.mesh {
                ve = ve.with_attr("mesh", m);
            }
            if let Some(u) = &v.unit {
                ve = ve.with_attr("unit", u);
            }
            if v.centering == Centering::Zonal {
                ve = ve.with_attr("centering", "zonal");
            }
            if !v.store {
                ve = ve.with_attr("store", "false");
            }
            if let Some(c) = &v.codec {
                ve = ve.with_attr("codec", c);
            }
            data = data.with_child(ve);
        }
        root = root.with_child(data);

        if !self.actions.is_empty() {
            let mut actions = Element::new("actions");
            for a in &self.actions {
                let mut ae = Element::new("action")
                    .with_attr("name", &a.name)
                    .with_attr("plugin", &a.plugin);
                match &a.trigger {
                    Trigger::EndOfIteration { frequency } => {
                        ae = ae
                            .with_attr("event", "end-of-iteration")
                            .with_attr("frequency", frequency.to_string());
                    }
                    Trigger::Event(name) => {
                        ae = ae.with_attr("event", name);
                    }
                }
                for (k, v) in &a.params {
                    ae = ae.with_child(
                        Element::new("param")
                            .with_attr("name", k)
                            .with_attr("value", v),
                    );
                }
                actions = actions.with_child(ae);
            }
            root = root.with_child(actions);
        }
        root.to_xml()
    }
}

fn required_attr(el: &Element, name: &str) -> XmlResult<String> {
    el.attr(name)
        .map(str::to_string)
        .ok_or_else(|| XmlError::schema(format!("<{}> requires {name}=\"…\"", el.name)))
}

fn parse_architecture(el: &Element) -> XmlResult<Architecture> {
    let mut arch = Architecture::default();
    if let Some(d) = el.child("dedicated") {
        arch.dedicated_cores = d
            .attr_parse("cores")
            .map_err(XmlError::schema)?
            .unwrap_or(arch.dedicated_cores);
    }
    if let Some(c) = el.child("clients") {
        arch.clients = c
            .attr_parse("count")
            .map_err(XmlError::schema)?
            .unwrap_or(arch.clients);
        if arch.clients == 0 {
            return Err(XmlError::schema("<clients count> must be positive"));
        }
    }
    if let Some(b) = el.child("buffer") {
        arch.buffer_size = b
            .attr_parse("size")
            .map_err(XmlError::schema)?
            .unwrap_or(arch.buffer_size);
        if arch.buffer_size == 0 {
            return Err(XmlError::schema("<buffer size> must be positive"));
        }
        if let Some(kind) = b.attr("allocator") {
            arch.allocator = AllocatorKind::parse(kind)?;
        }
    }
    if let Some(q) = el.child("queue") {
        arch.queue_capacity = q
            .attr_parse("capacity")
            .map_err(XmlError::schema)?
            .unwrap_or(arch.queue_capacity);
        if arch.queue_capacity == 0 {
            return Err(XmlError::schema("<queue capacity> must be positive"));
        }
        if let Some(kind) = q.attr("kind") {
            arch.queue_kind = QueueKind::parse(kind)?;
        }
    }
    if let Some(w) = el.child("world") {
        if let Some(kind) = w.attr("kind") {
            arch.world = WorldKind::parse(kind)?;
        }
        if let Some(seeds) = w.attr("seeds") {
            if seeds.trim().is_empty()
                || seeds
                    .split(',')
                    .any(|s| s.trim().is_empty() || !s.contains(':'))
            {
                return Err(XmlError::schema(format!(
                    "<world seeds> must be a comma-separated host:port list, got '{seeds}'"
                )));
            }
            arch.seeds = Some(seeds.to_string());
        }
        arch.heartbeat_ms = w.attr_parse("heartbeat_ms").map_err(XmlError::schema)?;
        arch.heartbeat_timeout_ms = w
            .attr_parse("heartbeat_timeout_ms")
            .map_err(XmlError::schema)?;
        if arch.heartbeat_timeout_ms == Some(0) {
            return Err(XmlError::schema("<world heartbeat_timeout_ms> must be ≥ 1"));
        }
        if arch.heartbeat_timeout_ms.is_some() && arch.heartbeat_ms.unwrap_or(0) == 0 {
            return Err(XmlError::schema(
                "<world heartbeat_timeout_ms> requires a positive heartbeat_ms",
            ));
        }
    }
    if let Some(s) = el.child("store") {
        let mut store = StoreConfig::default();
        if let Some(kind) = s.attr("type") {
            store.kind = StoreKind::parse(kind)?;
        }
        store.path = s.attr("path").map(Into::into);
        store.sync = match s.attr("sync").unwrap_or("true") {
            "true" | "1" | "yes" => true,
            "false" | "0" | "no" => false,
            other => return Err(XmlError::schema(format!("bad store sync flag '{other}'"))),
        };
        store.chunk_rows = s
            .attr_parse("chunk_rows")
            .map_err(XmlError::schema)?
            .unwrap_or(store.chunk_rows);
        if store.chunk_rows == 0 {
            return Err(XmlError::schema("<store chunk_rows> must be ≥ 1"));
        }
        store.workers = s.attr_parse("workers").map_err(XmlError::schema)?;
        if store.workers == Some(0) {
            return Err(XmlError::schema("<store workers> must be ≥ 1"));
        }
        arch.store = Some(store);
    }
    if let Some(s) = el.child("serve") {
        let mut serve = ServeConfig::default();
        if let Some(listen) = s.attr("listen") {
            if listen.trim().is_empty() || !listen.contains(':') {
                return Err(XmlError::schema(format!(
                    "<serve listen> must be addr:port, got '{listen}'"
                )));
            }
            serve.listen = listen.to_string();
        }
        serve.queue_frames = s
            .attr_parse("queue_frames")
            .map_err(XmlError::schema)?
            .unwrap_or(serve.queue_frames);
        if serve.queue_frames == 0 {
            return Err(XmlError::schema("<serve queue_frames> must be ≥ 1"));
        }
        serve.retain = s
            .attr_parse("retain")
            .map_err(XmlError::schema)?
            .unwrap_or(serve.retain);
        if serve.retain == 0 {
            return Err(XmlError::schema("<serve retain> must be ≥ 1"));
        }
        serve.addr_file = s.attr("addr_file").map(Into::into);
        arch.serve = Some(serve);
    }
    if let Some(s) = el.child("skip") {
        let mode = match s.attr("mode").unwrap_or("block") {
            "block" => SkipMode::Block,
            "drop-iteration" => SkipMode::DropIteration,
            other => {
                return Err(XmlError::schema(format!("unknown skip mode '{other}'")));
            }
        };
        let hw = s
            .attr_parse::<f64>("high-watermark")
            .map_err(XmlError::schema)?
            .unwrap_or(SkipConfig::default().high_watermark);
        arch.skip = SkipConfig {
            mode,
            high_watermark: hw,
        };
    }
    Ok(arch)
}

fn parse_layout(el: &Element, params: &BTreeMap<String, usize>) -> XmlResult<Layout> {
    let name = required_attr(el, "name")?;
    let elem_type = ElemType::parse(&required_attr(el, "type")?)?;
    let dims_attr = required_attr(el, "dimensions")?;
    let max_bytes = el
        .attr_parse::<usize>("max_size")
        .map_err(XmlError::schema)?;
    if dims_attr.trim() == "dynamic" {
        // Variable-size layout: extents arrive with every write.
        if let Some(max) = max_bytes {
            if max == 0 {
                return Err(XmlError::schema(format!(
                    "layout '{name}': max_size must be positive"
                )));
            }
            if !max.is_multiple_of(elem_type.size_bytes()) {
                return Err(XmlError::schema(format!(
                    "layout '{name}': max_size {max} is not a whole number of {} elements",
                    elem_type.name()
                )));
            }
        }
        return Ok(Layout {
            name,
            elem_type,
            dimensions: Vec::new(),
            max_bytes,
        });
    }
    if max_bytes.is_some() {
        return Err(XmlError::schema(format!(
            "layout '{name}': max_size only applies to dimensions=\"dynamic\""
        )));
    }
    let mut dimensions = Vec::new();
    for token in dims_attr.split(',') {
        let token = token.trim();
        if token.is_empty() {
            return Err(XmlError::schema(format!(
                "layout '{name}' has an empty dimension token"
            )));
        }
        let extent = if let Ok(n) = token.parse::<usize>() {
            n
        } else {
            *params.get(token).ok_or_else(|| {
                XmlError::schema(format!(
                    "layout '{name}' dimension '{token}' is neither a number nor a declared parameter"
                ))
            })?
        };
        dimensions.push(extent);
    }
    Ok(Layout {
        name,
        elem_type,
        dimensions,
        max_bytes: None,
    })
}

fn parse_mesh(el: &Element) -> XmlResult<Mesh> {
    let name = required_attr(el, "name")?;
    let mesh_type = MeshType::parse(el.attr("type").unwrap_or("rectilinear"))?;
    let mut coords = Vec::new();
    for c in el.children_named("coord") {
        coords.push(Coord {
            name: required_attr(c, "name")?,
            unit: c.attr("unit").map(Into::into),
        });
    }
    Ok(Mesh {
        name,
        mesh_type,
        coords,
    })
}

fn parse_variable(el: &Element, group: Option<&str>) -> XmlResult<Variable> {
    let base = required_attr(el, "name")?;
    let name = match group {
        Some(g) => format!("{g}/{base}"),
        None => base,
    };
    let centering = match el.attr("centering").unwrap_or("nodal") {
        "nodal" => Centering::Nodal,
        "zonal" => Centering::Zonal,
        other => return Err(XmlError::schema(format!("unknown centering '{other}'"))),
    };
    let store = match el.attr("store").unwrap_or("true") {
        "true" | "1" | "yes" => true,
        "false" | "0" | "no" => false,
        other => return Err(XmlError::schema(format!("bad store flag '{other}'"))),
    };
    Ok(Variable {
        name,
        layout: required_attr(el, "layout")?,
        mesh: el.attr("mesh").map(Into::into),
        unit: el.attr("unit").map(Into::into),
        centering,
        store,
        codec: el.attr("codec").map(Into::into),
    })
}

fn parse_action(el: &Element) -> XmlResult<Action> {
    let name = required_attr(el, "name")?;
    let plugin = required_attr(el, "plugin")?;
    let trigger = match el.attr("event").unwrap_or("end-of-iteration") {
        "end-of-iteration" => {
            let frequency = el
                .attr_parse::<u64>("frequency")
                .map_err(XmlError::schema)?
                .unwrap_or(1);
            if frequency == 0 {
                return Err(XmlError::schema(format!(
                    "action '{name}': frequency must be ≥ 1"
                )));
            }
            Trigger::EndOfIteration { frequency }
        }
        custom => Trigger::Event(custom.to_string()),
    };
    let mut params = Vec::new();
    for p in el.children_named("param") {
        params.push((required_attr(p, "name")?, required_attr(p, "value")?));
    }
    Ok(Action {
        name,
        plugin,
        trigger,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
      <simulation name="cm1">
        <architecture>
          <dedicated cores="1"/>
          <buffer size="67108864"/>
          <queue capacity="256"/>
          <skip mode="drop-iteration" high-watermark="0.8"/>
        </architecture>
        <data>
          <parameter name="nx" value="64"/>
          <parameter name="ny" value="64"/>
          <parameter name="nz" value="32"/>
          <layout name="grid3d" type="f32" dimensions="nx,ny,nz"/>
          <mesh name="atmosphere" type="rectilinear">
            <coord name="x" unit="m"/>
            <coord name="y" unit="m"/>
            <coord name="z" unit="m"/>
          </mesh>
          <variable name="u" layout="grid3d" mesh="atmosphere" unit="m/s"/>
          <variable name="theta" layout="grid3d" mesh="atmosphere" unit="K"/>
          <group name="moisture">
            <variable name="qv" layout="grid3d" mesh="atmosphere"/>
          </group>
        </data>
        <actions>
          <action name="dump" plugin="hdf5" event="end-of-iteration" frequency="2"/>
          <action name="pack" plugin="compress" event="end-of-iteration">
            <param name="pipeline" value="xor-delta,rle"/>
          </action>
          <action name="snapshot" plugin="viz" event="user-snapshot"/>
        </actions>
      </simulation>"#;

    #[test]
    fn full_configuration_loads() {
        let cfg = Configuration::from_str(FULL).unwrap();
        assert_eq!(cfg.name, "cm1");
        assert_eq!(cfg.architecture.dedicated_cores, 1);
        assert_eq!(cfg.architecture.buffer_size, 64 << 20);
        assert_eq!(cfg.architecture.queue_capacity, 256);
        assert_eq!(
            cfg.architecture.queue_kind,
            QueueKind::Mutex,
            "kind defaults to mutex"
        );
        assert_eq!(cfg.architecture.skip.mode, SkipMode::DropIteration);
        assert_eq!(cfg.variables.len(), 3);
        assert_eq!(cfg.variables[2].name, "moisture/qv");
        assert_eq!(cfg.layouts["grid3d"].dimensions, vec![64, 64, 32]);
        assert_eq!(cfg.layouts["grid3d"].byte_size(), 64 * 64 * 32 * 4);
        assert_eq!(cfg.actions.len(), 3);
        assert_eq!(
            cfg.actions[0].trigger,
            Trigger::EndOfIteration { frequency: 2 }
        );
        assert_eq!(cfg.actions[1].param("pipeline"), Some("xor-delta,rle"));
        assert_eq!(
            cfg.actions[2].trigger,
            Trigger::Event("user-snapshot".into())
        );
    }

    #[test]
    fn bytes_per_iteration_sums_stored_variables() {
        let cfg = Configuration::from_str(FULL).unwrap();
        assert_eq!(cfg.bytes_per_iteration(), 3 * 64 * 64 * 32 * 4);
    }

    #[test]
    fn parameters_resolve_in_dimensions() {
        let cfg = Configuration::from_str(FULL).unwrap();
        assert_eq!(cfg.layout_of("u").unwrap().element_count(), 64 * 64 * 32);
    }

    #[test]
    fn unknown_layout_rejected() {
        let xml = r#"<simulation><data>
            <variable name="u" layout="nope"/>
        </data></simulation>"#;
        let err = Configuration::from_str(xml).unwrap_err();
        assert!(err.to_string().contains("unknown layout"), "{err}");
    }

    #[test]
    fn unknown_mesh_rejected() {
        let xml = r#"<simulation><data>
            <layout name="l" type="f64" dimensions="2"/>
            <variable name="u" layout="l" mesh="ghost"/>
        </data></simulation>"#;
        assert!(Configuration::from_str(xml).is_err());
    }

    #[test]
    fn duplicate_variable_rejected() {
        let xml = r#"<simulation><data>
            <layout name="l" type="f64" dimensions="2"/>
            <variable name="u" layout="l"/>
            <variable name="u" layout="l"/>
        </data></simulation>"#;
        assert!(Configuration::from_str(xml).is_err());
    }

    #[test]
    fn oversized_variable_rejected() {
        let xml = r#"<simulation>
          <architecture><buffer size="16"/></architecture>
          <data>
            <layout name="big" type="f64" dimensions="1024"/>
            <variable name="u" layout="big"/>
          </data></simulation>"#;
        let err = Configuration::from_str(xml).unwrap_err();
        assert!(err.to_string().contains("cannot fit"), "{err}");
    }

    #[test]
    fn bad_watermark_rejected() {
        let xml = r#"<simulation>
          <architecture><skip mode="block" high-watermark="1.5"/></architecture>
        </simulation>"#;
        assert!(Configuration::from_str(xml).is_err());
    }

    #[test]
    fn zero_frequency_rejected() {
        let xml = r#"<simulation><actions>
            <action name="a" plugin="p" event="end-of-iteration" frequency="0"/>
        </actions></simulation>"#;
        assert!(Configuration::from_str(xml).is_err());
    }

    #[test]
    fn undeclared_dimension_parameter_rejected() {
        let xml = r#"<simulation><data>
            <layout name="l" type="f32" dimensions="nx"/>
        </data></simulation>"#;
        let err = Configuration::from_str(xml).unwrap_err();
        assert!(err
            .to_string()
            .contains("neither a number nor a declared parameter"));
    }

    #[test]
    fn elem_type_sizes() {
        assert_eq!(ElemType::parse("double").unwrap(), ElemType::F64);
        assert_eq!(ElemType::F64.size_bytes(), 8);
        assert_eq!(ElemType::parse("int").unwrap().size_bytes(), 4);
        assert_eq!(ElemType::U16.size_bytes(), 2);
        assert!(ElemType::parse("quaternion").is_err());
    }

    #[test]
    fn xml_roundtrip_is_stable() {
        let cfg = Configuration::from_str(FULL).unwrap();
        let xml = cfg.to_xml();
        let cfg2 = Configuration::from_str(&xml).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn queue_kind_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture><queue capacity="128" kind="sharded"/></architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.queue_kind, QueueKind::Sharded);
        assert_eq!(cfg.architecture.queue_capacity, 128);
        // kind="…" survives serialize → parse.
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back.architecture.queue_kind, QueueKind::Sharded);
        assert_eq!(back, cfg);
        // Explicit mutex also round-trips; junk is rejected.
        let xml = xml.replace("sharded", "mutex");
        let cfg = Configuration::from_str(&xml).unwrap();
        assert_eq!(cfg.architecture.queue_kind, QueueKind::Mutex);
        let bad = Configuration::from_str(
            r#"<simulation><architecture><queue kind="warp"/></architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("unknown queue kind"));
    }

    #[test]
    fn allocator_kind_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture><buffer size="4096" allocator="first-fit"/></architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.allocator, AllocatorKind::FirstFit);
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back.architecture.allocator, AllocatorKind::FirstFit);
        assert_eq!(back, cfg);
        // Default is the size-class allocator; junk is rejected.
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert_eq!(cfg.architecture.allocator, AllocatorKind::SizeClass);
        let bad = Configuration::from_str(
            r#"<simulation><architecture><buffer size="1" allocator="bump"/></architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("unknown allocator"));
    }

    #[test]
    fn buddy_allocator_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture><buffer size="4096" allocator="buddy"/></architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.allocator, AllocatorKind::Buddy);
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back.architecture.allocator, AllocatorKind::Buddy);
        assert_eq!(back, cfg);
    }

    #[test]
    fn dynamic_layout_parses_and_roundtrips() {
        let xml = r#"<simulation name="amr">
          <architecture><buffer size="1048576" allocator="buddy"/></architecture>
          <data>
            <layout name="patch" type="f64" dimensions="dynamic" max_size="65536"/>
            <layout name="free" type="f32" dimensions="dynamic"/>
            <variable name="density" layout="patch"/>
            <variable name="tracer" layout="free"/>
          </data>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        let patch = &cfg.layouts["patch"];
        assert!(patch.is_dynamic());
        assert_eq!(patch.byte_size(), 0, "no fixed size");
        assert_eq!(patch.element_count(), 0);
        assert_eq!(patch.max_byte_size(), Some(65536));
        assert_eq!(cfg.layouts["free"].max_byte_size(), None);
        // Round trip preserves the dynamic form and the bound.
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);
        // Registry: dynamic variables intern but seed no size class.
        let reg = cfg.registry();
        let density = reg.var_id("density").unwrap();
        assert!(reg.is_dynamic(density));
        assert_eq!(reg.byte_size(density), 0);
        assert_eq!(reg.max_byte_size(density), Some(65536));
        assert!(reg.any_dynamic());
        assert!(reg.distinct_byte_sizes().is_empty());
    }

    #[test]
    fn dynamic_layout_bad_forms_rejected() {
        // max_size on a fixed layout is meaningless.
        let bad = r#"<simulation><data>
            <layout name="l" type="f64" dimensions="8" max_size="64"/>
        </data></simulation>"#;
        assert!(Configuration::from_str(bad)
            .unwrap_err()
            .to_string()
            .contains("only applies"));
        // A zero or non-whole-element bound is rejected.
        let bad = r#"<simulation><data>
            <layout name="l" type="f64" dimensions="dynamic" max_size="0"/>
        </data></simulation>"#;
        assert!(Configuration::from_str(bad).is_err());
        let bad = r#"<simulation><data>
            <layout name="l" type="f64" dimensions="dynamic" max_size="100"/>
        </data></simulation>"#;
        assert!(Configuration::from_str(bad)
            .unwrap_err()
            .to_string()
            .contains("whole number"));
        // A dynamic bound larger than the buffer cannot ever be written.
        let bad = r#"<simulation>
          <architecture><buffer size="1024"/></architecture>
          <data>
            <layout name="l" type="f64" dimensions="dynamic" max_size="4096"/>
            <variable name="u" layout="l"/>
          </data></simulation>"#;
        assert!(Configuration::from_str(bad)
            .unwrap_err()
            .to_string()
            .contains("cannot fit"));
    }

    #[test]
    fn world_kind_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture><world kind="processes"/></architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.world, WorldKind::Processes);
        // kind="…" survives serialize → parse.
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back.architecture.world, WorldKind::Processes);
        assert_eq!(back, cfg);
        // Explicit threads also round-trips; the default is threads;
        // junk is rejected.
        let cfg = Configuration::from_str(&xml.replace("processes", "threads")).unwrap();
        assert_eq!(cfg.architecture.world, WorldKind::Threads);
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert_eq!(cfg.architecture.world, WorldKind::Threads);
        let bad = Configuration::from_str(
            r#"<simulation><architecture><world kind="fibers"/></architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("unknown world kind"));
    }

    #[test]
    fn world_seeds_and_heartbeat_parse_and_roundtrip() {
        let xml = r#"<simulation name="s">
          <architecture>
            <world kind="processes" seeds="127.0.0.1:7000,10.0.0.2:7000"
                   heartbeat_ms="250" heartbeat_timeout_ms="3000"/>
          </architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.world, WorldKind::Processes);
        assert_eq!(
            cfg.architecture.seeds.as_deref(),
            Some("127.0.0.1:7000,10.0.0.2:7000")
        );
        assert_eq!(cfg.architecture.heartbeat_ms, Some(250));
        assert_eq!(cfg.architecture.heartbeat_timeout_ms, Some(3000));
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg, "seed/heartbeat attrs must round-trip");

        // Absent attributes stay None (and are not emitted).
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert_eq!(cfg.architecture.seeds, None);
        assert_eq!(cfg.architecture.heartbeat_ms, None);
        assert_eq!(cfg.architecture.heartbeat_timeout_ms, None);
        assert!(!cfg.to_xml().contains("seeds"));

        // A seed list without host:port shape is rejected.
        let bad = Configuration::from_str(
            r#"<simulation><architecture><world seeds="nohostport"/></architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("host:port"));
        // A timeout without a heartbeat interval is meaningless.
        let bad = Configuration::from_str(
            r#"<simulation><architecture>
              <world heartbeat_timeout_ms="100"/>
            </architecture></simulation>"#,
        );
        assert!(bad
            .unwrap_err()
            .to_string()
            .contains("requires a positive heartbeat_ms"));
        let bad = Configuration::from_str(
            r#"<simulation><architecture>
              <world heartbeat_ms="100" heartbeat_timeout_ms="0"/>
            </architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("must be ≥ 1"));
    }

    #[test]
    fn clients_count_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture><clients count="7"/></architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        assert_eq!(cfg.architecture.clients, 7);
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back.architecture.clients, 7);
        assert_eq!(back, cfg);
        // Absent element keeps the default of one client.
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert_eq!(cfg.architecture.clients, 1);
        let bad = Configuration::from_str(
            r#"<simulation><architecture><clients count="0"/></architecture></simulation>"#,
        );
        assert!(bad.unwrap_err().to_string().contains("must be positive"));
    }

    #[test]
    fn stale_registry_falls_back_to_scan() {
        // Mutating `variables` in place without rebuild_registry() must
        // not produce silently wrong lookups: the name check detects the
        // stale index and the scan answers from the live declarations.
        let mut cfg = Configuration::from_str(FULL).unwrap();
        cfg.variables[0].name = "renamed".to_string();
        assert_eq!(cfg.variable("renamed").unwrap().layout, "grid3d");
        assert!(cfg.variable("u").is_none(), "old name no longer resolves");
        assert!(cfg.layout_of("renamed").is_some());
        cfg.rebuild_registry();
        assert!(cfg.registry().var_id("renamed").is_some());
    }

    #[test]
    fn var_ids_stable_across_xml_roundtrip() {
        let cfg = Configuration::from_str(FULL).unwrap();
        let cfg2 = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(cfg.registry(), cfg2.registry());
        for v in &cfg.variables {
            let id = cfg.registry().var_id(&v.name).unwrap();
            assert_eq!(cfg2.registry().var_id(&v.name), Some(id));
            assert_eq!(cfg2.var_name(id), v.name);
            assert_eq!(
                cfg2.registry().byte_size(id),
                cfg.layout_of(&v.name).unwrap().byte_size()
            );
        }
        // O(1) lookups agree with the declarations.
        let id = cfg.registry().var_id("moisture/qv").unwrap();
        assert_eq!(cfg.variable_by_id(id).layout, "grid3d");
        assert_eq!(cfg.layout_of_id(id).element_count(), 64 * 64 * 32);
    }

    #[test]
    fn store_config_parses_and_roundtrips() {
        let xml = r#"<simulation name="s">
          <architecture>
            <buffer size="1048576"/>
            <store type="h5lite" path="out/h5" sync="false" chunk_rows="32" workers="4"/>
          </architecture>
          <data>
            <layout name="row" type="f64" dimensions="64"/>
            <variable name="u" layout="row" codec="xor-delta8,shuffle8,rle"/>
            <variable name="raw" layout="row"/>
          </data>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        let store = cfg.architecture.store.as_ref().unwrap();
        assert_eq!(store.kind, StoreKind::H5lite);
        assert_eq!(store.path.as_deref(), Some("out/h5"));
        assert!(!store.sync);
        assert_eq!(store.chunk_rows, 32);
        assert_eq!(store.workers, Some(4));
        assert_eq!(
            cfg.variables[0].codec.as_deref(),
            Some("xor-delta8,shuffle8,rle")
        );
        assert_eq!(cfg.variables[1].codec, None);
        // The registry carries the codec spec to the hot path.
        let reg = cfg.registry();
        let u = reg.var_id("u").unwrap();
        assert_eq!(
            reg.entry(u).codec.as_deref(),
            Some("xor-delta8,shuffle8,rle")
        );
        // Everything survives serialize → parse.
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.registry(), cfg.registry());
    }

    #[test]
    fn store_defaults_and_bad_forms() {
        // Bare <store/> gets the defaults: h5lite, synced, 64-row chunks.
        let cfg = Configuration::from_str(
            r#"<simulation><architecture><store/></architecture></simulation>"#,
        )
        .unwrap();
        let store = cfg.architecture.store.unwrap();
        assert_eq!(store, StoreConfig::default());
        assert!(store.sync);
        assert_eq!(store.chunk_rows, 64);
        assert_eq!(store.workers, None, "workers defaults to auto");
        // No <store> element means no storage pipeline.
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert!(cfg.architecture.store.is_none());
        // Junk forms are rejected.
        for (xml, needle) in [
            (
                r#"<simulation><architecture><store type="netcdf"/></architecture></simulation>"#,
                "unknown store type",
            ),
            (
                r#"<simulation><architecture><store sync="maybe"/></architecture></simulation>"#,
                "bad store sync flag",
            ),
            (
                r#"<simulation><architecture><store chunk_rows="0"/></architecture></simulation>"#,
                "chunk_rows",
            ),
            (
                r#"<simulation><architecture><store workers="0"/></architecture></simulation>"#,
                "workers",
            ),
            (
                r#"<simulation><architecture><store workers="many"/></architecture></simulation>"#,
                "workers",
            ),
        ] {
            let err = Configuration::from_str(xml).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn serve_config_parses_and_roundtrips() {
        let xml = r#"
        <simulation name="stream">
          <architecture>
            <buffer size="1048576"/>
            <serve listen="0.0.0.0:7070" queue_frames="32" retain="3" addr_file="serve.addr"/>
          </architecture>
        </simulation>"#;
        let cfg = Configuration::from_str(xml).unwrap();
        let serve = cfg.architecture.serve.as_ref().unwrap();
        assert_eq!(serve.listen, "0.0.0.0:7070");
        assert_eq!(serve.queue_frames, 32);
        assert_eq!(serve.retain, 3);
        assert_eq!(serve.addr_file.as_deref(), Some("serve.addr"));
        // Everything survives serialize → parse.
        let back = Configuration::from_str(&cfg.to_xml()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn serve_defaults_and_bad_forms() {
        // Bare <serve/> gets the defaults: ephemeral loopback port,
        // 256-frame queues, one retained iteration.
        let cfg = Configuration::from_str(
            r#"<simulation><architecture><serve/></architecture></simulation>"#,
        )
        .unwrap();
        let serve = cfg.architecture.serve.unwrap();
        assert_eq!(serve, ServeConfig::default());
        assert_eq!(serve.listen, "127.0.0.1:0");
        assert_eq!(serve.queue_frames, 256);
        assert_eq!(serve.retain, 1);
        assert_eq!(serve.addr_file, None);
        // No <serve> element means no streaming tier.
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert!(cfg.architecture.serve.is_none());
        // Junk forms are rejected.
        for (xml, needle) in [
            (
                r#"<simulation><architecture><serve listen="nocolon"/></architecture></simulation>"#,
                "listen",
            ),
            (
                r#"<simulation><architecture><serve listen=""/></architecture></simulation>"#,
                "listen",
            ),
            (
                r#"<simulation><architecture><serve queue_frames="0"/></architecture></simulation>"#,
                "queue_frames",
            ),
            (
                r#"<simulation><architecture><serve queue_frames="lots"/></architecture></simulation>"#,
                "queue_frames",
            ),
            (
                r#"<simulation><architecture><serve retain="0"/></architecture></simulation>"#,
                "retain",
            ),
        ] {
            let err = Configuration::from_str(xml).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn malformed_codec_spec_fails_at_load_time() {
        // The satellite requirement: a bad codec="…" dies here with the
        // codec crate's diagnostic, not later on the write path.
        for (spec, needle) in [
            ("zstd", "unknown codec 'zstd'"),
            ("", "empty pipeline spec"),
            ("shuffle99", "out of range"),
            ("xor-deltax", "bad width"),
        ] {
            let xml = format!(
                r#"<simulation><data>
                    <layout name="row" type="f64" dimensions="8"/>
                    <variable name="u" layout="row" codec="{spec}"/>
                </data></simulation>"#
            );
            let err = Configuration::from_str(&xml).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("invalid codec pipeline") && msg.contains(needle),
                "spec '{spec}': {msg}"
            );
        }
    }

    #[test]
    fn defaults_when_sections_missing() {
        let cfg = Configuration::from_str("<simulation name=\"x\"/>").unwrap();
        assert_eq!(cfg.architecture.dedicated_cores, 1);
        assert!(cfg.variables.is_empty());
        assert_eq!(cfg.bytes_per_iteration(), 0);
    }

    #[test]
    fn non_simulation_root_rejected() {
        assert!(Configuration::from_str("<config/>").is_err());
    }
}
