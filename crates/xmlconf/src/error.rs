//! Error type shared by the XML parser and the schema loader.

use std::fmt;

/// Result alias used across this crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// Parse or schema-validation failure, with 1-based source position where
/// available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Lexical/syntactic error while parsing the document text.
    Syntax {
        /// Human-readable description of what went wrong.
        msg: String,
        /// 1-based line of the offending input.
        line: usize,
        /// 1-based column of the offending input.
        col: usize,
    },
    /// The document is well-formed XML but violates the Damaris schema.
    Schema(String),
}

impl XmlError {
    pub(crate) fn syntax(msg: impl Into<String>, line: usize, col: usize) -> Self {
        XmlError::Syntax {
            msg: msg.into(),
            line,
            col,
        }
    }

    /// Construct a schema-level error.
    pub fn schema(msg: impl Into<String>) -> Self {
        XmlError::Schema(msg.into())
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { msg, line, col } => {
                write!(f, "XML syntax error at {line}:{col}: {msg}")
            }
            XmlError::Schema(msg) => write!(f, "Damaris configuration error: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_position() {
        let e = XmlError::syntax("unexpected '<'", 3, 14);
        assert_eq!(e.to_string(), "XML syntax error at 3:14: unexpected '<'");
    }

    #[test]
    fn display_formats_schema() {
        let e = XmlError::schema("variable 'u' references unknown layout 'g'");
        assert!(e.to_string().contains("unknown layout"));
    }
}
