//! Interned identifiers for the configuration's variables and user
//! events.
//!
//! The write hot path must not pay for strings: resolving a variable name
//! with a linear scan, allocating a fresh `String` per published block and
//! re-comparing it on the dedicated core all scale with configuration size
//! and iteration count. The [`VarRegistry`] is built once at configuration
//! load and freezes every declared variable into a dense [`VarId`] (and
//! every action-referenced user event into an [`EventId`]) with its layout
//! byte size precomputed, so:
//!
//! * name → id is one O(1) hash lookup (done once at the API edge);
//! * id → name / layout / byte-size is one array index;
//! * events and stored blocks carry a 4-byte copyable id instead of a
//!   heap-allocated string.
//!
//! Ids are assigned in declaration order, so they are stable across an
//! XML serialize → parse round trip of the same configuration.

use std::collections::HashMap;

use crate::schema::{Action, ElemType, Layout, Trigger, Variable};

/// Interned handle of a declared variable (dense, declaration-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Rebuild an id from its raw index (tests, benches, wire formats).
    /// Only meaningful for indices previously produced by the same
    /// registry.
    pub fn from_raw(raw: u32) -> Self {
        VarId(raw)
    }

    /// The raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "var#{}", self.0)
    }
}

/// Interned handle of a user event referenced by `<action event="…">`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

impl EventId {
    /// Rebuild an id from its raw index (tests and benches).
    pub fn from_raw(raw: u32) -> Self {
        EventId(raw)
    }

    /// The raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Everything the hot path needs to know about one variable, resolved at
/// configuration load.
#[derive(Debug, Clone, PartialEq)]
pub struct VarEntry {
    /// Fully qualified variable name (`group/name` inside groups).
    pub name: String,
    /// The resolved layout (concrete extents).
    pub layout: Layout,
    /// Precomputed `layout.byte_size()` — the exact shared-memory block
    /// size every write of this variable allocates. 0 for variables on
    /// dynamic layouts, whose sizes arrive with each write.
    pub byte_size: usize,
    /// Element type of the layout.
    pub elem_type: ElemType,
    /// Whether storage plugins persist this variable.
    pub store: bool,
    /// Compression pipeline spec (`codec="…"`), validated at load time;
    /// `None` = store raw bytes.
    pub codec: Option<String>,
}

/// Immutable interning table built from a validated configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarRegistry {
    vars: Vec<VarEntry>,
    by_name: HashMap<String, u32>,
    events: Vec<String>,
    event_by_name: HashMap<String, u32>,
}

impl VarRegistry {
    /// Build the registry. Variables referencing unknown layouts are
    /// skipped (validation rejects them before this runs).
    pub fn build(
        variables: &[Variable],
        layouts: &std::collections::BTreeMap<String, Layout>,
        actions: &[Action],
    ) -> Self {
        let mut vars = Vec::with_capacity(variables.len());
        let mut by_name = HashMap::with_capacity(variables.len());
        for v in variables {
            let Some(layout) = layouts.get(&v.layout) else {
                continue;
            };
            by_name.insert(v.name.clone(), vars.len() as u32);
            vars.push(VarEntry {
                name: v.name.clone(),
                layout: layout.clone(),
                byte_size: layout.byte_size(),
                elem_type: layout.elem_type,
                store: v.store,
                codec: v.codec.clone(),
            });
        }
        let mut events = Vec::new();
        let mut event_by_name = HashMap::new();
        for a in actions {
            if let Trigger::Event(name) = &a.trigger {
                if !event_by_name.contains_key(name) {
                    event_by_name.insert(name.clone(), events.len() as u32);
                    events.push(name.clone());
                }
            }
        }
        VarRegistry {
            vars,
            by_name,
            events,
            event_by_name,
        }
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Resolve a variable name — one hash lookup, no allocation.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).map(|&i| VarId(i))
    }

    /// The entry of an interned variable, if the id is in range.
    pub fn get(&self, id: VarId) -> Option<&VarEntry> {
        self.vars.get(id.index())
    }

    /// The entry of an interned variable.
    ///
    /// Panics when the id does not belong to this registry — ids are only
    /// produced by [`VarRegistry::var_id`], so an out-of-range id is a
    /// cross-configuration mix-up.
    pub fn entry(&self, id: VarId) -> &VarEntry {
        &self.vars[id.index()]
    }

    /// Name of an interned variable.
    pub fn name(&self, id: VarId) -> &str {
        &self.entry(id).name
    }

    /// Resolved layout of an interned variable.
    pub fn layout(&self, id: VarId) -> &Layout {
        &self.entry(id).layout
    }

    /// Precomputed block byte size of an interned variable (0 for
    /// dynamic layouts — see [`VarRegistry::is_dynamic`]).
    pub fn byte_size(&self, id: VarId) -> usize {
        self.entry(id).byte_size
    }

    /// Whether the variable's layout is dynamic (per-write extents).
    pub fn is_dynamic(&self, id: VarId) -> bool {
        self.entry(id).layout.is_dynamic()
    }

    /// Upper bound on one block of this variable, in bytes (`None` for a
    /// dynamic layout without a declared `max_size`).
    pub fn max_byte_size(&self, id: VarId) -> Option<usize> {
        self.entry(id).layout.max_byte_size()
    }

    /// All entries in id order.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarEntry)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, e)| (VarId(i as u32), e))
    }

    /// Distinct block byte sizes across all fixed-layout variables — the
    /// seed for the shared-memory segment's size-class allocator.
    /// Dynamic layouts contribute nothing here: their per-write sizes are
    /// served by the buddy tier, not by an exact class.
    pub fn distinct_byte_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .vars
            .iter()
            .map(|e| e.byte_size)
            .filter(|&s| s > 0)
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// Whether any variable uses a dynamic layout (callers then want the
    /// buddy allocator).
    pub fn any_dynamic(&self) -> bool {
        self.vars.iter().any(|e| e.layout.is_dynamic())
    }

    /// Resolve a user-event name declared by some `<action event="…">`.
    /// Undeclared names yield `None`: no action could match them, so a
    /// signal carrying one is a no-op.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.event_by_name.get(name).map(|&i| EventId(i))
    }

    /// Name of an interned user event.
    pub fn event_name(&self, id: EventId) -> &str {
        &self.events[id.index()]
    }

    /// Number of interned user events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Configuration;

    const XML: &str = r#"
      <simulation name="reg">
        <data>
          <layout name="small" type="f64" dimensions="8"/>
          <layout name="big" type="f32" dimensions="16,16"/>
          <variable name="u" layout="small"/>
          <variable name="v" layout="big"/>
          <group name="g">
            <variable name="w" layout="small"/>
          </group>
        </data>
        <actions>
          <action name="dump" plugin="hdf5" event="end-of-iteration"/>
          <action name="snap" plugin="viz" event="user-snapshot"/>
          <action name="snap2" plugin="viz2" event="user-snapshot"/>
          <action name="probe" plugin="p" event="probe-now"/>
        </actions>
      </simulation>"#;

    #[test]
    fn interns_variables_in_declaration_order() {
        let cfg = Configuration::from_str(XML).unwrap();
        let reg = cfg.registry();
        assert_eq!(reg.len(), 3);
        let u = reg.var_id("u").unwrap();
        let v = reg.var_id("v").unwrap();
        let w = reg.var_id("g/w").unwrap();
        assert_eq!((u.raw(), v.raw(), w.raw()), (0, 1, 2));
        assert_eq!(reg.name(v), "v");
        assert_eq!(reg.byte_size(u), 64);
        assert_eq!(reg.byte_size(v), 16 * 16 * 4);
        assert_eq!(reg.layout(w).dimensions, vec![8]);
        assert!(reg.var_id("nope").is_none());
        assert!(reg.get(VarId::from_raw(99)).is_none());
    }

    #[test]
    fn distinct_sizes_seed_the_allocator() {
        let cfg = Configuration::from_str(XML).unwrap();
        assert_eq!(cfg.registry().distinct_byte_sizes(), vec![64, 1024]);
    }

    #[test]
    fn interns_user_events_but_not_builtins() {
        let cfg = Configuration::from_str(XML).unwrap();
        let reg = cfg.registry();
        assert_eq!(reg.event_count(), 2, "dedup + skip end-of-iteration");
        let snap = reg.event_id("user-snapshot").unwrap();
        assert_eq!(reg.event_name(snap), "user-snapshot");
        assert!(reg.event_id("end-of-iteration").is_none());
        assert!(reg.event_id("undeclared").is_none());
    }
}
