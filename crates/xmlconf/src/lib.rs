//! # damaris-xml
//!
//! A minimal, dependency-free XML 1.0 subset parser and the typed **Damaris
//! configuration schema** built on top of it.
//!
//! Damaris (Dorier, IPDPS 2013 PhD Forum) keeps the description of all
//! simulation data *outside* the simulation code, in an XML file: variables,
//! their layouts (element type + dimensions), meshes, the sizing of the
//! shared-memory buffer and event queue, how many cores per node are
//! dedicated to data management, and which plugins (actions) run on which
//! events. This crate provides:
//!
//! * [`parse`] / [`Element`] — a small DOM for well-formed XML documents
//!   (elements, attributes, text, CDATA, comments, the five predefined
//!   entities and numeric character references),
//! * [`Element::to_xml`] — a serializer (parse ∘ serialize is a fixpoint,
//!   property-tested),
//! * [`schema`] — the typed [`schema::Configuration`] loader used by
//!   `damaris-core`.
//!
//! ## Example
//!
//! ```
//! let doc = damaris_xml::parse(r#"
//!   <simulation name="demo">
//!     <data>
//!       <layout name="grid" type="f32" dimensions="4,4"/>
//!       <variable name="u" layout="grid"/>
//!     </data>
//!   </simulation>"#).unwrap();
//! assert_eq!(doc.root.name, "simulation");
//! assert_eq!(doc.root.attr("name"), Some("demo"));
//! let cfg = damaris_xml::schema::Configuration::from_element(&doc.root).unwrap();
//! assert_eq!(cfg.variables.len(), 1);
//! ```

pub mod error;
pub mod parser;
pub mod registry;
pub mod schema;
pub mod tree;

pub use error::{XmlError, XmlResult};
pub use parser::{parse, parse_document, Document};
pub use registry::{EventId, VarEntry, VarId, VarRegistry};
pub use tree::{Element, Node};
