//! DOM tree produced by the parser: [`Element`] and [`Node`].

use std::fmt::Write as _;

/// A child of an element: nested element or character data.
///
/// Comments and processing instructions are discarded at parse time; CDATA
/// sections are folded into [`Node::Text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entity references already resolved).
    Text(String),
}

/// An XML element: name, ordered attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (including any namespace prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an element with the given tag name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder-style: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Value of the first attribute with the given name, if any.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute parsed with `FromStr`, `None` if absent, `Err` if malformed.
    pub fn attr_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.attr(name) {
            None => Ok(None),
            Some(s) => {
                s.trim().parse::<T>().map(Some).map_err(|_| {
                    format!("attribute '{name}'='{s}' of <{}> is malformed", self.name)
                })
            }
        }
    }

    /// Iterator over child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Serialize to XML with 2-space indentation.
    ///
    /// Text nodes are escaped; round-tripping through [`crate::parse`]
    /// reproduces the same tree (whitespace-only text nodes between elements
    /// are not preserved — the parser drops them, matching how the Damaris
    /// configuration treats layout).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}<{}", self.name);
        for (k, v) in &self.attributes {
            let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Elements whose only children are text render inline.
        let inline = self.children.iter().all(|n| matches!(n, Node::Text(_)));
        if inline {
            out.push('>');
            for n in &self.children {
                if let Node::Text(t) = n {
                    out.push_str(&escape_text(t));
                }
            }
            let _ = writeln!(out, "</{}>", self.name);
            return;
        }
        out.push_str(">\n");
        for n in &self.children {
            match n {
                Node::Element(e) => e.write_indented(out, depth + 1),
                Node::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        let _ = writeln!(out, "{pad}  {}", escape_text(trimmed));
                    }
                }
            }
        }
        let _ = writeln!(out, "{pad}</{}>", self.name);
    }
}

/// Escape `&`, `<` and `"` for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `&`, `<` and `>` for use in character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("data")
            .with_attr("name", "wind")
            .with_child(
                Element::new("variable")
                    .with_attr("name", "u")
                    .with_attr("layout", "grid"),
            )
            .with_child(Element::new("note").with_text("x < y & z"))
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("name"), Some("wind"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn attr_parse_ok_and_err() {
        let e = Element::new("buffer")
            .with_attr("size", "4096")
            .with_attr("bad", "4k");
        assert_eq!(e.attr_parse::<usize>("size").unwrap(), Some(4096));
        assert_eq!(e.attr_parse::<usize>("missing").unwrap(), None);
        assert!(e.attr_parse::<usize>("bad").is_err());
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert!(e.child("variable").is_some());
        assert_eq!(e.children_named("variable").count(), 1);
        assert_eq!(e.child("note").unwrap().text(), "x < y & z");
    }

    #[test]
    fn serialize_escapes() {
        let xml = sample().to_xml();
        assert!(xml.contains("x &lt; y &amp; z"), "{xml}");
        assert!(xml.contains("<variable name=\"u\" layout=\"grid\"/>"));
    }

    #[test]
    fn roundtrip_through_parser() {
        let xml = sample().to_xml();
        let doc = crate::parse(&xml).unwrap();
        assert_eq!(doc.root, sample());
    }

    #[test]
    fn empty_element_serializes_self_closing() {
        assert_eq!(Element::new("queue").to_xml(), "<queue/>\n");
    }
}
