//! Recursive-descent parser for the XML subset used by Damaris
//! configuration files.
//!
//! Supported: the XML declaration, elements with attributes (single- or
//! double-quoted), nested content, character data, CDATA sections, comments,
//! processing instructions (skipped), the five predefined entities
//! (`&lt; &gt; &amp; &quot; &apos;`) and numeric character references
//! (`&#NN;`, `&#xHH;`). Not supported (rejected with an error): DOCTYPE with
//! internal subsets, custom entity definitions.
//!
//! Whitespace-only text between elements is dropped: Damaris configurations
//! are structural documents, not mixed-content prose.

use crate::error::{XmlError, XmlResult};
use crate::tree::{Element, Node};

/// A parsed document: the root element (prolog already consumed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The single root element of the document.
    pub root: Element,
}

/// Parse a complete XML document. Convenience wrapper for
/// [`parse_document`].
pub fn parse(input: &str) -> XmlResult<Document> {
    parse_document(input)
}

/// Parse a complete XML document, returning its root element.
pub fn parse_document(input: &str) -> XmlResult<Document> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("content after the root element"));
    }
    Ok(Document { root })
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::syntax(msg, self.line, self.col)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.starts_with(s) {
            self.bump_n(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip the XML declaration, comments, PIs and whitespace before root.
    fn skip_prolog(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DOCTYPE declarations are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> XmlResult<()> {
        self.expect("<?")?;
        while !self.starts_with("?>") {
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
        self.bump_n(2);
        Ok(())
    }

    fn skip_comment(&mut self) -> XmlResult<()> {
        self.expect("<!--")?;
        while !self.starts_with("-->") {
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
        self.bump_n(3);
        Ok(())
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("name bytes are ASCII-checked")
            .to_string())
    }

    fn parse_element(&mut self) -> XmlResult<Element> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(c) if is_name_start(c) => {
                    let (k, v) = self.parse_attribute()?;
                    if el.attr(&k).is_some() {
                        return Err(self.err(format!("duplicate attribute '{k}'")));
                    }
                    el.attributes.push((k, v));
                }
                _ => return Err(self.err("expected attribute, '>' or '/>'")),
            }
        }
        // Content until matching end tag.
        loop {
            if self.starts_with("</") {
                self.bump_n(2);
                let end = self.parse_name()?;
                if end != el.name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{}>, found </{end}>",
                        el.name
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                let text = self.parse_cdata()?;
                push_text(&mut el, text);
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                el.children.push(Node::Element(child));
            } else if self.at_end() {
                return Err(self.err(format!("unterminated element <{}>", el.name)));
            } else {
                let text = self.parse_text()?;
                // Whitespace between elements carries no meaning here.
                if !text.trim().is_empty() {
                    push_text(&mut el, text);
                }
            }
        }
    }

    fn parse_attribute(&mut self) -> XmlResult<(String, String)> {
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump();
                    break;
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => value.push(self.parse_entity()?),
                Some(_) => value.push(self.bump_char()?),
            }
        }
        Ok((name, value))
    }

    fn parse_text(&mut self) -> XmlResult<String> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => text.push(self.parse_entity()?),
                Some(_) => text.push(self.bump_char()?),
            }
        }
        Ok(text)
    }

    fn parse_cdata(&mut self) -> XmlResult<String> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        while !self.starts_with("]]>") {
            if self.bump().is_none() {
                return Err(self.err("unterminated CDATA section"));
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("CDATA is not valid UTF-8"))?
            .to_string();
        self.bump_n(3);
        Ok(text)
    }

    /// Consume one full UTF-8 encoded character.
    fn bump_char(&mut self) -> XmlResult<char> {
        let rest =
            std::str::from_utf8(&self.src[self.pos..]).map_err(|_| self.err("invalid UTF-8"))?;
        let c = rest
            .chars()
            .next()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.bump_n(c.len_utf8());
        Ok(c)
    }

    fn parse_entity(&mut self) -> XmlResult<char> {
        self.expect("&")?;
        let start = self.pos;
        while self.peek() != Some(b';') {
            if self.bump().is_none() {
                return Err(self.err("unterminated entity reference"));
            }
        }
        let body = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?
            .to_string();
        self.bump(); // ';'
        match body.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{body};")))
            }
            _ if body.starts_with('#') => {
                let code = body[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{body};")))
            }
            _ => Err(self.err(format!("unknown entity &{body};"))),
        }
    }
}

/// Append text, merging with a preceding text node so entity boundaries do
/// not fragment character data.
fn push_text(el: &mut Element, text: String) {
    if let Some(Node::Text(prev)) = el.children.last_mut() {
        prev.push_str(&text);
    } else {
        el.children.push(Node::Text(text));
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':'
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b':' | b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root, Element::new("a"));
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- damaris -->\n<sim/>\n<!-- end -->",
        )
        .unwrap();
        assert_eq!(doc.root.name, "sim");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse(r#"<v a="1" b='two'/>"#).unwrap();
        assert_eq!(doc.root.attr("a"), Some("1"));
        assert_eq!(doc.root.attr("b"), Some("two"));
    }

    #[test]
    fn nested_elements_and_text() {
        let doc = parse("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(doc.root.elements().count(), 2);
        assert_eq!(doc.root.child("b").unwrap().text(), "hi");
    }

    #[test]
    fn entities_resolved() {
        let doc = parse("<a t=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root.attr("t"), Some("<&>"));
        assert_eq!(doc.root.text(), "\"x' AB");
    }

    #[test]
    fn cdata_taken_verbatim() {
        let doc = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(doc.root.text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn interelement_whitespace_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert!(doc
            .root
            .children
            .iter()
            .all(|n| matches!(n, Node::Element(_))));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.to_string().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn unterminated_element_rejected() {
        assert!(parse("<a><b/>").is_err());
    }

    #[test]
    fn content_after_root_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE html><a/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn error_position_reported() {
        let err = parse("<a>\n  <b x=></b></a>").unwrap_err();
        match err {
            XmlError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn utf8_text_supported() {
        let doc = parse("<a>héhé ∀x</a>").unwrap();
        assert_eq!(doc.root.text(), "héhé ∀x");
    }

    #[test]
    fn whitespace_inside_tags_tolerated() {
        let doc = parse("<a  x = \"1\"   ></a >").unwrap();
        assert_eq!(doc.root.attr("x"), Some("1"));
    }
}
