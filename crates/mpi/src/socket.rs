//! Multi-process transport: rendezvous (shared-dir or seed-list
//! registry), framing, the reliable heartbeat mesh, and the `run_spawned`
//! process orchestration.
//!
//! ## Rendezvous
//!
//! Two bootstrap paths build the same full mesh:
//!
//! * **Shared-dir** (the default): the parent creates a temporary
//!   directory and re-executes the current binary once per rank with
//!   `MINI_MPI_{DIR,RANK,SIZE,PROGRAM,INPUT}` in the environment. Every
//!   rank binds a listener in the directory (`r<k>.sock` for UDS,
//!   `r<k>.port` holding a TCP loopback port when UDS is unavailable or
//!   forced off), connects to every lower rank, and accepts one
//!   connection from every higher rank. Peers identify themselves with a
//!   `Hello` frame immediately after connecting, so accept order does
//!   not matter.
//! * **Seed-list** (`MINI_MPI_SEEDS`, [`crate::SpawnOptions::seeds`]): no
//!   shared filesystem is needed for rendezvous. Every rank binds a TCP
//!   data listener on an ephemeral port, dials the first seed address,
//!   and sends a `Register` frame carrying its rank and data address.
//!   With a loopback seed everything stays on `127.0.0.1`; with any
//!   other seed host the data listener binds `0.0.0.0` and the rank
//!   advertises the local IP of its registration connection (the
//!   interface routed toward the seed) so peers on other hosts dial a
//!   routable address — `MINI_MPI_ADVERTISE_IP` overrides the detected
//!   IP for multi-homed or NATed hosts.
//!   Rank 0 runs a tiny in-process registry on
//!   `MINI_MPI_REGISTRY_BIND` (default: the first seed): it collects all
//!   `size` registrations and answers each with a `Table` frame holding
//!   the complete peer table; the mesh is then dialed directly over TCP.
//!   Rank 0 registers through the seed address like everyone else, so a
//!   fault-injection proxy fronting the seed observes (and can reroute)
//!   every link.
//!
//! ## Framing
//!
//! Every message is one length-prefixed frame: `[u32 body_len][u8 kind]`
//! followed by the body. Data frames carry `(seq, ctx, src, tag,
//! payload)` — the in-process `Envelope` plus a per-link sequence number
//! — and are demuxed by a per-peer reader thread into the local rank's
//! mailbox. Sends go through a per-peer writer thread (a queue in
//! between), so `send` keeps its eager, never-blocking semantics even
//! when a socket back-pressures.
//!
//! ## Failure semantics
//!
//! With `heartbeat_ms == 0` (the legacy default) death detection is
//! EOF-only: an end-of-stream without a preceding `Goodbye` poisons the
//! local mailbox and every pending and future receive fails with
//! "rank N died". With `heartbeat_ms > 0` the mesh is *reliable*:
//!
//! * every link exchanges periodic `Ping`/`Pong` frames; a peer silent
//!   for longer than the configured timeout is declared dead;
//! * sequenced frames (`Data`, `Goodbye`, `Death`) are buffered until
//!   acknowledged (acks piggyback on `Ping`/`Pong`), so a transient
//!   socket failure is survived by a bounded redial-with-backoff plus a
//!   `Reconnect`/`ReconnectAck` handshake that retransmits exactly the
//!   unacknowledged suffix — no envelope is lost or duplicated;
//! * a rank that detects a death relays a sequenced `Death` frame to
//!   every other live peer (an eager reliable broadcast): with
//!   crash-stop failures and per-link retransmission every survivor
//!   converges on the identical membership view;
//! * a death marks the rank dead in the mailbox instead of poisoning
//!   it: receives that can never complete fail loudly, but traffic among
//!   survivors keeps flowing (degraded mode — see
//!   [`crate::Comm::recv_any_or_death`]).
//!
//! ## Teardown
//!
//! When a rank's program finishes it reports its result to the parent
//! over an out-of-band control connection, flushes a `Goodbye` frame to
//! every peer, and only closes its sockets after receiving every live
//! peer's `Goodbye` — a teardown barrier that guarantees no rank
//! observes an end-of-stream while envelopes are still in flight.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::world::{Envelope, Mailbox, SpawnOutcome, Transport, WorldInner};
use crate::{SpawnError, SpawnOptions};

pub(crate) const ENV_DIR: &str = "MINI_MPI_DIR";
const ENV_RANK: &str = "MINI_MPI_RANK";
const ENV_SIZE: &str = "MINI_MPI_SIZE";
const ENV_PROGRAM: &str = "MINI_MPI_PROGRAM";
const ENV_INPUT: &str = "MINI_MPI_INPUT";
const ENV_TCP: &str = "MINI_MPI_TCP";
const ENV_SEEDS: &str = "MINI_MPI_SEEDS";
const ENV_REGISTRY_BIND: &str = "MINI_MPI_REGISTRY_BIND";
const ENV_ADVERTISE_IP: &str = "MINI_MPI_ADVERTISE_IP";
const ENV_HB_MS: &str = "MINI_MPI_HB_MS";
const ENV_HB_TIMEOUT_MS: &str = "MINI_MPI_HB_TIMEOUT_MS";

/// How long a rank retries connecting to a peer's endpoint before giving
/// up (covers slow process startup under load).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a finished rank waits for peers' goodbyes before closing its
/// sockets anyway (a dead peer must not wedge survivors in teardown).
const GOODBYE_TIMEOUT: Duration = Duration::from_secs(30);
/// Redial schedule after a transient socket failure (dialer side of a
/// reliable link): one attempt after each backoff, then the peer is
/// declared dead.
const RECONNECT_BACKOFF_MS: [u64; 4] = [25, 50, 100, 200];
/// Upper bound on how long an acceptor-side link waits after an EOF
/// without goodbye for the dialer to reconnect before declaring the peer
/// dead (the effective window is `min(heartbeat timeout, this)`).
const EOF_DEATH_WINDOW_CAP: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------------
// Stream / listener abstraction (UDS with TCP loopback fallback)
// ---------------------------------------------------------------------------

pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

fn sock_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.sock"))
}

fn port_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.port"))
}

/// Bind an endpoint named `name` inside `dir`: a Unix socket unless TCP
/// is forced (or the UDS bind fails, e.g. a rendezvous path too long for
/// `sockaddr_un`), in which case a loopback TCP listener is announced by
/// atomically publishing its port number to `<name>.port`.
fn bind_endpoint(dir: &Path, name: &str, force_tcp: bool) -> io::Result<Listener> {
    if !force_tcp {
        match UnixListener::bind(sock_path(dir, name)) {
            Ok(l) => return Ok(Listener::Unix(l)),
            Err(_) => { /* fall through to TCP */ }
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let port = listener.local_addr()?.port();
    let tmp = dir.join(format!("{name}.port.tmp"));
    std::fs::write(&tmp, port.to_string())?;
    std::fs::rename(&tmp, port_path(dir, name))?;
    Ok(Listener::Tcp(listener))
}

/// Connect to the endpoint `name` inside `dir`, retrying until `deadline`
/// (the peer may not have bound yet). Tries the Unix socket first, then
/// the published TCP port.
fn connect_endpoint(dir: &Path, name: &str, deadline: Instant) -> io::Result<Stream> {
    let sock = sock_path(dir, name);
    let port = port_path(dir, name);
    loop {
        if sock.exists() {
            match UnixStream::connect(&sock) {
                Ok(s) => return Ok(Stream::Unix(s)),
                Err(_) => { /* listener may still be setting up */ }
            }
        }
        if let Ok(text) = std::fs::read_to_string(&port) {
            if let Ok(p) = text.trim().parse::<u16>() {
                if let Ok(s) = TcpStream::connect(("127.0.0.1", p)) {
                    return Ok(Stream::Tcp(s));
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no endpoint '{name}' appeared in {dir:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Dial a `host:port` address, retrying until `deadline` (the peer may
/// not have bound yet).
pub(crate) fn tcp_connect_retry(addr: &str, deadline: Instant) -> io::Result<Stream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(Stream::Tcp(s)),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("cannot reach {addr}: {e}"),
                    ));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Resolve a trailing `:0` in a `host:port` address to a concrete free
/// port by briefly binding a listener there. Used by the parent so every
/// child is handed the same concrete seed address.
pub(crate) fn resolve_port_zero(addr: &str) -> io::Result<String> {
    let Some((host, port)) = addr.rsplit_once(':') else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("seed address '{addr}' is not host:port"),
        ));
    };
    if port != "0" {
        return Ok(addr.to_string());
    }
    let l = TcpListener::bind((host, 0))?;
    let port = l.local_addr()?.port();
    Ok(format!("{host}:{port}"))
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

pub(crate) const KIND_DATA: u8 = 0;
const KIND_GOODBYE: u8 = 1;
const KIND_HELLO: u8 = 2;
const KIND_RESULT: u8 = 3;
const KIND_PING: u8 = 4;
const KIND_PONG: u8 = 5;
const KIND_DEATH: u8 = 6;
const KIND_RECONNECT: u8 = 7;
const KIND_RECONNECT_ACK: u8 = 8;
const KIND_REGISTER: u8 = 9;
const KIND_TABLE: u8 = 10;

/// Upper bound on a frame body. The length prefix is untrusted input
/// (a corrupted byte or a desynced stream after a partial write must
/// not make the reader allocate gigabytes before noticing); anything
/// larger fails as a malformed frame and poisons the mailbox cleanly.
/// Generous for this workspace's messages — a send above this limit is
/// rejected at the writer, not silently truncated.
pub(crate) const MAX_FRAME_BODY: usize = 256 << 20;

#[derive(Clone)]
pub(crate) enum Frame {
    /// Sequenced envelope (the payload of every `Comm` send).
    Data { seq: u64, env: Envelope },
    /// Sequenced teardown marker.
    Goodbye { seq: u64 },
    /// Link identification, first frame on a fresh mesh connection.
    Hello { rank: u32 },
    /// Rank result, reported on the parent control connection.
    Result { rank: u32, data: Vec<u8> },
    /// Heartbeat probe; `acked` piggybacks the sender's receive cursor.
    Ping { acked: u64 },
    /// Heartbeat reply; `acked` piggybacks the sender's receive cursor.
    Pong { acked: u64 },
    /// Sequenced membership broadcast: `rank` has been declared dead.
    Death { seq: u64, rank: u32 },
    /// First frame on a redialed connection: identifies the dialer and
    /// the next sequence number it expects to receive.
    Reconnect { rank: u32, next_expected: u64 },
    /// Acceptor's answer carrying its own receive cursor; both sides then
    /// retransmit exactly their unacknowledged suffix.
    ReconnectAck { next_expected: u64 },
    /// Seed-list bootstrap: a rank announces its data address.
    Register { rank: u32, addr: String },
    /// Seed-list bootstrap: the registry's complete peer table.
    Table { addrs: Vec<String> },
}

pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    if let Frame::Data { seq, env } = frame {
        // Hot path: fixed-size header on the stack, payload written
        // directly from its shared buffer — no per-frame allocation, no
        // full-payload copy.
        let body_len = 32 + env.payload.len();
        if body_len > MAX_FRAME_BODY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "message of {} bytes exceeds the frame limit",
                    env.payload.len()
                ),
            ));
        }
        let mut head = [0u8; 5 + 32];
        head[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        head[4] = KIND_DATA;
        head[5..13].copy_from_slice(&seq.to_le_bytes());
        head[13..21].copy_from_slice(&env.ctx.to_le_bytes());
        head[21..25].copy_from_slice(&(env.src as u32).to_le_bytes());
        head[25..33].copy_from_slice(&env.tag.to_le_bytes());
        head[33..37].copy_from_slice(&(env.payload.len() as u32).to_le_bytes());
        w.write_all(&head)?;
        w.write_all(&env.payload)?;
        return w.flush();
    }
    let mut body = Vec::new();
    let kind = match frame {
        Frame::Data { .. } => unreachable!("handled above"),
        Frame::Goodbye { seq } => {
            body.extend_from_slice(&seq.to_le_bytes());
            KIND_GOODBYE
        }
        Frame::Hello { rank } => {
            body.extend_from_slice(&rank.to_le_bytes());
            KIND_HELLO
        }
        Frame::Result { rank, data } => {
            body.extend_from_slice(&rank.to_le_bytes());
            body.extend_from_slice(&(data.len() as u32).to_le_bytes());
            body.extend_from_slice(data);
            KIND_RESULT
        }
        Frame::Ping { acked } => {
            body.extend_from_slice(&acked.to_le_bytes());
            KIND_PING
        }
        Frame::Pong { acked } => {
            body.extend_from_slice(&acked.to_le_bytes());
            KIND_PONG
        }
        Frame::Death { seq, rank } => {
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&rank.to_le_bytes());
            KIND_DEATH
        }
        Frame::Reconnect {
            rank,
            next_expected,
        } => {
            body.extend_from_slice(&rank.to_le_bytes());
            body.extend_from_slice(&next_expected.to_le_bytes());
            KIND_RECONNECT
        }
        Frame::ReconnectAck { next_expected } => {
            body.extend_from_slice(&next_expected.to_le_bytes());
            KIND_RECONNECT_ACK
        }
        Frame::Register { rank, addr } => {
            body.extend_from_slice(&rank.to_le_bytes());
            body.extend_from_slice(&(addr.len() as u32).to_le_bytes());
            body.extend_from_slice(addr.as_bytes());
            KIND_REGISTER
        }
        Frame::Table { addrs } => {
            body.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
            for addr in addrs {
                body.extend_from_slice(&(addr.len() as u32).to_le_bytes());
                body.extend_from_slice(addr.as_bytes());
            }
            KIND_TABLE
        }
    };
    if body.len() > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame body exceeds the frame limit",
        ));
    }
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    head[4] = kind;
    w.write_all(&head)?;
    w.write_all(&body)?;
    w.flush()
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn read_string(buf: &[u8], at: usize) -> Option<(String, usize)> {
    if buf.len() < at + 4 {
        return None;
    }
    let len = read_u32(buf, at) as usize;
    if buf.len() < at + 4 + len {
        return None;
    }
    let s = String::from_utf8(buf[at + 4..at + 4 + len].to_vec()).ok()?;
    Some((s, at + 4 + len))
}

pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let body_len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let kind = head[4];
    // The length prefix is untrusted: validate before allocating, so a
    // corrupted byte yields a clean "malformed frame" poison instead of
    // a multi-gigabyte allocation.
    if body_len > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {body_len} bytes exceeds the frame limit"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    match kind {
        KIND_DATA => {
            if body.len() < 32 {
                return Err(bad("short data frame"));
            }
            let seq = read_u64(&body, 0);
            let ctx = read_u64(&body, 8);
            let src = read_u32(&body, 16) as usize;
            let tag = read_u64(&body, 20);
            let len = read_u32(&body, 28) as usize;
            if body.len() != 32 + len {
                return Err(bad("data frame length mismatch"));
            }
            Ok(Frame::Data {
                seq,
                env: Envelope {
                    ctx,
                    src,
                    tag,
                    payload: Bytes::copy_from_slice(&body[32..]),
                },
            })
        }
        KIND_GOODBYE => {
            if body.len() != 8 {
                return Err(bad("bad goodbye frame"));
            }
            Ok(Frame::Goodbye {
                seq: read_u64(&body, 0),
            })
        }
        KIND_HELLO => {
            if body.len() != 4 {
                return Err(bad("bad hello frame"));
            }
            Ok(Frame::Hello {
                rank: read_u32(&body, 0),
            })
        }
        KIND_RESULT => {
            if body.len() < 8 {
                return Err(bad("short result frame"));
            }
            let rank = read_u32(&body, 0);
            let len = read_u32(&body, 4) as usize;
            if body.len() != 8 + len {
                return Err(bad("result frame length mismatch"));
            }
            Ok(Frame::Result {
                rank,
                data: body[8..].to_vec(),
            })
        }
        KIND_PING => {
            if body.len() != 8 {
                return Err(bad("bad ping frame"));
            }
            Ok(Frame::Ping {
                acked: read_u64(&body, 0),
            })
        }
        KIND_PONG => {
            if body.len() != 8 {
                return Err(bad("bad pong frame"));
            }
            Ok(Frame::Pong {
                acked: read_u64(&body, 0),
            })
        }
        KIND_DEATH => {
            if body.len() != 12 {
                return Err(bad("bad death frame"));
            }
            Ok(Frame::Death {
                seq: read_u64(&body, 0),
                rank: read_u32(&body, 8),
            })
        }
        KIND_RECONNECT => {
            if body.len() != 12 {
                return Err(bad("bad reconnect frame"));
            }
            Ok(Frame::Reconnect {
                rank: read_u32(&body, 0),
                next_expected: read_u64(&body, 4),
            })
        }
        KIND_RECONNECT_ACK => {
            if body.len() != 8 {
                return Err(bad("bad reconnect-ack frame"));
            }
            Ok(Frame::ReconnectAck {
                next_expected: read_u64(&body, 0),
            })
        }
        KIND_REGISTER => {
            if body.len() < 8 {
                return Err(bad("short register frame"));
            }
            let rank = read_u32(&body, 0);
            let Some((addr, end)) = read_string(&body, 4) else {
                return Err(bad("bad register frame"));
            };
            if end != body.len() {
                return Err(bad("register frame length mismatch"));
            }
            Ok(Frame::Register { rank, addr })
        }
        KIND_TABLE => {
            if body.len() < 4 {
                return Err(bad("short table frame"));
            }
            let n = read_u32(&body, 0) as usize;
            let mut addrs = Vec::with_capacity(n.min(4096));
            let mut at = 4;
            for _ in 0..n {
                let Some((addr, next)) = read_string(&body, at) else {
                    return Err(bad("bad table frame"));
                };
                addrs.push(addr);
                at = next;
            }
            if at != body.len() {
                return Err(bad("table frame length mismatch"));
            }
            Ok(Frame::Table { addrs })
        }
        other => Err(bad(&format!("unknown frame kind {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Peer links
// ---------------------------------------------------------------------------

/// Per-link send-side state, guarded by `Link::q`.
struct LinkQ {
    /// Unsequenced control frames (pings, pongs, reconnect acks); always
    /// written before sequenced traffic.
    ctrl: VecDeque<Frame>,
    /// Sequenced frames not yet acknowledged by the peer. The first
    /// `sent` entries are on the current stream; the rest await
    /// transmission (or retransmission after a reconnect).
    unacked: VecDeque<(u64, Frame)>,
    /// How many of `unacked` have been written to the current stream.
    sent: usize,
    /// Next outgoing sequence number.
    next_seq_out: u64,
    /// The live connection's write half; `None` while the link is down.
    stream: Option<Stream>,
    /// Bumped on every (re)connection, so a stale reader or writer error
    /// cannot tear down a fresh stream.
    generation: u64,
    /// Local teardown: the writer exits once the queues are drained.
    closed: bool,
}

/// One peer link: queue, receive cursor, liveness bookkeeping.
struct Link {
    peer: usize,
    q: Mutex<LinkQ>,
    cv: Condvar,
    /// Receive cursor: sequence number expected next from this peer.
    /// Frames below it are duplicates (dropped after a retransmit).
    next_expected_in: AtomicU64,
    /// Milliseconds (mesh epoch) of the last inbound frame.
    last_heard: AtomicU64,
    /// Milliseconds+1 of an EOF-without-goodbye awaiting reconnect;
    /// 0 = none pending.
    eof_at: AtomicU64,
    dead: AtomicBool,
    goodbye_seen: AtomicBool,
}

impl Link {
    fn new(peer: usize) -> Link {
        Link {
            peer,
            q: Mutex::new(LinkQ {
                ctrl: VecDeque::new(),
                unacked: VecDeque::new(),
                sent: 0,
                next_seq_out: 0,
                stream: None,
                generation: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            next_expected_in: AtomicU64::new(0),
            last_heard: AtomicU64::new(0),
            eof_at: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            goodbye_seen: AtomicBool::new(false),
        }
    }
}

/// Mesh-wide shared state: every reader/writer/monitor thread holds an
/// `Arc<Mesh>`.
struct Mesh {
    rank: usize,
    mailbox: Arc<Mailbox>,
    links: Vec<Option<Arc<Link>>>,
    /// Reliable mode: heartbeats, acks/retransmits, reconnect, death
    /// marking. Off (legacy): EOF-only detection, mailbox poisoning.
    reliable: bool,
    hb_interval: Duration,
    hb_timeout: Duration,
    epoch: Instant,
    /// Teardown-barrier wakeups (goodbye arrivals, deaths, poisons).
    goodbye_mu: Mutex<()>,
    goodbye_cv: Condvar,
    /// Seed-mode peer table for redials; `None` entries in dir mode.
    peer_addrs: Vec<Option<String>>,
    /// Shared-dir rendezvous root (redial target in dir mode; also the
    /// parent control endpoint).
    dir: PathBuf,
}

impl Mesh {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Is this rank the dialing side of the link to `peer`? Mesh setup
    /// dials every lower rank, so redials follow the same orientation.
    fn dialer_of(&self, peer: usize) -> bool {
        peer < self.rank
    }

    /// Enqueue a sequenced frame (Data/Goodbye/Death). Silently dropped
    /// when the peer is already dead.
    fn send_seq(&self, link: &Link, build: impl FnOnce(u64) -> Frame) {
        if link.dead.load(Ordering::Acquire) {
            return;
        }
        let mut q = link.q.lock();
        let seq = q.next_seq_out;
        q.next_seq_out += 1;
        q.unacked.push_back((seq, build(seq)));
        drop(q);
        link.cv.notify_all();
    }

    /// Enqueue an unsequenced control frame. `front` jumps the control
    /// queue (used for `ReconnectAck`, which must be the first frame on
    /// a fresh stream).
    fn send_ctrl(&self, link: &Link, frame: Frame, front: bool) {
        if link.dead.load(Ordering::Acquire) {
            return;
        }
        let mut q = link.q.lock();
        if front {
            q.ctrl.push_front(frame);
        } else {
            q.ctrl.push_back(frame);
        }
        drop(q);
        link.cv.notify_all();
    }

    /// Drop retransmit-buffered frames the peer has acknowledged
    /// (its receive cursor is `acked`: everything below is delivered).
    fn apply_ack(&self, link: &Link, acked: u64) {
        let mut q = link.q.lock();
        while let Some(&(seq, _)) = q.unacked.front() {
            if seq >= acked {
                break;
            }
            q.unacked.pop_front();
            q.sent = q.sent.saturating_sub(1);
        }
    }

    /// Receive-side sequencing: accept exactly the expected frame, drop
    /// retransmitted duplicates, treat a gap as stream corruption. The
    /// cursor advances via compare-exchange so that when a stale reader
    /// (replaced stream, not yet torn down) races the live one over a
    /// retransmitted frame, exactly one of them delivers it — the loser
    /// re-reads the cursor and sees a duplicate.
    fn accept_seq(&self, link: &Link, seq: u64) -> bool {
        loop {
            let expected = link.next_expected_in.load(Ordering::Acquire);
            if seq < expected {
                return false; // duplicate of an already-delivered frame
            }
            if seq > expected {
                self.mailbox.poison(format!(
                    "rank {} stream desynchronized (got seq {seq}, expected {expected})",
                    link.peer
                ));
                self.goodbye_cv.notify_all();
                return false;
            }
            if link
                .next_expected_in
                .compare_exchange(expected, expected + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Idempotently declare `link`'s peer dead: mark the mailbox, wake
    /// everything blocked on the link, and eagerly relay a sequenced
    /// `Death` frame to every other live peer so all survivors converge
    /// on the same membership view.
    fn declare_dead(&self, link: &Link, reason: &str) {
        if link.dead.swap(true, Ordering::AcqRel) {
            return;
        }
        eprintln!(
            "mini-mpi rank {}: declared rank {} dead ({reason})",
            self.rank, link.peer
        );
        {
            let mut q = link.q.lock();
            if let Some(s) = &q.stream {
                s.shutdown();
            }
            q.stream = None;
        }
        self.mailbox.mark_dead(link.peer);
        link.cv.notify_all();
        self.goodbye_cv.notify_all();
        let dead_rank = link.peer as u32;
        for other in self.links.iter().flatten() {
            if other.peer != link.peer {
                self.send_seq(other, |seq| Frame::Death {
                    seq,
                    rank: dead_rank,
                });
            }
        }
    }

    /// A peer relayed a death report. Reports about ourselves are
    /// ignored (we are demonstrably alive; the reporter may sit on the
    /// other side of a partition).
    fn death_reported(&self, rank: usize, from: usize) {
        if rank == self.rank || rank >= self.links.len() {
            return;
        }
        if let Some(link) = &self.links[rank] {
            self.declare_dead(link, &format!("reported dead by rank {from}"));
        }
    }

    /// Reader-side EOF/error handling.
    fn reader_lost(&self, link: &Link, my_gen: u64, err: &io::Error) {
        if link.goodbye_seen.load(Ordering::Acquire) || link.dead.load(Ordering::Acquire) {
            return; // clean teardown or already-handled death
        }
        if !self.reliable {
            // Legacy semantics: any EOF before goodbye is a death and
            // poisons every receive.
            let reason = if err.kind() == io::ErrorKind::UnexpectedEof {
                format!("rank {} died (connection closed before goodbye)", link.peer)
            } else {
                format!("rank {} died ({err})", link.peer)
            };
            self.mailbox.poison(reason);
            self.goodbye_cv.notify_all();
            return;
        }
        // Reliable: arm the reconnect window and wake the writer (the
        // dialer side redials; the acceptor side waits for a Reconnect,
        // bounded by the monitor's EOF window). A stale reader — its
        // stream was already replaced by a reconnect — must not touch
        // anything: clearing the fresh stream or arming the EOF window
        // here would sabotage the link that just recovered.
        {
            let mut q = link.q.lock();
            if q.generation != my_gen {
                return;
            }
            q.stream = None;
            q.sent = 0;
        }
        link.eof_at
            .compare_exchange(0, self.now_ms() + 1, Ordering::AcqRel, Ordering::Relaxed)
            .ok();
        link.cv.notify_all();
    }

    /// Install a fresh stream on `link` (reconnect handshake, either
    /// side): prune frames the peer acknowledged, rewind the send cursor
    /// so the unacknowledged suffix is retransmitted, bump the
    /// generation, and hand back the new generation id.
    fn install_stream(
        &self,
        link: &Link,
        stream: Stream,
        peer_next_expected: u64,
    ) -> io::Result<u64> {
        let write_half = stream.try_clone()?;
        let mut q = link.q.lock();
        // Force any reader still blocked on the replaced stream (a
        // delayed or black-holed-but-open socket never EOFs on its own)
        // off the wire: were it left running, a late frame on the stale
        // socket would race the fresh reader for the receive cursor.
        if let Some(old) = q.stream.take() {
            old.shutdown();
        }
        while let Some(&(seq, _)) = q.unacked.front() {
            if seq >= peer_next_expected {
                break;
            }
            q.unacked.pop_front();
        }
        q.sent = 0;
        q.generation += 1;
        let gen = q.generation;
        q.stream = Some(write_half);
        drop(q);
        link.eof_at.store(0, Ordering::Release);
        link.last_heard.store(self.now_ms(), Ordering::Release);
        link.cv.notify_all();
        Ok(gen)
    }

    /// Dialer-side redial with bounded backoff. Returns `false` when the
    /// retries are exhausted (caller declares the peer dead).
    fn redial(self: &Arc<Self>, link: &Arc<Link>) -> bool {
        for backoff in RECONNECT_BACKOFF_MS {
            std::thread::sleep(Duration::from_millis(backoff));
            if link.dead.load(Ordering::Acquire) || link.q.lock().closed {
                return true; // resolved elsewhere; nothing left to do
            }
            let deadline = Instant::now() + Duration::from_millis(250);
            let dial = match &self.peer_addrs[link.peer] {
                Some(addr) => tcp_connect_retry(addr, deadline),
                None => connect_endpoint(&self.dir, &format!("r{}", link.peer), deadline),
            };
            let Ok(mut s) = dial else { continue };
            if write_frame(
                &mut s,
                &Frame::Reconnect {
                    rank: self.rank as u32,
                    next_expected: link.next_expected_in.load(Ordering::Acquire),
                },
            )
            .is_err()
            {
                continue;
            }
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let peer_next = loop {
                match read_frame(&mut s) {
                    Ok(Frame::ReconnectAck { next_expected }) => break Some(next_expected),
                    // The peer's writer may slip a heartbeat in first.
                    Ok(Frame::Ping { acked }) | Ok(Frame::Pong { acked }) => {
                        self.apply_ack(link, acked);
                    }
                    Ok(_) | Err(_) => break None,
                }
            };
            let Some(peer_next) = peer_next else { continue };
            let _ = s.set_read_timeout(None);
            let Ok(gen) = self.install_stream(link, s.try_clone().ok().unwrap_or(s), peer_next)
            else {
                continue;
            };
            // `install_stream` cloned a write half; this clone reads.
            let read_half = {
                let q = link.q.lock();
                q.stream.as_ref().and_then(|st| st.try_clone().ok())
            };
            if let Some(read_half) = read_half {
                spawn_reader(self.clone(), link.clone(), read_half, gen);
                return true;
            }
        }
        false
    }
}

/// Per-link reader thread body: demux inbound frames until goodbye,
/// EOF, or death.
fn spawn_reader(mesh: Arc<Mesh>, link: Arc<Link>, mut stream: Stream, my_gen: u64) {
    let name = format!("mini-mpi-r{}-from-{}", mesh.rank, link.peer);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(frame) => {
                    link.last_heard.store(mesh.now_ms(), Ordering::Release);
                    match frame {
                        Frame::Data { seq, env } => {
                            if mesh.accept_seq(&link, seq) {
                                mesh.mailbox.push(env);
                            }
                        }
                        Frame::Goodbye { seq } => {
                            // Do NOT exit here: the peer that sent this
                            // goodbye is parked in its teardown barrier
                            // and keeps heartbeat-monitoring us until
                            // *our* goodbye arrives. If this reader died
                            // now, its pings would go unanswered and a
                            // perfectly live rank would be declared dead
                            // whenever ranks finish further apart than
                            // the heartbeat timeout. Keep serving
                            // Ping→Pong (and acks) until EOF/teardown.
                            if mesh.accept_seq(&link, seq) {
                                link.goodbye_seen.store(true, Ordering::Release);
                                mesh.goodbye_cv.notify_all();
                            }
                        }
                        Frame::Death { seq, rank } => {
                            if mesh.accept_seq(&link, seq) {
                                mesh.death_reported(rank as usize, link.peer);
                            }
                        }
                        Frame::Ping { acked } => {
                            mesh.apply_ack(&link, acked);
                            let pong = Frame::Pong {
                                acked: link.next_expected_in.load(Ordering::Acquire),
                            };
                            mesh.send_ctrl(&link, pong, false);
                        }
                        Frame::Pong { acked } => mesh.apply_ack(&link, acked),
                        Frame::Hello { .. }
                        | Frame::Result { .. }
                        | Frame::Reconnect { .. }
                        | Frame::ReconnectAck { .. }
                        | Frame::Register { .. }
                        | Frame::Table { .. } => {
                            mesh.mailbox.poison(format!(
                                "rank {} sent an unexpected control frame",
                                link.peer
                            ));
                            mesh.goodbye_cv.notify_all();
                            return;
                        }
                    }
                }
                Err(e) => {
                    mesh.reader_lost(&link, my_gen, &e);
                    return;
                }
            }
        })
        .expect("failed to spawn reader thread");
}

/// Per-link writer thread body: drains the control queue and the
/// unacknowledged suffix onto the live stream; redials (dialer side) or
/// parks (acceptor side) while the link is down.
fn writer_loop(mesh: &Arc<Mesh>, link: &Arc<Link>) {
    let mut cur_gen: u64 = u64::MAX;
    let mut cur: Option<Stream> = None;
    'outer: loop {
        let mut batch: Vec<Frame> = Vec::new();
        let mut want_redial = false;
        {
            let mut q = link.q.lock();
            loop {
                if link.dead.load(Ordering::Acquire) {
                    return;
                }
                if q.stream.is_none() {
                    if q.closed {
                        return; // teardown with a down link: give up
                    }
                    if mesh.reliable && mesh.dialer_of(link.peer) {
                        want_redial = true;
                        break;
                    }
                    // Acceptor side: a Reconnect install (or death) wakes us.
                    link.cv.wait(&mut q);
                    continue;
                }
                if !q.ctrl.is_empty() || q.sent < q.unacked.len() {
                    break;
                }
                if q.closed {
                    return; // drained: every queued frame is on the wire
                }
                link.cv.wait(&mut q);
            }
            if !want_redial {
                if q.generation != cur_gen || cur.is_none() {
                    cur_gen = q.generation;
                    cur = q.stream.as_ref().and_then(|s| s.try_clone().ok());
                    if cur.is_none() {
                        q.stream = None;
                        q.sent = 0;
                        continue 'outer;
                    }
                }
                batch.extend(q.ctrl.drain(..));
                let upto = q.unacked.len();
                for i in q.sent..upto {
                    batch.push(q.unacked[i].1.clone());
                }
                q.sent = upto;
                if !mesh.reliable {
                    // Legacy mode has no acks: nothing is ever
                    // retransmitted, so the buffer is dropped as soon as
                    // frames are handed to the wire.
                    q.unacked.clear();
                    q.sent = 0;
                }
            }
        }
        if want_redial {
            if !mesh.redial(link) {
                mesh.declare_dead(link, "reconnect retries exhausted");
                return;
            }
            cur = None;
            continue;
        }
        let Some(stream) = cur.as_mut() else { continue };
        let mut error = None;
        for frame in &batch {
            if let Err(e) = write_frame(stream, frame) {
                error = Some(e);
                break;
            }
        }
        let Some(e) = error else { continue };
        if !mesh.reliable {
            mesh.mailbox
                .poison(format!("rank {} died (write failed: {e})", link.peer));
            mesh.goodbye_cv.notify_all();
            return;
        }
        let mut q = link.q.lock();
        if q.generation == cur_gen {
            // Shut the socket down (not just drop our clone): the reader
            // may be blocked on the same fd without having seen an error
            // yet, and must not survive into the next generation.
            if let Some(s) = q.stream.take() {
                s.shutdown();
            }
            q.sent = 0;
        }
        drop(q);
        cur = None;
    }
}

/// Heartbeat monitor: pings every live link each interval, declares
/// peers dead on silence beyond the timeout or an expired
/// EOF-without-goodbye reconnect window.
fn monitor_loop(mesh: &Arc<Mesh>, stop: &AtomicBool) {
    let eof_window = mesh.hb_timeout.min(EOF_DEATH_WINDOW_CAP).as_millis() as u64;
    let timeout_ms = mesh.hb_timeout.as_millis() as u64;
    let tick = mesh
        .hb_interval
        .min(Duration::from_millis(200))
        .max(Duration::from_millis(5));
    let mut last_ping: u64 = 0;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let now = mesh.now_ms();
        let ping_due = now.saturating_sub(last_ping) >= mesh.hb_interval.as_millis() as u64;
        if ping_due {
            last_ping = now;
        }
        for link in mesh.links.iter().flatten() {
            if link.dead.load(Ordering::Acquire) || link.goodbye_seen.load(Ordering::Acquire) {
                continue;
            }
            let up = link.q.lock().stream.is_some();
            if ping_due && up {
                let ping = Frame::Ping {
                    acked: link.next_expected_in.load(Ordering::Acquire),
                };
                mesh.send_ctrl(link, ping, false);
            }
            if now.saturating_sub(link.last_heard.load(Ordering::Acquire)) > timeout_ms {
                mesh.declare_dead(link, &format!("heartbeat timeout ({timeout_ms} ms silent)"));
                continue;
            }
            let eof = link.eof_at.load(Ordering::Acquire);
            if eof != 0 && !up && now.saturating_sub(eof - 1) > eof_window {
                mesh.declare_dead(link, "connection closed before goodbye");
            }
        }
    }
}

/// Reconnect acceptor: after mesh setup the listener moves here; each
/// inbound connection opens with a `Reconnect` frame identifying the
/// dialer, and the link's unacknowledged suffix is retransmitted on the
/// fresh stream.
fn accept_loop(mesh: &Arc<Mesh>, listener: Listener, stop: &AtomicBool) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                let _ = stream.set_nonblocking(false);
                let mesh = mesh.clone();
                let _ = std::thread::Builder::new()
                    .name(format!("mini-mpi-reconnect-{}", mesh.rank))
                    .spawn(move || {
                        let mut stream = stream;
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let Ok(Frame::Reconnect {
                            rank,
                            next_expected,
                        }) = read_frame(&mut stream)
                        else {
                            return;
                        };
                        let _ = stream.set_read_timeout(None);
                        let peer = rank as usize;
                        if peer >= mesh.links.len() {
                            return;
                        }
                        let Some(link) = mesh.links[peer].clone() else {
                            return;
                        };
                        if link.dead.load(Ordering::Acquire) {
                            stream.shutdown();
                            return;
                        }
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let Ok(gen) = mesh.install_stream(&link, stream, next_expected) else {
                            return;
                        };
                        // First frame on the fresh stream: our receive
                        // cursor, so the dialer prunes and retransmits.
                        let ack = Frame::ReconnectAck {
                            next_expected: link.next_expected_in.load(Ordering::Acquire),
                        };
                        mesh.send_ctrl(&link, ack, true);
                        spawn_reader(mesh.clone(), link, read_half, gen);
                    });
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Peer mesh
// ---------------------------------------------------------------------------

/// One rank's view of a socket world: the shared mesh plus the worker
/// threads joined at teardown. Lives inside [`WorldInner`].
pub(crate) struct SocketPeers {
    mesh: Arc<Mesh>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

/// Mesh configuration decoded from the child environment.
struct MeshOpts {
    force_tcp: bool,
    seeds: Option<String>,
    registry_bind: Option<String>,
    /// Seed-list mode: the IP to advertise in the `Register` frame when
    /// the interface auto-detection (the registration connection's local
    /// address) picks the wrong one — multi-homed hosts, NAT.
    advertise_ip: Option<String>,
    heartbeat_ms: u64,
    heartbeat_timeout_ms: u64,
}

/// Rank 0's in-process registry: collect `size` `Register` frames, then
/// answer every registrant with the complete `Table`.
fn run_registry(bind: &str, size: usize) -> io::Result<()> {
    let listener = TcpListener::bind(bind)?;
    let mut conns: Vec<(usize, Stream)> = Vec::with_capacity(size);
    let mut addrs: Vec<Option<String>> = vec![None; size];
    let mut registered = 0usize;
    while registered < size {
        let (s, _) = listener.accept()?;
        let mut s = Stream::Tcp(s);
        let _ = s.set_read_timeout(Some(CONNECT_TIMEOUT));
        match read_frame(&mut s) {
            Ok(Frame::Register { rank, addr }) => {
                let rank = rank as usize;
                if rank >= size || addrs[rank].is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("registry: duplicate or out-of-range rank {rank}"),
                    ));
                }
                addrs[rank] = Some(addr);
                registered += 1;
                conns.push((rank, s));
            }
            _ => s.shutdown(), // stray connection: close it, don't hold it open
        }
    }
    let table: Vec<String> = addrs.into_iter().map(|a| a.unwrap()).collect();
    for (rank, mut s) in conns {
        // A registrant that died after registering must not stall every
        // *other* rank's bootstrap at the connect timeout: log, skip the
        // broken connection, keep handing the table to the rest. (The
        // death itself is the heartbeat layer's business, not ours.)
        if let Err(e) = write_frame(
            &mut s,
            &Frame::Table {
                addrs: table.clone(),
            },
        ) {
            eprintln!("mini-mpi registry: table write to rank {rank} failed ({e}); continuing");
        }
    }
    Ok(())
}

impl SocketPeers {
    pub(crate) fn rank(&self) -> usize {
        self.mesh.rank
    }

    pub(crate) fn mailbox(&self) -> &Mailbox {
        &self.mesh.mailbox
    }

    /// Enqueue an envelope for `dest` (own rank: direct mailbox push).
    /// Panics if the world is already poisoned — a send to (or via) a
    /// dead mesh must fail loudly, exactly like a receive. A send to a
    /// rank declared dead by the membership layer is silently dropped
    /// (degraded mode: survivors keep working).
    pub(crate) fn post(&self, dest: usize, env: Envelope) {
        if let Some(reason) = self.mesh.mailbox.is_poisoned() {
            panic!("mini-mpi: send failed: {reason}");
        }
        if dest == self.mesh.rank {
            self.mesh.mailbox.push(env);
            return;
        }
        let link = self.mesh.links[dest]
            .as_ref()
            .expect("non-self peer must have a link");
        if link.dead.load(Ordering::Acquire) {
            return;
        }
        self.mesh.send_seq(link, |seq| Frame::Data { seq, env });
    }

    /// Establish the full mesh for `rank` of `size`: shared-dir
    /// rendezvous by default, seed-list registry bootstrap when
    /// `opts.seeds` is set.
    fn connect(dir: &Path, rank: usize, size: usize, opts: &MeshOpts) -> io::Result<SocketPeers> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let mut registry_thread = None;
        let mut peer_addrs: Vec<Option<String>> = vec![None; size];
        let mut streams: Vec<Option<Stream>> = (0..size).map(|_| None).collect();

        let listener = if let Some(seeds) = &opts.seeds {
            // --- Seed-list bootstrap -----------------------------------
            let seed = seeds
                .split(',')
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty seed list"))?
                .to_string();
            // A loopback seed is a single-host world and stays entirely
            // on 127.0.0.1. Any other seed host means peers may live on
            // other hosts: bind the data listener on every interface and
            // advertise a routable address — by default the local IP of
            // the registration connection (the interface actually routed
            // toward the seed), overridable with `MINI_MPI_ADVERTISE_IP`
            // for multi-homed or NATed hosts.
            let seed_host = seed.rsplit_once(':').map(|(h, _)| h).unwrap_or("");
            let single_host = matches!(seed_host, "127.0.0.1" | "localhost" | "::1" | "[::1]");
            let bind_ip = if single_host { "127.0.0.1" } else { "0.0.0.0" };
            let data_listener = TcpListener::bind((bind_ip, 0))?;
            let data_port = data_listener.local_addr()?.port();
            if rank == 0 {
                let bind = opts.registry_bind.clone().unwrap_or_else(|| seed.clone());
                let sz = size;
                registry_thread = Some(
                    std::thread::Builder::new()
                        .name("mini-mpi-registry".into())
                        .spawn(move || {
                            if let Err(e) = run_registry(&bind, sz) {
                                eprintln!("mini-mpi registry: {e}");
                            }
                        })
                        .expect("failed to spawn registry thread"),
                );
            }
            // Every rank — rank 0 included — registers through the seed
            // address, so a proxy fronting it observes every link.
            let mut reg = tcp_connect_retry(&seed, deadline)?;
            let advertise_ip = match &opts.advertise_ip {
                Some(ip) => ip.clone(),
                None if single_host => "127.0.0.1".to_string(),
                None => match &reg {
                    Stream::Tcp(s) => s.local_addr()?.ip().to_string(),
                    Stream::Unix(_) => "127.0.0.1".to_string(),
                },
            };
            let my_addr = format!("{advertise_ip}:{data_port}");
            write_frame(
                &mut reg,
                &Frame::Register {
                    rank: rank as u32,
                    addr: my_addr,
                },
            )?;
            reg.set_read_timeout(Some(CONNECT_TIMEOUT))?;
            let table = match read_frame(&mut reg)? {
                Frame::Table { addrs } if addrs.len() == size => addrs,
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "registry handed back a malformed peer table",
                    ))
                }
            };
            drop(reg);
            for (peer, addr) in table.into_iter().enumerate() {
                if peer != rank {
                    peer_addrs[peer] = Some(addr);
                }
            }
            // Mesh over the table: dial every lower rank, accept from
            // every higher rank.
            for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
                let addr = peer_addrs[peer].as_deref().unwrap();
                let mut s = tcp_connect_retry(addr, deadline)?;
                write_frame(&mut s, &Frame::Hello { rank: rank as u32 })?;
                *slot = Some(s);
            }
            let listener = Listener::Tcp(data_listener);
            accept_higher(&listener, rank, size, &mut streams)?;
            listener
        } else {
            // --- Shared-dir rendezvous ---------------------------------
            let listener = bind_endpoint(dir, &format!("r{rank}"), opts.force_tcp)?;
            for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
                let mut s = connect_endpoint(dir, &format!("r{peer}"), deadline)?;
                write_frame(&mut s, &Frame::Hello { rank: rank as u32 })?;
                *slot = Some(s);
            }
            accept_higher(&listener, rank, size, &mut streams)?;
            listener
        };

        let reliable = opts.heartbeat_ms > 0;
        let mesh = Arc::new(Mesh {
            rank,
            mailbox: Arc::new(Mailbox::new()),
            links: (0..size)
                .map(|p| (p != rank).then(|| Arc::new(Link::new(p))))
                .collect(),
            reliable,
            hb_interval: Duration::from_millis(opts.heartbeat_ms.max(1)),
            hb_timeout: Duration::from_millis(opts.heartbeat_timeout_ms.max(1)),
            epoch: Instant::now(),
            goodbye_mu: Mutex::new(()),
            goodbye_cv: Condvar::new(),
            peer_addrs,
            dir: dir.to_path_buf(),
        });

        let mut threads = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            let link = mesh.links[peer].as_ref().unwrap().clone();
            let gen = mesh
                .install_stream(&link, stream.try_clone()?, 0)
                .unwrap_or(1);
            spawn_reader(mesh.clone(), link.clone(), stream, gen);
            let mesh2 = mesh.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-w{rank}-to-{peer}"))
                    .spawn(move || writer_loop(&mesh2, &link))
                    .expect("failed to spawn writer thread"),
            );
        }
        let stop = Arc::new(AtomicBool::new(false));
        if reliable {
            let mesh2 = mesh.clone();
            let stop2 = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-monitor-{rank}"))
                    .spawn(move || monitor_loop(&mesh2, &stop2))
                    .expect("failed to spawn monitor thread"),
            );
            let mesh2 = mesh.clone();
            let stop2 = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-accept-{rank}"))
                    .spawn(move || accept_loop(&mesh2, listener, &stop2))
                    .expect("failed to spawn accept thread"),
            );
        }
        if let Some(h) = registry_thread {
            threads.push(h);
        }
        Ok(SocketPeers {
            mesh,
            threads: Mutex::new(threads),
            stop,
        })
    }

    /// Teardown barrier: flush a goodbye to every live peer, wait until
    /// every live peer's goodbye arrived (dead peers are excused, a
    /// poisoned legacy mesh gives up, the timeout bounds everything),
    /// then drain the writers and close the sockets.
    fn shutdown(&self) {
        let mesh = &self.mesh;
        for link in mesh.links.iter().flatten() {
            mesh.send_seq(link, |seq| Frame::Goodbye { seq });
        }
        let deadline = Instant::now() + GOODBYE_TIMEOUT;
        {
            let mut g = mesh.goodbye_mu.lock();
            loop {
                let all = mesh.links.iter().flatten().all(|l| {
                    l.goodbye_seen.load(Ordering::Acquire) || l.dead.load(Ordering::Acquire)
                });
                if all || mesh.mailbox.is_poisoned().is_some() {
                    break;
                }
                if mesh.goodbye_cv.wait_until(&mut g, deadline).timed_out() {
                    break;
                }
            }
        }
        for link in mesh.links.iter().flatten() {
            link.q.lock().closed = true;
            link.cv.notify_all();
        }
        self.stop.store(true, Ordering::Release);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
        for link in mesh.links.iter().flatten() {
            let q = link.q.lock();
            if let Some(s) = &q.stream {
                s.shutdown();
            }
        }
    }
}

/// Accept one mesh connection from every rank above `rank`, validating
/// the identifying `Hello`.
fn accept_higher(
    listener: &Listener,
    rank: usize,
    size: usize,
    streams: &mut [Option<Stream>],
) -> io::Result<()> {
    for _ in rank + 1..size {
        let mut s = listener.accept()?;
        match read_frame(&mut s)? {
            Frame::Hello { rank: peer } => {
                let peer = peer as usize;
                if peer <= rank || peer >= size || streams[peer].is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected hello from rank {peer}"),
                    ));
                }
                streams[peer] = Some(s);
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected hello frame",
                ))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Child / parent orchestration
// ---------------------------------------------------------------------------

/// Environment of a spawned rank.
pub(crate) struct ChildEnv {
    pub dir: PathBuf,
    pub rank: usize,
    pub size: usize,
    pub program: String,
    pub input: Vec<u8>,
    pub tcp: bool,
    pub seeds: Option<String>,
    pub registry_bind: Option<String>,
    pub advertise_ip: Option<String>,
    pub heartbeat_ms: u64,
    pub heartbeat_timeout_ms: u64,
}

/// Decode the child-side environment, if present.
pub(crate) fn child_env() -> Option<ChildEnv> {
    let rank = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let size = std::env::var(ENV_SIZE).ok()?.parse().ok()?;
    let dir = PathBuf::from(std::env::var(ENV_DIR).ok()?);
    let program = std::env::var(ENV_PROGRAM).ok()?;
    let input = hex_decode(&std::env::var(ENV_INPUT).unwrap_or_default())?;
    let tcp = std::env::var(ENV_TCP).is_ok_and(|v| v == "1");
    let seeds = std::env::var(ENV_SEEDS).ok().filter(|s| !s.is_empty());
    let registry_bind = std::env::var(ENV_REGISTRY_BIND)
        .ok()
        .filter(|s| !s.is_empty());
    let advertise_ip = std::env::var(ENV_ADVERTISE_IP)
        .ok()
        .filter(|s| !s.is_empty());
    let heartbeat_ms = std::env::var(ENV_HB_MS)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let heartbeat_timeout_ms = std::env::var(ENV_HB_TIMEOUT_MS)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    Some(ChildEnv {
        dir,
        rank,
        size,
        program,
        input,
        tcp,
        seeds,
        registry_bind,
        advertise_ip,
        heartbeat_ms,
        heartbeat_timeout_ms,
    })
}

fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Entry point shared by the all-or-nothing `run_spawned*` flavours:
/// dispatches to the child path when the rank environment is present,
/// otherwise spawns and supervises the children. Any failed rank turns
/// the whole world into [`SpawnError::RanksFailed`].
pub(crate) fn run_spawned_impl<F>(
    size: usize,
    program: &str,
    input: &[u8],
    opts: SpawnOptions,
    f: F,
) -> Result<Vec<Vec<u8>>, SpawnError>
where
    F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
{
    let outcome = run_spawned_outcome_impl(size, program, input, opts, f)?;
    if !outcome.failures.is_empty() {
        return Err(SpawnError::RanksFailed(outcome.failures));
    }
    Ok(outcome
        .results
        .into_iter()
        .map(|r| r.expect("no failures recorded, so every slot is filled"))
        .collect())
}

/// Failure-tolerant entry point: per-rank result slots plus failure
/// descriptions (see [`crate::World::run_spawned_outcome`]).
pub(crate) fn run_spawned_outcome_impl<F>(
    size: usize,
    program: &str,
    input: &[u8],
    opts: SpawnOptions,
    f: F,
) -> Result<SpawnOutcome, SpawnError>
where
    F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
{
    assert!(size > 0, "world size must be positive");
    if let Some(env) = child_env() {
        if env.program != program {
            // A different call site in the re-executed binary: not ours.
            return Err(SpawnError::ProgramMismatch {
                expected: env.program,
                found: program.to_string(),
            });
        }
        child_main(env, f) // never returns
    }
    parent_main(size, program, input, opts)
}

/// Run this process as one rank: connect the mesh, run the rank program,
/// report the result, tear down, exit.
fn child_main<F>(env: ChildEnv, f: F) -> !
where
    F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
{
    let fail = |msg: String| -> ! {
        eprintln!("mini-mpi rank {}: {msg}", env.rank);
        std::process::exit(102);
    };
    let mut control = match connect_endpoint(&env.dir, "control", Instant::now() + CONNECT_TIMEOUT)
    {
        Ok(s) => s,
        Err(e) => fail(format!("cannot reach parent control endpoint: {e}")),
    };
    if let Err(e) = write_frame(
        &mut control,
        &Frame::Hello {
            rank: env.rank as u32,
        },
    ) {
        fail(format!("control hello failed: {e}"));
    }
    let mesh_opts = MeshOpts {
        force_tcp: env.tcp,
        seeds: env.seeds.clone(),
        registry_bind: env.registry_bind.clone(),
        advertise_ip: env.advertise_ip.clone(),
        heartbeat_ms: env.heartbeat_ms,
        heartbeat_timeout_ms: env.heartbeat_timeout_ms,
    };
    let peers = match SocketPeers::connect(&env.dir, env.rank, env.size, &mesh_opts) {
        Ok(p) => p,
        Err(e) => fail(format!("rendezvous failed: {e}")),
    };
    let inner = Arc::new(WorldInner {
        transport: Transport::Socket(peers),
        bytes_sent: AtomicU64::new(0),
        messages_sent: AtomicU64::new(0),
    });
    let members: Arc<Vec<usize>> = Arc::new((0..env.size).collect());
    let mut comm = Comm::new_world(inner.clone(), env.rank, members);
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm, &env.input)));
    drop(comm);
    match result {
        Ok(data) => {
            if let Err(e) = write_frame(
                &mut control,
                &Frame::Result {
                    rank: env.rank as u32,
                    data,
                },
            ) {
                fail(format!("result report failed: {e}"));
            }
            if let Transport::Socket(peers) = &inner.transport {
                peers.shutdown();
            }
            std::process::exit(0);
        }
        Err(_) => {
            // The panic hook already printed the message; the missing
            // result plus the exit code tell the parent this rank failed.
            std::process::exit(101);
        }
    }
}

/// Spawn and supervise `size` rank processes; collect their results.
fn parent_main(
    size: usize,
    program: &str,
    input: &[u8],
    opts: SpawnOptions,
) -> Result<SpawnOutcome, SpawnError> {
    static SPAWN_SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mini-mpi-{}-{}",
        std::process::id(),
        SPAWN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(SpawnError::Io)?;
    let cleanup = DirCleanup(dir.clone());

    // Resolve a `:0` seed to a concrete free port up front, so every
    // child dials the same address.
    let seeds = match &opts.seeds {
        Some(list) => {
            let mut resolved = Vec::new();
            for seed in list.split(',').filter(|s| !s.is_empty()) {
                resolved.push(resolve_port_zero(seed).map_err(SpawnError::Io)?);
            }
            if resolved.is_empty() {
                return Err(SpawnError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty seed list",
                )));
            }
            Some(resolved.join(","))
        }
        None => None,
    };
    let registry_bind = match &opts.registry_bind {
        Some(addr) => Some(resolve_port_zero(addr).map_err(SpawnError::Io)?),
        None => None,
    };

    let listener = bind_endpoint(&dir, "control", opts.tcp).map_err(SpawnError::Io)?;
    let results: Arc<Mutex<Vec<Option<Vec<u8>>>>> = Arc::new(Mutex::new(vec![None; size]));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let results = results.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("mini-mpi-control".into())
            .spawn(move || {
                let mut handlers = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let Ok(mut stream) = listener.accept() else {
                        break;
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let results = results.clone();
                    handlers.push(std::thread::spawn(move || {
                        let Ok(Frame::Hello { rank }) = read_frame(&mut stream) else {
                            return;
                        };
                        // Block until the rank reports (or dies: EOF).
                        if let Ok(Frame::Result { rank: r, data }) = read_frame(&mut stream) {
                            if r == rank && (r as usize) < results.lock().len() {
                                results.lock()[r as usize] = Some(data);
                            }
                        }
                    }));
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("failed to spawn control thread")
    };

    let exe = std::env::current_exe().map_err(SpawnError::Io)?;
    let input_hex = hex_encode(input);
    let mut children = Vec::with_capacity(size);
    for rank in 0..size {
        let mut cmd = std::process::Command::new(&exe);
        cmd.env(ENV_DIR, &dir)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SIZE, size.to_string())
            .env(ENV_PROGRAM, program)
            .env(ENV_INPUT, &input_hex);
        if opts.tcp {
            cmd.env(ENV_TCP, "1");
        }
        if let Some(seeds) = &seeds {
            cmd.env(ENV_SEEDS, seeds);
        }
        if let Some(bind) = &registry_bind {
            cmd.env(ENV_REGISTRY_BIND, bind);
        }
        if opts.heartbeat_ms > 0 {
            cmd.env(ENV_HB_MS, opts.heartbeat_ms.to_string());
            cmd.env(ENV_HB_TIMEOUT_MS, opts.heartbeat_timeout_ms.to_string());
        }
        if opts.harness_args {
            cmd.args(["--exact", program, "--nocapture", "--test-threads", "1"]);
        }
        match cmd.spawn() {
            Ok(child) => {
                if let Some(hook) = &opts.on_spawn {
                    hook(rank, child.id());
                }
                children.push(Some(child));
            }
            Err(e) => {
                // Kill whatever already started, then report.
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                }
                if let Err(se) = stop_control(&stop, &dir, accept_handle) {
                    eprintln!("mini-mpi: {se}");
                }
                drop(cleanup);
                return Err(SpawnError::Io(e));
            }
        }
    }

    // Supervise: poll exit statuses until all children are gone or the
    // deadline passes (then kill the stragglers).
    let deadline = Instant::now() + opts.timeout;
    let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; size];
    let mut timed_out = false;
    loop {
        let mut all_done = true;
        for (rank, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait() {
                Ok(Some(status)) => {
                    statuses[rank] = Some(status);
                    *slot = None;
                }
                Ok(None) => all_done = false,
                Err(_) => all_done = false,
            }
        }
        if all_done {
            break;
        }
        if Instant::now() >= deadline {
            timed_out = true;
            for slot in children.iter_mut() {
                if let Some(child) = slot {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                *slot = None;
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    if let Err(e) = stop_control(&stop, &dir, accept_handle) {
        eprintln!("mini-mpi: {e}");
    }

    let results = Arc::try_unwrap(results)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    let mut failed = Vec::new();
    let mut slots: Vec<Option<Vec<u8>>> = Vec::with_capacity(size);
    for (rank, status) in statuses.iter().enumerate() {
        let status_ok = status.map(|s| s.success()).unwrap_or(false);
        let result = results.get(rank).cloned().flatten();
        match (result, status_ok) {
            (Some(data), true) => slots.push(Some(data)),
            (result, _) => {
                let status = match status {
                    Some(s) => format!("exit {}", s.code().map_or(-1, |c| c)),
                    None => "killed (timeout)".to_string(),
                };
                let what = if result.is_none() {
                    "no result"
                } else {
                    "result but bad exit"
                };
                failed.push(format!("rank {rank}: {status}, {what}"));
                slots.push(None);
            }
        }
    }
    drop(cleanup);
    if timed_out {
        return Err(SpawnError::Timeout {
            waited: opts.timeout,
            failed,
        });
    }
    Ok(SpawnOutcome {
        results: slots,
        failures: failed,
    })
}

/// Unblock and join the control accept loop.
///
/// The accept call blocks until a connection arrives, so a throwaway
/// connection is dialed to wake it. Both phases are bounded by explicit
/// deadlines: the dial retries for up to 2 s (transient ECONNREFUSED
/// under backlog pressure), and if the thread still has not finished
/// shortly after, a *named* error is returned instead of silently
/// leaking a wedged accept thread (the pre-fix behaviour; the listener
/// then dies with the process, but the caller at least knows).
fn stop_control(
    stop: &AtomicBool,
    dir: &Path,
    handle: std::thread::JoinHandle<()>,
) -> io::Result<()> {
    stop.store(true, Ordering::Release);
    let unblock = connect_endpoint(dir, "control", Instant::now() + Duration::from_secs(2));
    match unblock {
        Ok(_) => {
            let _ = handle.join();
            Ok(())
        }
        Err(e) => {
            // The thread may have exited on its own (accept error path);
            // poll briefly before declaring it wedged.
            let poll_deadline = Instant::now() + Duration::from_millis(500);
            while Instant::now() < poll_deadline {
                if handle.is_finished() {
                    let _ = handle.join();
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            drop(handle);
            Err(io::Error::new(
                e.kind(),
                format!(
                    "control accept thread wedged: unblock connection failed \
                     within its 2s deadline ({e}); thread leaked"
                ),
            ))
        }
    }
}

/// Best-effort removal of the rendezvous directory.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [vec![], vec![0u8], vec![0xde, 0xad, 0xbe, 0xef], vec![7; 33]] {
            assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        }
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn frame_roundtrip() {
        let frames = [
            Frame::Data {
                seq: 11,
                env: Envelope {
                    ctx: 7,
                    src: 3,
                    tag: (1 << 63) | 42,
                    payload: Bytes::copy_from_slice(b"hello"),
                },
            },
            Frame::Goodbye { seq: 99 },
            Frame::Hello { rank: 9 },
            Frame::Result {
                rank: 2,
                data: vec![1, 2, 3],
            },
            Frame::Ping { acked: 17 },
            Frame::Pong { acked: 18 },
            Frame::Death { seq: 5, rank: 3 },
            Frame::Reconnect {
                rank: 4,
                next_expected: 1234,
            },
            Frame::ReconnectAck {
                next_expected: 4321,
            },
            Frame::Register {
                rank: 1,
                addr: "127.0.0.1:9999".into(),
            },
            Frame::Table {
                addrs: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            },
        ];
        for frame in &frames {
            let mut buf = Vec::new();
            write_frame(&mut buf, frame).unwrap();
            let mut cursor = &buf[..];
            match (frame, read_frame(&mut cursor).unwrap()) {
                (Frame::Data { seq: s1, env: a }, Frame::Data { seq: s2, env: b }) => {
                    assert_eq!((s1, a.ctx, a.src, a.tag), (&s2, b.ctx, b.src, b.tag));
                    assert_eq!(&a.payload[..], &b.payload[..]);
                }
                (Frame::Goodbye { seq: a }, Frame::Goodbye { seq: b }) => assert_eq!(a, &b),
                (Frame::Hello { rank: a }, Frame::Hello { rank: b }) => assert_eq!(a, &b),
                (Frame::Result { rank, data }, Frame::Result { rank: r, data: d }) => {
                    assert_eq!((rank, data), (&r, &d));
                }
                (Frame::Ping { acked: a }, Frame::Ping { acked: b }) => assert_eq!(a, &b),
                (Frame::Pong { acked: a }, Frame::Pong { acked: b }) => assert_eq!(a, &b),
                (Frame::Death { seq: s1, rank: r1 }, Frame::Death { seq: s2, rank: r2 }) => {
                    assert_eq!((s1, r1), (&s2, &r2))
                }
                (
                    Frame::Reconnect {
                        rank: r1,
                        next_expected: n1,
                    },
                    Frame::Reconnect {
                        rank: r2,
                        next_expected: n2,
                    },
                ) => assert_eq!((r1, n1), (&r2, &n2)),
                (
                    Frame::ReconnectAck { next_expected: a },
                    Frame::ReconnectAck { next_expected: b },
                ) => assert_eq!(a, &b),
                (
                    Frame::Register { rank: r1, addr: a1 },
                    Frame::Register { rank: r2, addr: a2 },
                ) => assert_eq!((r1, a1), (&r2, &a2)),
                (Frame::Table { addrs: a }, Frame::Table { addrs: b }) => assert_eq!(a, &b),
                _ => panic!("frame kind changed across the wire"),
            }
            assert!(cursor.is_empty(), "frame must consume exactly its bytes");
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Data {
                seq: 0,
                env: Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 0,
                    payload: Bytes::copy_from_slice(&[1, 2, 3, 4]),
                },
            },
        )
        .unwrap();
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut} must fail");
        }
        // Control frames too: a truncated register/table must not parse.
        for frame in [
            Frame::Register {
                rank: 0,
                addr: "127.0.0.1:80".into(),
            },
            Frame::Table {
                addrs: vec!["127.0.0.1:80".into()],
            },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).unwrap();
            for cut in 1..buf.len() {
                let mut cursor = &buf[..cut];
                assert!(read_frame(&mut cursor).is_err(), "cut at {cut} must fail");
            }
        }
    }

    #[test]
    fn resolve_port_zero_resolves_only_zero() {
        assert_eq!(
            resolve_port_zero("127.0.0.1:8080").unwrap(),
            "127.0.0.1:8080"
        );
        let resolved = resolve_port_zero("127.0.0.1:0").unwrap();
        assert!(resolved.starts_with("127.0.0.1:"));
        assert_ne!(resolved, "127.0.0.1:0");
        assert!(resolve_port_zero("no-port-here").is_err());
    }

    #[test]
    fn stop_control_joins_finished_thread_even_without_unblock() {
        // The accept thread already exited (listener error path): even
        // though no control endpoint exists to dial, stop_control must
        // notice the finished thread and join it cleanly.
        let dir = std::env::temp_dir().join(format!("mini-mpi-sc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _cleanup = DirCleanup(dir.clone());
        let stop = AtomicBool::new(false);
        let handle = std::thread::spawn(|| {});
        // No endpoint bound in `dir`: connect_endpoint fails at its 2 s
        // deadline, then the finished-thread poll must succeed.
        assert!(stop_control(&stop, &dir, handle).is_ok());
        assert!(stop.load(Ordering::Acquire));
    }

    #[test]
    fn stop_control_reports_wedged_thread_with_named_error() {
        // Regression test for the PR 3 bug: a wedged accept thread used
        // to be dropped silently. Now the failure is named and bounded
        // by a deadline (2 s dial + 0.5 s poll).
        let dir = std::env::temp_dir().join(format!("mini-mpi-scw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _cleanup = DirCleanup(dir.clone());
        let stop = AtomicBool::new(false);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // Wedged forever (until the test process exits).
            let _ = rx.recv();
        });
        let started = Instant::now();
        let err = stop_control(&stop, &dir, handle).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "must be bounded"
        );
        assert!(
            err.to_string().contains("control accept thread wedged"),
            "error must name the leak: {err}"
        );
        drop(tx); // release the thread so the test process can exit cleanly
    }
}
