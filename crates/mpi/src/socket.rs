//! Multi-process transport: Unix-domain sockets (TCP loopback fallback),
//! rendezvous, framing, and the `run_spawned` process orchestration.
//!
//! ## Rendezvous
//!
//! The parent creates a temporary directory and re-executes the current
//! binary once per rank with `MINI_MPI_{DIR,RANK,SIZE,PROGRAM,INPUT}` in
//! the environment. Every rank binds a listener in the directory
//! (`r<k>.sock` for UDS, `r<k>.port` holding a TCP loopback port when UDS
//! is unavailable or forced off), connects to every lower rank, and
//! accepts one connection from every higher rank — a full mesh. Peers
//! identify themselves with a `Hello` frame immediately after connecting,
//! so accept order does not matter.
//!
//! ## Framing
//!
//! Every message is one length-prefixed frame: `[u32 body_len][u8 kind]`
//! followed by the body. Data frames carry `(ctx, src, tag, payload)` —
//! exactly the in-process `Envelope` — and are demuxed by a per-peer
//! reader thread into the local rank's mailbox, where the ordinary
//! matching logic picks them up. Sends go through a per-peer writer
//! thread (an unbounded channel in between), so `send` keeps its eager,
//! never-blocking semantics even when a socket back-pressures.
//!
//! ## Teardown and failure semantics
//!
//! When a rank's program finishes it reports its result to the parent
//! over an out-of-band control connection, flushes a `Goodbye` frame to
//! every peer, and only closes its sockets after receiving every peer's
//! `Goodbye` — a teardown barrier that guarantees no rank observes an
//! end-of-stream while envelopes are still in flight. An EOF *without* a
//! preceding `Goodbye` therefore means the peer died: the local mailbox
//! is poisoned and every pending and future receive fails with
//! "rank N died" instead of deadlocking. The parent collects exit
//! statuses and per-rank results, and reports any failed rank.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::world::{Envelope, Mailbox, Transport, WorldInner};
use crate::{SpawnError, SpawnOptions};

pub(crate) const ENV_DIR: &str = "MINI_MPI_DIR";
const ENV_RANK: &str = "MINI_MPI_RANK";
const ENV_SIZE: &str = "MINI_MPI_SIZE";
const ENV_PROGRAM: &str = "MINI_MPI_PROGRAM";
const ENV_INPUT: &str = "MINI_MPI_INPUT";
const ENV_TCP: &str = "MINI_MPI_TCP";

/// How long a rank retries connecting to a peer's endpoint before giving
/// up (covers slow process startup under load).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a finished rank waits for peers' goodbyes before closing its
/// sockets anyway (a dead peer must not wedge survivors in teardown).
const GOODBYE_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Stream / listener abstraction (UDS with TCP loopback fallback)
// ---------------------------------------------------------------------------

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

fn sock_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.sock"))
}

fn port_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.port"))
}

/// Bind an endpoint named `name` inside `dir`: a Unix socket unless TCP
/// is forced (or the UDS bind fails, e.g. a rendezvous path too long for
/// `sockaddr_un`), in which case a loopback TCP listener is announced by
/// atomically publishing its port number to `<name>.port`.
fn bind_endpoint(dir: &Path, name: &str, force_tcp: bool) -> io::Result<Listener> {
    if !force_tcp {
        match UnixListener::bind(sock_path(dir, name)) {
            Ok(l) => return Ok(Listener::Unix(l)),
            Err(_) => { /* fall through to TCP */ }
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let port = listener.local_addr()?.port();
    let tmp = dir.join(format!("{name}.port.tmp"));
    std::fs::write(&tmp, port.to_string())?;
    std::fs::rename(&tmp, port_path(dir, name))?;
    Ok(Listener::Tcp(listener))
}

/// Connect to the endpoint `name` inside `dir`, retrying until `deadline`
/// (the peer may not have bound yet). Tries the Unix socket first, then
/// the published TCP port.
fn connect_endpoint(dir: &Path, name: &str, deadline: Instant) -> io::Result<Stream> {
    let sock = sock_path(dir, name);
    let port = port_path(dir, name);
    loop {
        if sock.exists() {
            match UnixStream::connect(&sock) {
                Ok(s) => return Ok(Stream::Unix(s)),
                Err(_) => { /* listener may still be setting up */ }
            }
        }
        if let Ok(text) = std::fs::read_to_string(&port) {
            if let Ok(p) = text.trim().parse::<u16>() {
                if let Ok(s) = TcpStream::connect(("127.0.0.1", p)) {
                    return Ok(Stream::Tcp(s));
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no endpoint '{name}' appeared in {dir:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

const KIND_DATA: u8 = 0;
const KIND_GOODBYE: u8 = 1;
const KIND_HELLO: u8 = 2;
const KIND_RESULT: u8 = 3;

/// Upper bound on a frame body. The length prefix is untrusted input
/// (a corrupted byte or a desynced stream after a partial write must
/// not make the reader allocate gigabytes before noticing); anything
/// larger fails as a malformed frame and poisons the mailbox cleanly.
/// Generous for this workspace's messages — a send above this limit is
/// rejected at the writer, not silently truncated.
const MAX_FRAME_BODY: usize = 256 << 20;

enum Frame {
    Data(Envelope),
    Goodbye,
    Hello { rank: u32 },
    Result { rank: u32, data: Vec<u8> },
}

fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    if let Frame::Data(env) = frame {
        // Hot path: fixed-size header on the stack, payload written
        // directly from its shared buffer — no per-frame allocation, no
        // full-payload copy.
        let body_len = 24 + env.payload.len();
        if body_len > MAX_FRAME_BODY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "message of {} bytes exceeds the frame limit",
                    env.payload.len()
                ),
            ));
        }
        let mut head = [0u8; 5 + 24];
        head[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        head[4] = KIND_DATA;
        head[5..13].copy_from_slice(&env.ctx.to_le_bytes());
        head[13..17].copy_from_slice(&(env.src as u32).to_le_bytes());
        head[17..25].copy_from_slice(&env.tag.to_le_bytes());
        head[25..29].copy_from_slice(&(env.payload.len() as u32).to_le_bytes());
        w.write_all(&head)?;
        w.write_all(&env.payload)?;
        return w.flush();
    }
    let mut body = Vec::new();
    let kind = match frame {
        Frame::Data(_) => unreachable!("handled above"),
        Frame::Goodbye => KIND_GOODBYE,
        Frame::Hello { rank } => {
            body.extend_from_slice(&rank.to_le_bytes());
            KIND_HELLO
        }
        Frame::Result { rank, data } => {
            body.extend_from_slice(&rank.to_le_bytes());
            body.extend_from_slice(&(data.len() as u32).to_le_bytes());
            body.extend_from_slice(data);
            KIND_RESULT
        }
    };
    if body.len() > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame body exceeds the frame limit",
        ));
    }
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    head[4] = kind;
    w.write_all(&head)?;
    w.write_all(&body)?;
    w.flush()
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let body_len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let kind = head[4];
    // The length prefix is untrusted: validate before allocating, so a
    // corrupted byte yields a clean "malformed frame" poison instead of
    // a multi-gigabyte allocation.
    if body_len > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {body_len} bytes exceeds the frame limit"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    match kind {
        KIND_DATA => {
            if body.len() < 24 {
                return Err(bad("short data frame"));
            }
            let ctx = read_u64(&body, 0);
            let src = read_u32(&body, 8) as usize;
            let tag = read_u64(&body, 12);
            let len = read_u32(&body, 20) as usize;
            if body.len() != 24 + len {
                return Err(bad("data frame length mismatch"));
            }
            Ok(Frame::Data(Envelope {
                ctx,
                src,
                tag,
                payload: Bytes::copy_from_slice(&body[24..]),
            }))
        }
        KIND_GOODBYE => Ok(Frame::Goodbye),
        KIND_HELLO => {
            if body.len() != 4 {
                return Err(bad("bad hello frame"));
            }
            Ok(Frame::Hello {
                rank: read_u32(&body, 0),
            })
        }
        KIND_RESULT => {
            if body.len() < 8 {
                return Err(bad("short result frame"));
            }
            let rank = read_u32(&body, 0);
            let len = read_u32(&body, 4) as usize;
            if body.len() != 8 + len {
                return Err(bad("result frame length mismatch"));
            }
            Ok(Frame::Result {
                rank,
                data: body[8..].to_vec(),
            })
        }
        other => Err(bad(&format!("unknown frame kind {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Peer mesh
// ---------------------------------------------------------------------------

enum WireMsg {
    Data(Envelope),
    Goodbye,
}

struct GoodbyeState {
    received: usize,
    /// First observed peer failure, if any.
    dead: Option<String>,
}

/// One rank's view of a socket world: the local mailbox plus per-peer
/// writer channels. Reader and writer threads hold clones of the shared
/// pieces; the struct itself lives inside [`WorldInner`].
pub(crate) struct SocketPeers {
    rank: usize,
    mailbox: Arc<Mailbox>,
    senders: Vec<Option<mpsc::Sender<WireMsg>>>,
    writer_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    goodbyes: Arc<(Mutex<GoodbyeState>, Condvar)>,
    streams: Vec<Option<Stream>>,
}

impl SocketPeers {
    pub(crate) fn rank(&self) -> usize {
        self.rank
    }

    pub(crate) fn mailbox(&self) -> &Mailbox {
        &self.mailbox
    }

    /// Enqueue an envelope for `dest` (own rank: direct mailbox push).
    /// Panics if the world is already poisoned — a send to (or via) a
    /// dead mesh must fail loudly, exactly like a receive.
    pub(crate) fn post(&self, dest: usize, env: Envelope) {
        if let Some(reason) = self.mailbox.is_poisoned() {
            panic!("mini-mpi: send failed: {reason}");
        }
        if dest == self.rank {
            self.mailbox.push(env);
            return;
        }
        let sender = self.senders[dest]
            .as_ref()
            .expect("non-self peer must have a writer");
        if sender.send(WireMsg::Data(env)).is_err() {
            let reason = self
                .mailbox
                .is_poisoned()
                .unwrap_or_else(|| format!("rank {dest} unreachable (writer gone)"));
            panic!("mini-mpi: send failed: {reason}");
        }
    }

    /// Establish the full mesh for `rank` of `size` inside `dir`.
    fn connect(dir: &Path, rank: usize, size: usize, force_tcp: bool) -> io::Result<SocketPeers> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let listener = bind_endpoint(dir, &format!("r{rank}"), force_tcp)?;
        let mut streams: Vec<Option<Stream>> = (0..size).map(|_| None).collect();
        // Connect to every lower rank, identifying ourselves.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut s = connect_endpoint(dir, &format!("r{peer}"), deadline)?;
            write_frame(&mut s, &Frame::Hello { rank: rank as u32 })?;
            *slot = Some(s);
        }
        // Accept one connection from every higher rank.
        for _ in rank + 1..size {
            let mut s = listener.accept()?;
            match read_frame(&mut s)? {
                Frame::Hello { rank: peer } => {
                    let peer = peer as usize;
                    if peer <= rank || peer >= size || streams[peer].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected hello from rank {peer}"),
                        ));
                    }
                    streams[peer] = Some(s);
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "expected hello frame",
                    ))
                }
            }
        }

        let mailbox = Arc::new(Mailbox::new());
        let goodbyes = Arc::new((
            Mutex::new(GoodbyeState {
                received: 0,
                dead: None,
            }),
            Condvar::new(),
        ));
        let mut senders: Vec<Option<mpsc::Sender<WireMsg>>> = (0..size).map(|_| None).collect();
        let mut writer_handles = Vec::new();
        for (peer, slot) in streams.iter_mut().enumerate() {
            let Some(stream) = slot else { continue };
            // Writer thread: owns a clone of the stream's write half,
            // drains the channel, stops after Goodbye (or channel close).
            let (tx, rx) = mpsc::channel::<WireMsg>();
            let mut write_half = stream.try_clone()?;
            let mb = mailbox.clone();
            writer_handles.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-w{rank}-to-{peer}"))
                    .spawn(move || {
                        for msg in rx {
                            let frame = match msg {
                                WireMsg::Data(env) => Frame::Data(env),
                                WireMsg::Goodbye => Frame::Goodbye,
                            };
                            let last = matches!(frame, Frame::Goodbye);
                            if let Err(e) = write_frame(&mut write_half, &frame) {
                                mb.poison(format!("rank {peer} died (write failed: {e})"));
                                return;
                            }
                            if last {
                                return;
                            }
                        }
                    })
                    .expect("failed to spawn writer thread"),
            );
            senders[peer] = Some(tx);
            // Reader thread: demux incoming frames into the mailbox until
            // Goodbye; an earlier EOF/error means the peer died.
            let mut read_half = stream.try_clone()?;
            let mb = mailbox.clone();
            let gb = goodbyes.clone();
            std::thread::Builder::new()
                .name(format!("mini-mpi-r{rank}-from-{peer}"))
                .spawn(move || loop {
                    match read_frame(&mut read_half) {
                        Ok(Frame::Data(env)) => mb.push(env),
                        Ok(Frame::Goodbye) => {
                            let (lock, cvar) = &*gb;
                            lock.lock().received += 1;
                            cvar.notify_all();
                            return;
                        }
                        Ok(_) => {
                            let reason = format!("rank {peer} sent an unexpected control frame");
                            mb.poison(reason.clone());
                            let (lock, cvar) = &*gb;
                            lock.lock().dead.get_or_insert(reason);
                            cvar.notify_all();
                            return;
                        }
                        Err(e) => {
                            let reason = if e.kind() == io::ErrorKind::UnexpectedEof {
                                format!("rank {peer} died (connection closed before goodbye)")
                            } else {
                                format!("rank {peer} died ({e})")
                            };
                            mb.poison(reason.clone());
                            let (lock, cvar) = &*gb;
                            lock.lock().dead.get_or_insert(reason);
                            cvar.notify_all();
                            return;
                        }
                    }
                })
                .expect("failed to spawn reader thread");
        }
        Ok(SocketPeers {
            rank,
            mailbox,
            senders,
            writer_handles: Mutex::new(writer_handles),
            goodbyes,
            streams: streams.into_iter().collect(),
        })
    }

    /// Teardown barrier: flush a goodbye to every peer, join the writers
    /// (all queued envelopes are on the wire), then wait until every peer's
    /// goodbye arrived — or a peer is known dead, or the timeout expires —
    /// before the sockets may be closed.
    fn shutdown(&self) {
        for sender in self.senders.iter().flatten() {
            let _ = sender.send(WireMsg::Goodbye);
        }
        for handle in self.writer_handles.lock().drain(..) {
            let _ = handle.join();
        }
        let expected = self.senders.iter().flatten().count();
        let (lock, cvar) = &*self.goodbyes;
        let mut st = lock.lock();
        let deadline = Instant::now() + GOODBYE_TIMEOUT;
        while st.received < expected && st.dead.is_none() {
            if cvar.wait_until(&mut st, deadline).timed_out() {
                break;
            }
        }
        drop(st);
        for stream in self.streams.iter().flatten() {
            stream.shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// Child / parent orchestration
// ---------------------------------------------------------------------------

/// Environment of a spawned rank.
pub(crate) struct ChildEnv {
    pub dir: PathBuf,
    pub rank: usize,
    pub size: usize,
    pub program: String,
    pub input: Vec<u8>,
    pub tcp: bool,
}

/// Decode the child-side environment, if present.
pub(crate) fn child_env() -> Option<ChildEnv> {
    let rank = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let size = std::env::var(ENV_SIZE).ok()?.parse().ok()?;
    let dir = PathBuf::from(std::env::var(ENV_DIR).ok()?);
    let program = std::env::var(ENV_PROGRAM).ok()?;
    let input = hex_decode(&std::env::var(ENV_INPUT).unwrap_or_default())?;
    let tcp = std::env::var(ENV_TCP).is_ok_and(|v| v == "1");
    Some(ChildEnv {
        dir,
        rank,
        size,
        program,
        input,
        tcp,
    })
}

fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Entry point shared by all `run_spawned*` flavours: dispatches to the
/// child path when the rank environment is present, otherwise spawns and
/// supervises the children.
pub(crate) fn run_spawned_impl<F>(
    size: usize,
    program: &str,
    input: &[u8],
    opts: SpawnOptions,
    f: F,
) -> Result<Vec<Vec<u8>>, SpawnError>
where
    F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
{
    assert!(size > 0, "world size must be positive");
    if let Some(env) = child_env() {
        if env.program != program {
            // A different call site in the re-executed binary: not ours.
            return Err(SpawnError::ProgramMismatch {
                expected: env.program,
                found: program.to_string(),
            });
        }
        child_main(env, f) // never returns
    }
    parent_main(size, program, input, opts)
}

/// Run this process as one rank: connect the mesh, run the rank program,
/// report the result, tear down, exit.
fn child_main<F>(env: ChildEnv, f: F) -> !
where
    F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
{
    let fail = |msg: String| -> ! {
        eprintln!("mini-mpi rank {}: {msg}", env.rank);
        std::process::exit(102);
    };
    let mut control = match connect_endpoint(&env.dir, "control", Instant::now() + CONNECT_TIMEOUT)
    {
        Ok(s) => s,
        Err(e) => fail(format!("cannot reach parent control endpoint: {e}")),
    };
    if let Err(e) = write_frame(
        &mut control,
        &Frame::Hello {
            rank: env.rank as u32,
        },
    ) {
        fail(format!("control hello failed: {e}"));
    }
    let peers = match SocketPeers::connect(&env.dir, env.rank, env.size, env.tcp) {
        Ok(p) => p,
        Err(e) => fail(format!("rendezvous failed: {e}")),
    };
    let inner = Arc::new(WorldInner {
        transport: Transport::Socket(peers),
        bytes_sent: std::sync::atomic::AtomicU64::new(0),
        messages_sent: std::sync::atomic::AtomicU64::new(0),
    });
    let members: Arc<Vec<usize>> = Arc::new((0..env.size).collect());
    let mut comm = Comm::new_world(inner.clone(), env.rank, members);
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm, &env.input)));
    drop(comm);
    match result {
        Ok(data) => {
            if let Err(e) = write_frame(
                &mut control,
                &Frame::Result {
                    rank: env.rank as u32,
                    data,
                },
            ) {
                fail(format!("result report failed: {e}"));
            }
            if let Transport::Socket(peers) = &inner.transport {
                peers.shutdown();
            }
            std::process::exit(0);
        }
        Err(_) => {
            // The panic hook already printed the message; the missing
            // result plus the exit code tell the parent this rank failed.
            std::process::exit(101);
        }
    }
}

/// Spawn and supervise `size` rank processes; collect their results.
fn parent_main(
    size: usize,
    program: &str,
    input: &[u8],
    opts: SpawnOptions,
) -> Result<Vec<Vec<u8>>, SpawnError> {
    static SPAWN_SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mini-mpi-{}-{}",
        std::process::id(),
        SPAWN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(SpawnError::Io)?;
    let cleanup = DirCleanup(dir.clone());

    let listener = bind_endpoint(&dir, "control", opts.tcp).map_err(SpawnError::Io)?;
    let results: Arc<Mutex<Vec<Option<Vec<u8>>>>> = Arc::new(Mutex::new(vec![None; size]));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let results = results.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("mini-mpi-control".into())
            .spawn(move || {
                let mut handlers = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let Ok(mut stream) = listener.accept() else {
                        break;
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let results = results.clone();
                    handlers.push(std::thread::spawn(move || {
                        let Ok(Frame::Hello { rank }) = read_frame(&mut stream) else {
                            return;
                        };
                        // Block until the rank reports (or dies: EOF).
                        if let Ok(Frame::Result { rank: r, data }) = read_frame(&mut stream) {
                            if r == rank && (r as usize) < results.lock().len() {
                                results.lock()[r as usize] = Some(data);
                            }
                        }
                    }));
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("failed to spawn control thread")
    };

    let exe = std::env::current_exe().map_err(SpawnError::Io)?;
    let input_hex = hex_encode(input);
    let mut children = Vec::with_capacity(size);
    for rank in 0..size {
        let mut cmd = std::process::Command::new(&exe);
        cmd.env(ENV_DIR, &dir)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SIZE, size.to_string())
            .env(ENV_PROGRAM, program)
            .env(ENV_INPUT, &input_hex);
        if opts.tcp {
            cmd.env(ENV_TCP, "1");
        }
        if opts.harness_args {
            cmd.args(["--exact", program, "--nocapture", "--test-threads", "1"]);
        }
        match cmd.spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                // Kill whatever already started, then report.
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                }
                stop_control(&stop, &dir, accept_handle);
                drop(cleanup);
                return Err(SpawnError::Io(e));
            }
        }
    }

    // Supervise: poll exit statuses until all children are gone or the
    // deadline passes (then kill the stragglers).
    let deadline = Instant::now() + opts.timeout;
    let mut statuses: Vec<Option<std::process::ExitStatus>> = vec![None; size];
    let mut timed_out = false;
    loop {
        let mut all_done = true;
        for (rank, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait() {
                Ok(Some(status)) => {
                    statuses[rank] = Some(status);
                    *slot = None;
                }
                Ok(None) => all_done = false,
                Err(_) => all_done = false,
            }
        }
        if all_done {
            break;
        }
        if Instant::now() >= deadline {
            timed_out = true;
            for slot in children.iter_mut() {
                if let Some(child) = slot {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                *slot = None;
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    stop_control(&stop, &dir, accept_handle);

    let results = Arc::try_unwrap(results)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    let mut failed = Vec::new();
    let mut ok = Vec::with_capacity(size);
    for (rank, status) in statuses.iter().enumerate() {
        let status_ok = status.map(|s| s.success()).unwrap_or(false);
        let result = results.get(rank).cloned().flatten();
        match (result, status_ok) {
            (Some(data), true) => ok.push(data),
            (result, _) => {
                let status = match status {
                    Some(s) => format!("exit {}", s.code().map_or(-1, |c| c)),
                    None => "killed (timeout)".to_string(),
                };
                let what = if result.is_none() {
                    "no result"
                } else {
                    "result but bad exit"
                };
                failed.push(format!("rank {rank}: {status}, {what}"));
            }
        }
    }
    drop(cleanup);
    if timed_out {
        return Err(SpawnError::Timeout {
            waited: opts.timeout,
            failed,
        });
    }
    if !failed.is_empty() {
        return Err(SpawnError::RanksFailed(failed));
    }
    Ok(ok)
}

/// Unblock and join the control accept loop.
fn stop_control(stop: &AtomicBool, dir: &Path, handle: std::thread::JoinHandle<()>) {
    stop.store(true, Ordering::Release);
    // A throwaway connection unblocks the (blocking) accept call. Retry
    // briefly (transient ECONNREFUSED under backlog pressure); if it
    // still fails, leak the thread rather than joining a blocked accept
    // forever — the listener dies with the process.
    match connect_endpoint(dir, "control", Instant::now() + Duration::from_secs(2)) {
        Ok(_) => {
            let _ = handle.join();
        }
        Err(_) => drop(handle),
    }
}

/// Best-effort removal of the rendezvous directory.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [vec![], vec![0u8], vec![0xde, 0xad, 0xbe, 0xef], vec![7; 33]] {
            assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        }
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn frame_roundtrip() {
        let frames = [
            Frame::Data(Envelope {
                ctx: 7,
                src: 3,
                tag: (1 << 63) | 42,
                payload: Bytes::copy_from_slice(b"hello"),
            }),
            Frame::Goodbye,
            Frame::Hello { rank: 9 },
            Frame::Result {
                rank: 2,
                data: vec![1, 2, 3],
            },
        ];
        for frame in &frames {
            let mut buf = Vec::new();
            write_frame(&mut buf, frame).unwrap();
            let mut cursor = &buf[..];
            match (frame, read_frame(&mut cursor).unwrap()) {
                (Frame::Data(a), Frame::Data(b)) => {
                    assert_eq!((a.ctx, a.src, a.tag), (b.ctx, b.src, b.tag));
                    assert_eq!(&a.payload[..], &b.payload[..]);
                }
                (Frame::Goodbye, Frame::Goodbye) => {}
                (Frame::Hello { rank: a }, Frame::Hello { rank: b }) => assert_eq!(a, &b),
                (Frame::Result { rank, data }, Frame::Result { rank: r, data: d }) => {
                    assert_eq!((rank, data), (&r, &d));
                }
                _ => panic!("frame kind changed across the wire"),
            }
            assert!(cursor.is_empty(), "frame must consume exactly its bytes");
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Data(Envelope {
                ctx: 0,
                src: 0,
                tag: 0,
                payload: Bytes::copy_from_slice(&[1, 2, 3, 4]),
            }),
        )
        .unwrap();
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut} must fail");
        }
    }
}
