//! Deterministic fault injection for the socket world.
//!
//! Test-only infrastructure (no `cfg(test)` gate so integration tests in
//! other crates can use it; nothing here runs unless constructed):
//!
//! * [`FaultProxy`] — an in-process TCP proxy that fronts the seed-list
//!   registry of a spawned world. Because every rank registers through
//!   the seed address, the proxy observes every `Register` frame and
//!   rewrites the advertised data address to a per-rank forwarder it
//!   owns, so **every mesh link flows through the proxy** and can be
//!   manipulated deterministically: dropped once (transient failure),
//!   black-holed (network partition: the connection stays open but all
//!   frames are silently swallowed), or delayed per frame.
//! * [`PidMap`] — records `(rank, pid)` pairs via the
//!   [`crate::SpawnOptions::on_spawn`] hook so tests can `SIGKILL` /
//!   `SIGSTOP` / `SIGCONT` individual rank processes.
//! * [`free_loopback_addr`] — a concrete free `127.0.0.1:<port>`.
//!
//! Fault schedules are expressed in *protocol* terms — "after the 3rd
//! data frame from rank 2 to rank 0" — not wall-clock terms, which keeps
//! the tests deterministic on loaded CI machines.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::socket::{
    read_frame, resolve_port_zero, tcp_connect_retry, write_frame, Frame, KIND_DATA, MAX_FRAME_BODY,
};

/// A concrete free loopback address (`127.0.0.1:<port>`), suitable for
/// [`crate::SpawnOptions::seeds`]. The port is bound and released, so a
/// parallel process could in principle steal it; in practice spawn
/// follows immediately.
pub fn free_loopback_addr() -> io::Result<String> {
    resolve_port_zero("127.0.0.1:0")
}

/// Rank-to-pid registry fed by the [`crate::SpawnOptions::on_spawn`]
/// hook; lets tests signal individual rank processes.
#[derive(Clone, Default)]
pub struct PidMap {
    inner: Arc<Mutex<BTreeMap<usize, u32>>>,
}

impl PidMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hook to plug into [`crate::SpawnOptions::on_spawn`].
    pub fn hook(&self) -> Arc<dyn Fn(usize, u32) + Send + Sync> {
        let inner = self.inner.clone();
        Arc::new(move |rank, pid| {
            inner.lock().insert(rank, pid);
        })
    }

    /// The recorded pid of `rank`, if it has spawned yet.
    pub fn pid(&self, rank: usize) -> Option<u32> {
        self.inner.lock().get(&rank).copied()
    }

    /// Block until `rank`'s pid is recorded (the spawn hook fires as the
    /// parent loops over ranks, racing the caller).
    pub fn wait_pid(&self, rank: usize, timeout: Duration) -> Option<u32> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(pid) = self.pid(rank) {
                return Some(pid);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Send `sig` (a `kill -s` name: `KILL`, `STOP`, `CONT`, …) to the
    /// process of `rank`. Returns `false` if the rank has no recorded
    /// pid or the signal could not be delivered.
    pub fn signal(&self, rank: usize, sig: &str) -> bool {
        let Some(pid) = self.pid(rank) else {
            return false;
        };
        std::process::Command::new("kill")
            .args(["-s", sig, &pid.to_string()])
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }

    /// `SIGKILL` the process of `rank` (crash-stop failure).
    pub fn kill(&self, rank: usize) -> bool {
        self.signal(rank, "KILL")
    }
}

/// What to do to a link once its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Close both halves of the proxied connection once (transient
    /// failure). With heartbeats enabled the dialer redials through the
    /// proxy and the link resumes; without, both ends see a fatal EOF.
    Drop,
    /// Silently swallow every subsequent frame in both directions while
    /// keeping the connection open (network partition). Reconnect
    /// attempts on a black-holed link are swallowed too.
    BlackHole,
    /// Sleep this long before forwarding each dialer-to-listener frame.
    Delay(Duration),
}

/// One scheduled fault on the mesh link between ranks `low` and `high`.
///
/// Links are identified by their endpoint pair: `low` is the listener
/// side and `high` the dialer side (rank `h` dials every rank below it,
/// so `high > low` always). The trigger counts `Data` frames flowing
/// dialer-to-listener: the fault fires immediately before the
/// `(after_data + 1)`-th such frame would be forwarded (`after_data ==
/// 0` fires before any application data crosses, right after the
/// handshake).
#[derive(Debug, Clone, Copy)]
pub struct LinkFault {
    /// Listener-side rank (the lower endpoint).
    pub low: usize,
    /// Dialer-side rank (the higher endpoint).
    pub high: usize,
    /// How many dialer-to-listener `Data` frames pass before firing.
    pub after_data: usize,
    /// What happens when the trigger fires.
    pub action: FaultAction,
}

struct FaultSlot {
    fault: LinkFault,
    triggered: bool,
}

struct ProxyShared {
    registry_addr: String,
    faults: Mutex<Vec<FaultSlot>>,
    blackholed: Mutex<BTreeSet<(usize, usize)>>,
    data_counts: Mutex<BTreeMap<(usize, usize), usize>>,
    stop: AtomicBool,
}

impl ProxyShared {
    fn is_blackholed(&self, low: usize, high: usize) -> bool {
        self.blackholed.lock().contains(&(low, high))
    }

    /// Check (and consume) a fault due for link `(low, high)` given that
    /// `seen` data frames have already been forwarded.
    fn due_fault(&self, low: usize, high: usize, seen: usize) -> Option<FaultAction> {
        let mut faults = self.faults.lock();
        for slot in faults.iter_mut() {
            if !slot.triggered
                && slot.fault.low == low
                && slot.fault.high == high
                && seen >= slot.fault.after_data
            {
                slot.triggered = true;
                if slot.fault.action == FaultAction::BlackHole {
                    self.blackholed.lock().insert((low, high));
                }
                return Some(slot.fault.action);
            }
        }
        None
    }
}

/// Deterministic TCP fault proxy for seed-list worlds; see the module
/// docs. Construct it, point [`crate::SpawnOptions::seeds`] at
/// [`FaultProxy::seeds`] and [`crate::SpawnOptions::registry_bind`] at
/// [`FaultProxy::registry_bind`], and every mesh link of the spawned
/// world is routed through the proxy.
pub struct FaultProxy {
    seed_addr: String,
    shared: Arc<ProxyShared>,
}

impl FaultProxy {
    /// Bind the proxy and schedule `faults`.
    pub fn new(faults: Vec<LinkFault>) -> io::Result<FaultProxy> {
        let registry_addr = resolve_port_zero("127.0.0.1:0")?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let seed_addr = format!("127.0.0.1:{}", listener.local_addr()?.port());
        let shared = Arc::new(ProxyShared {
            registry_addr,
            faults: Mutex::new(
                faults
                    .into_iter()
                    .map(|fault| FaultSlot {
                        fault,
                        triggered: false,
                    })
                    .collect(),
            ),
            blackholed: Mutex::new(BTreeSet::new()),
            data_counts: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });
        listener.set_nonblocking(true)?;
        let accept_shared = shared.clone();
        std::thread::Builder::new()
            .name("fault-proxy-seed".into())
            .spawn(move || seed_accept_loop(listener, accept_shared))
            .expect("failed to spawn fault-proxy accept thread");
        Ok(FaultProxy { seed_addr, shared })
    }

    /// The address to advertise as the world's seed list.
    pub fn seeds(&self) -> String {
        self.seed_addr.clone()
    }

    /// Where rank 0's registry must actually bind (the proxy dials this
    /// address and relays registrations to it).
    pub fn registry_bind(&self) -> String {
        self.shared.registry_addr.clone()
    }

    /// Black-hole the `(low, high)` link right now (in addition to any
    /// scheduled faults); subsequent frames and reconnects are swallowed.
    pub fn black_hole_now(&self, low: usize, high: usize) {
        self.shared.blackholed.lock().insert((low, high));
    }

    /// How many dialer-to-listener `Data` frames the proxy has forwarded
    /// (or swallowed) on the `(low, high)` link so far.
    pub fn data_frames_seen(&self, low: usize, high: usize) -> usize {
        self.shared
            .data_counts
            .lock()
            .get(&(low, high))
            .copied()
            .unwrap_or(0)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
    }
}

/// Accept registration connections on the public seed address.
fn seed_accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let _ = handle_register(stream, shared);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// One rank registering: rewrite its advertised data address to a fresh
/// forwarder, relay the registration to the real registry, and pipe the
/// peer table back.
fn handle_register(mut client: TcpStream, shared: Arc<ProxyShared>) -> io::Result<()> {
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    let Frame::Register { rank, addr } = read_frame(&mut client)? else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a register frame on the seed address",
        ));
    };
    // The forwarder owns this rank's advertised identity: every dialer
    // (initial mesh connect and later reconnects) lands here.
    let forwarder = TcpListener::bind("127.0.0.1:0")?;
    let fwd_addr = format!("127.0.0.1:{}", forwarder.local_addr()?.port());
    forwarder.set_nonblocking(true)?;
    {
        let shared = shared.clone();
        let real_addr = addr.clone();
        std::thread::Builder::new()
            .name(format!("fault-proxy-fwd-{rank}"))
            .spawn(move || forwarder_loop(forwarder, rank as usize, real_addr, shared))
            .expect("failed to spawn forwarder thread");
    }
    let mut upstream = tcp_connect_retry(
        &shared.registry_addr,
        Instant::now() + Duration::from_secs(30),
    )?;
    write_frame(
        &mut upstream,
        &Frame::Register {
            rank,
            addr: fwd_addr,
        },
    )?;
    // The table only arrives once every rank has registered.
    let table = read_frame(&mut upstream)?;
    write_frame(&mut client, &table)
}

/// Accept mesh connections destined for rank `low`'s data listener.
fn forwarder_loop(listener: TcpListener, low: usize, real_addr: String, shared: Arc<ProxyShared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let real_addr = real_addr.clone();
                std::thread::spawn(move || {
                    let _ = handle_link(stream, low, &real_addr, shared);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// One proxied mesh connection: sniff the dialer's identity from the
/// handshake frame, then relay frames in both directions, applying any
/// scheduled fault on the dialer-to-listener flow.
fn handle_link(
    mut dialer: TcpStream,
    low: usize,
    real_addr: &str,
    shared: Arc<ProxyShared>,
) -> io::Result<()> {
    dialer.set_read_timeout(Some(Duration::from_secs(30)))?;
    let handshake = read_frame(&mut dialer)?;
    let high = match &handshake {
        Frame::Hello { rank } | Frame::Reconnect { rank, .. } => *rank as usize,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a hello or reconnect handshake",
            ))
        }
    };
    dialer.set_read_timeout(None)?;
    if shared.is_blackholed(low, high) {
        // Partitioned: swallow everything (including this reconnect
        // attempt) while keeping the connection open.
        let mut sink = [0u8; 4096];
        while dialer.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
        return Ok(());
    }
    let mut upstream = TcpStream::connect(real_addr)?;
    write_frame(&mut upstream, &handshake)?;

    // Listener-to-dialer direction: verbatim unless black-holed.
    {
        let mut from = upstream.try_clone()?;
        let mut to = dialer.try_clone()?;
        let shared = shared.clone();
        std::thread::spawn(move || {
            while let Ok((head, body)) = read_raw_frame(&mut from) {
                if shared.is_blackholed(low, high) {
                    continue;
                }
                if write_raw_frame(&mut to, &head, &body).is_err() {
                    break;
                }
            }
            let _ = to.shutdown(Shutdown::Both);
        });
    }

    // Dialer-to-listener direction: count data frames, fire faults.
    while let Ok((head, body)) = read_raw_frame(&mut dialer) {
        if head[4] == KIND_DATA {
            let seen = shared
                .data_counts
                .lock()
                .get(&(low, high))
                .copied()
                .unwrap_or(0);
            match shared.due_fault(low, high, seen) {
                Some(FaultAction::Drop) => {
                    let _ = dialer.shutdown(Shutdown::Both);
                    let _ = upstream.shutdown(Shutdown::Both);
                    return Ok(());
                }
                Some(FaultAction::BlackHole) | None => {}
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            }
            *shared.data_counts.lock().entry((low, high)).or_insert(0) += 1;
        }
        if shared.is_blackholed(low, high) {
            continue;
        }
        if write_raw_frame(&mut upstream, &head, &body).is_err() {
            break;
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    Ok(())
}

/// Read one frame without decoding it: the 5-byte `[len][kind]` head
/// plus the raw body, forwarded verbatim.
fn read_raw_frame(r: &mut impl Read) -> io::Result<([u8; 5], Vec<u8>)> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame through proxy",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((head, body))
}

fn write_raw_frame(w: &mut impl Write, head: &[u8; 5], body: &[u8]) -> io::Result<()> {
    w.write_all(head)?;
    w.write_all(body)?;
    w.flush()
}
