//! World construction, rank mailboxes and the transport seam.
//!
//! A world is a set of ranks plus a `Transport` that moves envelopes
//! between them. Two transports exist:
//!
//! * **in-process** (`Transport::InProc`) — ranks are OS threads, an
//!   envelope post is a push into the destination's mailbox under its
//!   lock ([`World::run`]);
//! * **socket** (`Transport::Socket`) — ranks are OS processes connected
//!   by a full mesh of Unix-domain sockets (TCP loopback fallback); a post
//!   hands the envelope to a per-peer writer thread, a per-peer reader
//!   thread demuxes incoming frames into the local mailbox
//!   ([`World::run_spawned`]).
//!
//! Both feed the same mailbox/condvar matching logic in
//! [`crate::comm::Comm`], so rank programs behave identically (and move
//! identical [`crate::Traffic`] volumes) on either transport.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::socket::{self, SocketPeers};
use crate::{Source, SpawnError, SpawnOptions};

/// A message in flight: communicator context, source (communicator-relative
/// rank), tag, payload.
#[derive(Clone)]
pub(crate) struct Envelope {
    pub ctx: u64,
    pub src: usize,
    pub tag: u64,
    pub payload: Bytes,
}

/// One rank's incoming-message buffer, indexed for O(1)-ish matching.
///
/// The previous representation was a flat `Vec<Envelope>` rescanned under
/// the lock on every wakeup — O(n²) total work when many unmatched
/// envelopes queue ahead of the one being waited for (e.g. out-of-order
/// tags). Envelopes are now bucketed by `(ctx, src, tag)` with FIFO
/// preserved per key, plus an arrival-ordered index per `(ctx, tag)` so
/// any-source receives still match the earliest arrival.
pub(crate) struct Mailbox {
    pub state: Mutex<MailState>,
    pub arrived: Condvar,
    /// Lock-free mirror of `MailState::poisoned.is_some()`, so hot paths
    /// (every socket-world send) can check peer health without contending
    /// the state mutex against the demux readers and the matcher.
    poisoned_hint: std::sync::atomic::AtomicBool,
}

pub(crate) struct MailState {
    /// FIFO queue per exact key; entries carry their arrival sequence.
    by_key: HashMap<(u64, usize, u64), VecDeque<(u64, Bytes)>>,
    /// Arrival order per `(ctx, tag)`: seq → src, for any-source matching.
    any_index: HashMap<(u64, u64), BTreeMap<u64, usize>>,
    next_seq: u64,
    /// Set when a peer process died or a socket broke: every pending and
    /// future receive fails loudly instead of deadlocking.
    pub poisoned: Option<String>,
    /// World ranks known dead via the heartbeat/membership layer. Unlike
    /// `poisoned`, a dead rank is survivable: receives targeting it fail,
    /// but traffic among survivors keeps flowing (degraded mode).
    pub dead: BTreeSet<usize>,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Mailbox {
            state: Mutex::new(MailState {
                by_key: HashMap::new(),
                any_index: HashMap::new(),
                next_seq: 0,
                poisoned: None,
                dead: BTreeSet::new(),
            }),
            arrived: Condvar::new(),
            poisoned_hint: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub(crate) fn push(&self, env: Envelope) {
        let mut st = self.state.lock();
        st.push(env);
        drop(st);
        self.arrived.notify_all();
    }

    /// Mark the mailbox dead (peer failure) and wake every waiter.
    pub(crate) fn poison(&self, reason: String) {
        let mut st = self.state.lock();
        if st.poisoned.is_none() {
            st.poisoned = Some(reason);
        }
        drop(st);
        self.poisoned_hint.store(true, Ordering::Release);
        self.arrived.notify_all();
    }

    /// Lock-free health check; only takes the lock to fetch the reason
    /// once a failure has actually been flagged.
    pub(crate) fn is_poisoned(&self) -> Option<String> {
        if !self.poisoned_hint.load(Ordering::Acquire) {
            return None;
        }
        self.state.lock().poisoned.clone()
    }

    /// Record that `world_rank` died (heartbeat/membership layer) and wake
    /// every waiter so blocked receives can re-evaluate. Idempotent.
    pub(crate) fn mark_dead(&self, world_rank: usize) {
        let mut st = self.state.lock();
        st.dead.insert(world_rank);
        drop(st);
        self.arrived.notify_all();
    }

    /// Snapshot of the dead world ranks, in ascending order.
    pub(crate) fn dead_snapshot(&self) -> Vec<usize> {
        self.state.lock().dead.iter().copied().collect()
    }
}

impl MailState {
    pub(crate) fn push(&mut self, env: Envelope) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.any_index
            .entry((env.ctx, env.tag))
            .or_default()
            .insert(seq, env.src);
        self.by_key
            .entry((env.ctx, env.src, env.tag))
            .or_default()
            .push_back((seq, env.payload));
    }

    /// Remove and return the matching envelope with the earliest arrival,
    /// if any. FIFO per `(ctx, src, tag)` is preserved; `Source::Any`
    /// picks the earliest arrival across sources of the same `(ctx, tag)`.
    pub(crate) fn pop(&mut self, ctx: u64, src: Source, tag: u64) -> Option<(usize, Bytes)> {
        let src_rank = match src {
            Source::Rank(r) => {
                self.by_key.get(&(ctx, r, tag))?;
                r
            }
            Source::Any => {
                let idx = self.any_index.get(&(ctx, tag))?;
                let (_, &src_rank) = idx.iter().next()?;
                src_rank
            }
        };
        let key = (ctx, src_rank, tag);
        let queue = self.by_key.get_mut(&key)?;
        let (seq, payload) = queue.pop_front()?;
        if queue.is_empty() {
            self.by_key.remove(&key);
        }
        if let Some(idx) = self.any_index.get_mut(&(ctx, tag)) {
            idx.remove(&seq);
            if idx.is_empty() {
                self.any_index.remove(&(ctx, tag));
            }
        }
        Some((src_rank, payload))
    }
}

/// The transport seam: how envelopes move between world ranks.
pub(crate) enum Transport {
    /// All ranks share one address space; one mailbox per rank.
    InProc { mailboxes: Vec<Mailbox> },
    /// This process is exactly one rank; peers are socket connections.
    Socket(SocketPeers),
}

pub(crate) struct WorldInner {
    pub transport: Transport,
    /// Total bytes moved through point-to-point sends (collectives included,
    /// since they are built on p2p). Process-local in socket worlds.
    pub bytes_sent: AtomicU64,
    /// Total messages sent.
    pub messages_sent: AtomicU64,
}

impl WorldInner {
    pub(crate) fn in_proc(size: usize) -> Self {
        WorldInner {
            transport: Transport::InProc {
                mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            },
            bytes_sent: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
        }
    }

    /// Deliver an envelope to a world rank (local push or socket frame).
    pub(crate) fn post(&self, dest_world_rank: usize, env: Envelope) {
        match &self.transport {
            Transport::InProc { mailboxes } => mailboxes[dest_world_rank].push(env),
            Transport::Socket(peers) => peers.post(dest_world_rank, env),
        }
    }

    /// The mailbox that `world_rank` receives on. In a socket world only
    /// the local rank's mailbox exists.
    pub(crate) fn mailbox(&self, world_rank: usize) -> &Mailbox {
        match &self.transport {
            Transport::InProc { mailboxes } => &mailboxes[world_rank],
            Transport::Socket(peers) => {
                debug_assert_eq!(world_rank, peers.rank(), "socket world is single-rank");
                peers.mailbox()
            }
        }
    }
}

/// Per-rank outcome of a spawned world that tolerates rank failures.
///
/// Returned by [`World::run_spawned_outcome`]: instead of turning any
/// failed rank into a [`SpawnError::RanksFailed`] for the whole world,
/// each rank's result slot is `None` when that rank died or exited
/// abnormally, with one human-readable line per failure in `failures`.
/// This is the parent-side half of degraded mode: with heartbeats enabled
/// the surviving ranks finish and report normally while the dead rank's
/// slot stays empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnOutcome {
    /// Result bytes per rank; `None` where the rank failed.
    pub results: Vec<Option<Vec<u8>>>,
    /// One line per failed rank, e.g. `"rank 2: exit 137, no result"`.
    pub failures: Vec<String>,
}

impl SpawnOutcome {
    /// Ranks (world ids) that produced no result.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(r, slot)| slot.is_none().then_some(r))
            .collect()
    }
}

/// Handle to a running world (shared by all ranks).
///
/// Created indirectly through [`World::run`] (thread ranks) or
/// [`World::run_spawned`] (process ranks over sockets); exposes global
/// traffic statistics once the ranks have finished.
pub struct World;

impl World {
    /// Spawn `size` ranks, each running `f` with its own world communicator,
    /// and return their results in rank order.
    ///
    /// Panics in any rank propagate after all ranks have been joined, so a
    /// failing test names the guilty rank instead of deadlocking.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        Self::run_with_stats(size, f).0
    }

    /// Like [`World::run`], also returning `(bytes_sent, messages_sent)`
    /// accumulated across all communicators.
    pub fn run_with_stats<R, F>(size: usize, f: F) -> (Vec<R>, u64, u64)
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        assert!(size > 0, "world size must be positive");
        let inner = Arc::new(WorldInner::in_proc(size));
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let inner = inner.clone();
            let f = f.clone();
            let members: Arc<Vec<usize>> = Arc::new((0..size).collect());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-rank-{rank}"))
                    .spawn(move || {
                        let mut comm = Comm::new_world(inner, rank, members);
                        f(&mut comm)
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut results = Vec::with_capacity(size);
        let mut panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(e) => {
                    if panic.is_none() {
                        panic = Some((rank, e));
                    }
                }
            }
        }
        if let Some((rank, e)) = panic {
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("rank {rank} panicked: {msg}");
        }
        let bytes = inner.bytes_sent.load(Ordering::Relaxed);
        let msgs = inner.messages_sent.load(Ordering::Relaxed);
        (results, bytes, msgs)
    }

    /// Run `size` ranks as separate OS **processes** talking over
    /// Unix-domain sockets (TCP loopback fallback), by re-executing the
    /// current binary once per rank.
    ///
    /// Rendezvous happens through a temporary directory whose path — along
    /// with the rank id, world size and `input` — is handed to each child
    /// via environment variables (`MINI_MPI_DIR`, `MINI_MPI_RANK`, …).
    /// Inside a child, the matching `run_spawned` call recognises the
    /// environment, runs `f` as that rank, reports the result to the
    /// parent over an out-of-band control connection and exits — code
    /// after the call never runs in children.
    ///
    /// `program` must uniquely identify this call site across re-execution
    /// of the binary: for a plain binary whose `main` reaches this call,
    /// any constant string works; for a libtest binary use
    /// [`World::run_spawned_test`], which passes the test's path so the
    /// harness re-runs exactly the calling test.
    ///
    /// Returns each rank's result bytes in rank order. If any rank dies
    /// (non-zero exit, missing result) the survivors' receives fail with a
    /// "rank N died" error rather than deadlocking, and the whole call
    /// returns [`SpawnError::RanksFailed`].
    pub fn run_spawned<F>(
        size: usize,
        program: &str,
        input: &[u8],
        f: F,
    ) -> Result<Vec<Vec<u8>>, SpawnError>
    where
        F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
    {
        socket::run_spawned_impl(size, program, input, SpawnOptions::default(), f)
    }

    /// [`World::run_spawned`] for call sites inside `#[test]` functions:
    /// children are re-executed with `--exact <program> --nocapture` so
    /// the libtest harness runs only the calling test. `program` must be
    /// the test's full path within its binary (for an integration-test
    /// file, the bare function name).
    pub fn run_spawned_test<F>(
        size: usize,
        program: &str,
        input: &[u8],
        f: F,
    ) -> Result<Vec<Vec<u8>>, SpawnError>
    where
        F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
    {
        let opts = SpawnOptions {
            harness_args: true,
            ..SpawnOptions::default()
        };
        socket::run_spawned_impl(size, program, input, opts, f)
    }

    /// [`World::run_spawned`] with explicit [`SpawnOptions`] (force the
    /// TCP fallback, seed-list rendezvous, heartbeats, adjust the
    /// timeout, …).
    pub fn run_spawned_with<F>(
        size: usize,
        program: &str,
        input: &[u8],
        opts: SpawnOptions,
        f: F,
    ) -> Result<Vec<Vec<u8>>, SpawnError>
    where
        F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
    {
        socket::run_spawned_impl(size, program, input, opts, f)
    }

    /// Failure-tolerant spawned world: like [`World::run_spawned_with`],
    /// but a dying rank does not fail the call. The returned
    /// [`SpawnOutcome`] carries `None` in each failed rank's slot plus a
    /// description per failure; `Err` is reserved for orchestration
    /// failures (I/O, timeout, program mismatch). Combine with
    /// [`SpawnOptions::heartbeat_ms`] so the *surviving* ranks detect the
    /// death, agree on membership and run to completion instead of
    /// aborting.
    pub fn run_spawned_outcome<F>(
        size: usize,
        program: &str,
        input: &[u8],
        opts: SpawnOptions,
        f: F,
    ) -> Result<SpawnOutcome, SpawnError>
    where
        F: FnOnce(&mut Comm, &[u8]) -> Vec<u8>,
    {
        socket::run_spawned_outcome_impl(size, program, input, opts, f)
    }

    /// Whether this process is a spawned rank of a socket world (useful to
    /// skip unrelated work in binaries that both orchestrate and serve as
    /// the rank program).
    pub fn is_spawned_child() -> bool {
        socket::child_env().is_some()
    }

    /// The rendezvous directory of the surrounding socket world, if this
    /// process is a spawned rank. Rank programs can use it to share
    /// auxiliary files (e.g. a shared-memory segment) without further
    /// coordination.
    pub fn spawn_dir() -> Option<std::path::PathBuf> {
        socket::child_env().map(|e| e.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_accumulate() {
        let (_, bytes, msgs) = World::run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1u64, 2, 3]);
            } else {
                let _: Vec<u64> = comm.recv(crate::Source::Rank(0), 0);
            }
        });
        assert_eq!(bytes, 24);
        assert_eq!(msgs, 1);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_propagates_with_rank_id() {
        World::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_rejected() {
        World::run(0, |_| ());
    }

    #[test]
    fn mailbox_pop_matches_fifo_and_any() {
        let mb = Mailbox::new();
        let env = |ctx, src, tag, byte: u8| Envelope {
            ctx,
            src,
            tag,
            payload: Bytes::copy_from_slice(&[byte]),
        };
        mb.push(env(0, 1, 7, 10));
        mb.push(env(0, 2, 7, 20));
        mb.push(env(0, 1, 7, 11));
        mb.push(env(1, 1, 7, 99)); // other context, must not match ctx 0
        let mut st = mb.state.lock();
        // Any-source picks the earliest arrival (src 1, payload 10).
        let (src, p) = st.pop(0, Source::Any, 7).unwrap();
        assert_eq!((src, p[0]), (1, 10));
        // Specific source skips over other sources but stays FIFO per key.
        let (src, p) = st.pop(0, Source::Rank(1), 7).unwrap();
        assert_eq!((src, p[0]), (1, 11));
        let (src, p) = st.pop(0, Source::Any, 7).unwrap();
        assert_eq!((src, p[0]), (2, 20));
        assert!(st.pop(0, Source::Any, 7).is_none());
        let (src, p) = st.pop(1, Source::Rank(1), 7).unwrap();
        assert_eq!((src, p[0]), (1, 99));
        // Fully drained: the internal indexes must not accumulate.
        assert!(st.by_key.is_empty());
        assert!(st.any_index.is_empty());
    }
}
