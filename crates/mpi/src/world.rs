//! World construction and rank mailboxes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;

/// A message in flight: communicator context, source (communicator-relative
/// rank), tag, payload.
pub(crate) struct Envelope {
    pub ctx: u64,
    pub src: usize,
    pub tag: u64,
    pub payload: Bytes,
}

/// One rank's incoming-message buffer.
pub(crate) struct Mailbox {
    pub queue: Mutex<Vec<Envelope>>,
    pub arrived: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
        }
    }
}

pub(crate) struct WorldInner {
    pub mailboxes: Vec<Mailbox>,
    /// Allocator for communicator context ids (world = 0).
    pub next_ctx: AtomicU64,
    /// Total bytes moved through point-to-point sends (collectives included,
    /// since they are built on p2p).
    pub bytes_sent: AtomicU64,
    /// Total messages sent.
    pub messages_sent: AtomicU64,
}

/// Handle to a running world (shared by all ranks).
///
/// Created indirectly through [`World::run`]; exposes global traffic
/// statistics once the ranks have finished.
pub struct World;

impl World {
    /// Spawn `size` ranks, each running `f` with its own world communicator,
    /// and return their results in rank order.
    ///
    /// Panics in any rank propagate after all ranks have been joined, so a
    /// failing test names the guilty rank instead of deadlocking.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        Self::run_with_stats(size, f).0
    }

    /// Like [`World::run`], also returning `(bytes_sent, messages_sent)`
    /// accumulated across all communicators.
    pub fn run_with_stats<R, F>(size: usize, f: F) -> (Vec<R>, u64, u64)
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        assert!(size > 0, "world size must be positive");
        let inner = Arc::new(WorldInner {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            next_ctx: AtomicU64::new(1),
            bytes_sent: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
        });
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let inner = inner.clone();
            let f = f.clone();
            let members: Arc<Vec<usize>> = Arc::new((0..size).collect());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mini-mpi-rank-{rank}"))
                    .spawn(move || {
                        let mut comm = Comm::new_world(inner, rank, members);
                        f(&mut comm)
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut results = Vec::with_capacity(size);
        let mut panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(e) => {
                    if panic.is_none() {
                        panic = Some((rank, e));
                    }
                }
            }
        }
        if let Some((rank, e)) = panic {
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("rank {rank} panicked: {msg}");
        }
        let bytes = inner.bytes_sent.load(Ordering::Relaxed);
        let msgs = inner.messages_sent.load(Ordering::Relaxed);
        (results, bytes, msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_accumulate() {
        let (_, bytes, msgs) = World::run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1u64, 2, 3]);
            } else {
                let _: Vec<u64> = comm.recv(crate::Source::Rank(0), 0);
            }
        });
        assert_eq!(bytes, 24);
        assert_eq!(msgs, 1);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_propagates_with_rank_id() {
        World::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_rejected() {
        World::run(0, |_| ());
    }
}
