//! Plain-old-data marker for message payloads.

use bytes::Bytes;

/// Types that can be transported through mini-mpi messages by memcpy.
///
/// # Safety
///
/// Implementors must be `Copy`, contain no padding bytes and accept any bit
/// pattern. All primitive numeric types qualify.
pub unsafe trait MpiData: Copy + Send + 'static {}

macro_rules! impl_mpidata {
    ($($t:ty),*) => { $(
        // SAFETY: primitive numeric types are Copy, have no padding
        // bytes, and every bit pattern is a valid value.
        unsafe impl MpiData for $t {}
    )* };
}
impl_mpidata!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

/// Serialize a typed slice into an owned byte buffer.
pub fn to_bytes<T: MpiData>(data: &[T]) -> Bytes {
    // SAFETY: MpiData guarantees no padding and no invalid bit patterns.
    let raw = unsafe {
        std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
    };
    Bytes::copy_from_slice(raw)
}

/// Deserialize a byte buffer produced by [`to_bytes`] back into a vector.
///
/// Panics if the byte length is not a multiple of `size_of::<T>()` — that is
/// a type mismatch between sender and receiver.
pub fn from_bytes<T: MpiData>(bytes: &Bytes) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert_eq!(
        bytes.len() % size,
        0,
        "received {} bytes, not a whole number of {}-byte elements",
        bytes.len(),
        size
    );
    let n = bytes.len() / size;
    let mut out = Vec::with_capacity(n);
    // SAFETY: any bit pattern is a valid T; alignment handled by copying.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = vec![1.5f64, -2.25, f64::INFINITY, 0.0];
        assert_eq!(from_bytes::<f64>(&to_bytes(&data)), data);
    }

    #[test]
    fn roundtrip_u8_odd_lengths() {
        let data = vec![1u8, 2, 3];
        assert_eq!(from_bytes::<u8>(&to_bytes(&data)), data);
    }

    #[test]
    fn roundtrip_empty() {
        let data: Vec<u32> = vec![];
        assert_eq!(from_bytes::<u32>(&to_bytes(&data)), data);
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn type_mismatch_panics() {
        let data = vec![1u8, 2, 3];
        let _ = from_bytes::<u32>(&to_bytes(&data));
    }

    #[test]
    fn nan_payload_bit_exact() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let back = from_bytes::<f64>(&to_bytes(&[weird]));
        assert_eq!(back[0].to_bits(), weird.to_bits());
    }
}
