//! # mini-mpi
//!
//! An in-process, MPI-like message-passing runtime. **Ranks are OS threads**
//! inside one process; the API mirrors the subset of MPI that the Damaris
//! middleware and its baselines actually use:
//!
//! * point-to-point: [`Comm::send`] / [`Comm::recv`] with tag matching and
//!   any-source receives (eager, buffered semantics — sends never block),
//! * collectives: [`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::gather`], [`Comm::all_gather`],
//!   [`Comm::scatter`], [`Comm::alltoall`],
//! * communicator management: [`Comm::split`] — exactly what Damaris does
//!   with `MPI_Comm_split` to separate dedicated cores from compute cores —
//!   and [`Comm::dup`],
//! * per-communicator **traffic accounting** ([`Comm::traffic`]): the
//!   evaluation uses it to show how much data two-phase collective I/O
//!   shuffles between processes versus Damaris' zero inter-node
//!   communication.
//!
//! ## Why not real MPI?
//!
//! The paper ran on Kraken's Cray MPT. Offline, the `rsmpi` bindings require
//! a system MPI that does not exist here; more importantly, the experiments
//! at 9216 ranks are replayed by the `cluster-sim` discrete-event simulator
//! anyway. What the *middleware* needs from MPI — identity, grouping, and
//! collective data movement with the right volumes — is preserved exactly.
//!
//! ## Example
//!
//! ```
//! use mini_mpi::World;
//!
//! let sums = World::run(4, |comm| {
//!     let contribution = vec![comm.rank() as u64 + 1];
//!     let total = comm.allreduce(&contribution, |a, b| *a += b);
//!     total[0]
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

pub mod comm;
pub mod datatype;
pub mod world;

pub use comm::{Comm, Traffic};
pub use datatype::MpiData;
pub use world::World;

/// Receive matcher: either a specific source rank or any source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match only messages from this rank (communicator-relative).
    Rank(usize),
    /// Match a message from any rank.
    Any,
}

impl From<usize> for Source {
    fn from(r: usize) -> Self {
        Source::Rank(r)
    }
}
