//! # mini-mpi
//!
//! An MPI-like message-passing runtime with two transports: **thread
//! ranks** inside one process ([`World::run`]) and **process ranks** over
//! Unix-domain sockets with a TCP loopback fallback
//! ([`World::run_spawned`]). The API mirrors the subset of MPI that the
//! Damaris middleware and its baselines actually use:
//!
//! * point-to-point: [`Comm::send`] / [`Comm::recv`] with tag matching and
//!   any-source receives (eager, buffered semantics — sends never block),
//! * collectives: [`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::gather`], [`Comm::all_gather`],
//!   [`Comm::scatter`], [`Comm::alltoall`],
//! * communicator management: [`Comm::split`] — exactly what Damaris does
//!   with `MPI_Comm_split` to separate dedicated cores from compute cores —
//!   and [`Comm::dup`],
//! * per-communicator **traffic accounting** ([`Comm::traffic`]): the
//!   evaluation uses it to show how much data two-phase collective I/O
//!   shuffles between processes versus Damaris' zero inter-node
//!   communication.
//!
//! ## Why not real MPI?
//!
//! The paper ran on Kraken's Cray MPT. Offline, the `rsmpi` bindings require
//! a system MPI that does not exist here; more importantly, the experiments
//! at 9216 ranks are replayed by the `cluster-sim` discrete-event simulator
//! anyway. What the *middleware* needs from MPI — identity, grouping, and
//! collective data movement with the right volumes — is preserved exactly.
//! The socket world closes the remaining credibility gap for single-node
//! claims: Damaris clients and dedicated cores are separate MPI *processes*
//! sharing a memory segment, and [`World::run_spawned`] reproduces exactly
//! that boundary (see `damaris_core::process`).
//!
//! ## Example
//!
//! ```
//! use mini_mpi::World;
//!
//! let sums = World::run(4, |comm| {
//!     let contribution = vec![comm.rank() as u64 + 1];
//!     let total = comm.allreduce(&contribution, |a, b| *a += b);
//!     total[0]
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

// Every operation inside an `unsafe fn` must state its own `unsafe {}`
// block (with its SAFETY comment — enforced by scripts/unsafe_audit.py).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod comm;
pub mod datatype;
pub mod socket;
pub mod testutil;
pub mod world;

pub use comm::{Comm, Traffic};
pub use datatype::MpiData;
pub use world::{SpawnOutcome, World};

/// Knobs for [`World::run_spawned_with`].
#[derive(Clone)]
pub struct SpawnOptions {
    /// Re-execute children with `--exact <program> --nocapture` so a
    /// libtest harness runs only the calling test (use
    /// [`World::run_spawned_test`]).
    pub harness_args: bool,
    /// Force the TCP loopback transport instead of Unix-domain sockets
    /// (the fallback is otherwise automatic when UDS is unavailable).
    pub tcp: bool,
    /// How long the parent waits for all ranks before killing stragglers
    /// and reporting [`SpawnError::Timeout`].
    pub timeout: std::time::Duration,
    /// Seed-list rendezvous: a comma-separated `host:port,…` list. When
    /// set, ranks bootstrap by dialing the first seed, where rank 0 runs
    /// an in-process registry handing out the full peer table, and the
    /// mesh runs over TCP — no shared filesystem directory is needed for
    /// rendezvous. A port of `0` is resolved to a free port by the
    /// parent before spawning. `None` keeps the shared-dir rendezvous.
    pub seeds: Option<String>,
    /// Where rank 0's registry actually binds when it differs from the
    /// advertised seed (e.g. a fault-injection proxy fronts the seed
    /// address). Defaults to the first seed.
    pub registry_bind: Option<String>,
    /// Heartbeat interval in milliseconds. `0` (the default) keeps the
    /// legacy failure semantics: rank death is detected only by EOF and
    /// poisons every receive. Any positive value enables the reliable
    /// mesh: periodic PING/PONG per peer link, sequence-numbered frames
    /// with retransmit-on-reconnect, bounded redial-with-backoff, and a
    /// membership broadcast that marks dead ranks instead of poisoning
    /// the mailbox (see `Comm::dead_ranks`).
    pub heartbeat_ms: u64,
    /// How long a silent peer link may go without any inbound frame
    /// before the peer is declared dead (only meaningful with
    /// `heartbeat_ms > 0`).
    pub heartbeat_timeout_ms: u64,
    /// Called with `(rank, pid)` as each child process spawns; lets test
    /// harnesses (e.g. the fault-injection proxy) address rank processes
    /// by pid for kill/stop schedules.
    pub on_spawn: Option<std::sync::Arc<dyn Fn(usize, u32) + Send + Sync>>,
}

impl std::fmt::Debug for SpawnOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpawnOptions")
            .field("harness_args", &self.harness_args)
            .field("tcp", &self.tcp)
            .field("timeout", &self.timeout)
            .field("seeds", &self.seeds)
            .field("registry_bind", &self.registry_bind)
            .field("heartbeat_ms", &self.heartbeat_ms)
            .field("heartbeat_timeout_ms", &self.heartbeat_timeout_ms)
            .field("on_spawn", &self.on_spawn.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for SpawnOptions {
    fn default() -> Self {
        SpawnOptions {
            harness_args: false,
            tcp: false,
            timeout: std::time::Duration::from_secs(120),
            seeds: None,
            registry_bind: None,
            heartbeat_ms: 0,
            heartbeat_timeout_ms: 10_000,
            on_spawn: None,
        }
    }
}

/// Failures of a spawned (multi-process) world.
#[derive(Debug)]
pub enum SpawnError {
    /// Process management or rendezvous I/O failed.
    Io(std::io::Error),
    /// One or more ranks exited abnormally or without reporting a result
    /// (e.g. a rank died and the survivors aborted instead of
    /// deadlocking). One human-readable line per failed rank.
    RanksFailed(Vec<String>),
    /// Not all ranks finished within [`SpawnOptions::timeout`]; stragglers
    /// were killed.
    Timeout {
        /// How long the parent waited.
        waited: std::time::Duration,
        /// Per-rank failure descriptions collected so far.
        failed: Vec<String>,
    },
    /// This process is a spawned rank of a *different* `run_spawned` call
    /// site (the re-executed binary reached the wrong program first).
    ProgramMismatch {
        /// The program this process was spawned for.
        expected: String,
        /// The program of the call site that was actually reached.
        found: String,
    },
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Io(e) => write!(f, "spawn I/O error: {e}"),
            SpawnError::RanksFailed(ranks) => {
                write!(f, "ranks failed: {}", ranks.join("; "))
            }
            SpawnError::Timeout { waited, failed } => write!(
                f,
                "spawned world timed out after {waited:?} ({})",
                if failed.is_empty() {
                    "no rank failures recorded".to_string()
                } else {
                    failed.join("; ")
                }
            ),
            SpawnError::ProgramMismatch { expected, found } => write!(
                f,
                "spawned child for program '{expected}' reached call site '{found}'"
            ),
        }
    }
}

impl std::error::Error for SpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpawnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Receive matcher: either a specific source rank or any source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match only messages from this rank (communicator-relative).
    Rank(usize),
    /// Match a message from any rank.
    Any,
}

impl From<usize> for Source {
    fn from(r: usize) -> Self {
        Source::Rank(r)
    }
}
